"""Fig. 7 — ping-pong latency vs message size across middlewares.

Three panels, as in the paper:

1. X-RDMA's mixed message model: small-mode vs large-mode vs default mix,
   2 B – 16 KB.  The paper reports large-mode ≈40% slower below 128 B and
   within ~10% (≤1.4 µs) above.
2. Middleware comparison at small sizes: X-RDMA (bare-data and req-rsp),
   xio, ucx-am-rc, ibv_rc_pingpong, libfabric.  Paper: X-RDMA 5.60 µs vs
   UCX 5.87 µs vs libfabric 6.20 µs; ≤10% over ibv; req-rsp adds 2–4%.
3. Large sizes (4–32 KB): same ordering holds.
"""

from statistics import mean

import pytest

from repro.baselines import (IbvPingPong, LibfabricEndpoint, UcxEndpoint,
                             XioEndpoint)
from repro.baselines.common import run_pingpong
from repro.cluster import build_cluster
from repro.sim import SECONDS
from repro.xrdma import XrdmaConfig

from .conftest import emit

ITERS = 24


def xrdma_pingpong(size: int, config: XrdmaConfig) -> float:
    """One-way X-RDMA RPC latency in µs at ``size`` bytes."""
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(8700)
    latencies = []

    def scenario():
        channel = yield from client.connect(1, 8700)
        server_channel = yield accepted.get()
        # Echo the same size back, like ibv_rc_pingpong and the baselines.
        server_channel.on_request = \
            lambda msg: server.send_response(msg, msg.payload_size)
        for index in range(ITERS):
            t0 = cluster.sim.now
            request = client.send_request(channel, size)
            yield request.response
            if index >= 3:
                latencies.append((cluster.sim.now - t0) / 2)

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    return mean(latencies) / 1000


def baseline_pingpong(endpoint_cls, size: int) -> float:
    cluster = build_cluster(2)
    latencies = run_pingpong(cluster, endpoint_cls, size, iterations=ITERS)
    return mean(latencies) / 1000


SMALL_MODE = XrdmaConfig(small_msg_size=128 * 1024)  # eager for everything
LARGE_MODE = XrdmaConfig(small_msg_size=1)           # rendezvous everything
DEFAULT = XrdmaConfig()                              # 4 KB threshold
REQRSP = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)


def test_fig7_panel1_mixed_message_model(once):
    sizes = [2, 16, 64, 128, 512, 2048, 4096, 16384, 65536]

    def run():
        rows = {}
        for size in sizes:
            rows[size] = (xrdma_pingpong(size, SMALL_MODE),
                          xrdma_pingpong(size, LARGE_MODE),
                          xrdma_pingpong(size, DEFAULT))
        return rows

    rows = once(run)
    lines = [f"{'size(B)':>8} {'small-mode':>11} {'large-mode':>11} "
             f"{'mixed':>8} {'large/small':>12}"]
    for size in sizes:
        small, large, mixed = rows[size]
        lines.append(f"{size:>8} {small:>11.2f} {large:>11.2f} "
                     f"{mixed:>8.2f} {large / small:>12.2f}")
    lines.append("")
    lines.append("paper shape: rendezvous penalty is largest for tiny "
                 "payloads and narrows with size (the extra cost is one "
                 "fixed announce+read round; see EXPERIMENTS.md on the "
                 "constant)")
    emit("fig7_panel1_mixed_messages", lines)

    ratio = {size: rows[size][1] / rows[size][0] for size in sizes}
    # Rendezvous costs clearly more for small payloads ...
    assert ratio[64] > 1.40
    # ... and the relative penalty narrows monotonically with size.
    assert ratio[64] > ratio[4096] > ratio[65536]
    # At bulk sizes the modes converge (< 35% apart at 64 KB).
    assert ratio[65536] < 1.35
    # The absolute gap is a roughly fixed extra round, not proportional:
    gap_small = rows[64][1] - rows[64][0]
    gap_large = rows[65536][1] - rows[65536][0]
    assert gap_large < 1.5 * gap_small
    # The default mix follows small-mode below the 4 KB threshold ...
    assert abs(rows[512][2] - rows[512][0]) / rows[512][0] < 0.05
    # ... and switches to the rendezvous path above it.
    assert abs(rows[16384][2] - rows[16384][1]) / rows[16384][1] < 0.10


def test_fig7_panel2_middleware_comparison(once):
    size = 64

    def run():
        return {
            "ibv-pingpong": baseline_pingpong(IbvPingPong, size),
            "xrdma-BD": xrdma_pingpong(size, DEFAULT),
            "xrdma-reqrsp": xrdma_pingpong(size, REQRSP),
            "ucx-am-rc": baseline_pingpong(UcxEndpoint, size),
            "libfabric": baseline_pingpong(LibfabricEndpoint, size),
            "xio": baseline_pingpong(XioEndpoint, size),
        }

    rows = once(run)
    lines = [f"{'system':<14} {'one-way latency (us)':>22}"]
    for name, latency in rows.items():
        lines.append(f"{name:<14} {latency:>22.2f}")
    lines.append("")
    lines.append(f"paper: xrdma 5.60  ucx 5.87  libfabric 6.20 (64B-class)")
    emit("fig7_panel2_middlewares", lines)

    # Ordering: ibv <= xrdma < ucx < libfabric < xio.
    assert rows["ibv-pingpong"] <= rows["xrdma-BD"]
    assert rows["xrdma-BD"] < rows["ucx-am-rc"]
    assert rows["ucx-am-rc"] < rows["libfabric"]
    assert rows["libfabric"] < rows["xio"]
    # X-RDMA stays within ~10% of the native baseline.
    assert rows["xrdma-BD"] / rows["ibv-pingpong"] < 1.12
    # Tracing (req-rsp) costs 2–4% (~200 ns); allow a slack band.
    overhead = rows["xrdma-reqrsp"] / rows["xrdma-BD"] - 1
    assert 0.0 <= overhead < 0.08


def test_fig7_panel3_large_sizes(once):
    sizes = [4096, 8192, 16384, 32768]

    def run():
        rows = {}
        for size in sizes:
            rows[size] = {
                "ibv": baseline_pingpong(IbvPingPong, size),
                "xrdma": xrdma_pingpong(size, DEFAULT),
                "ucx": baseline_pingpong(UcxEndpoint, size),
                "libfabric": baseline_pingpong(LibfabricEndpoint, size),
                "xio": baseline_pingpong(XioEndpoint, size),
            }
        return rows

    rows = once(run)
    lines = [f"{'size(B)':>8} {'ibv':>8} {'xrdma':>8} {'ucx':>8} "
             f"{'libfabric':>10} {'xio':>8}"]
    for size in sizes:
        row = rows[size]
        lines.append(f"{size:>8} {row['ibv']:>8.2f} {row['xrdma']:>8.2f} "
                     f"{row['ucx']:>8.2f} {row['libfabric']:>10.2f} "
                     f"{row['xio']:>8.2f}")
    emit("fig7_panel3_large_sizes", lines)

    for size in sizes:
        row = rows[size]
        # Latency grows with size, ordering is preserved, xio's copies
        # hurt ever more as payloads grow.
        assert row["ibv"] <= row["ucx"] < row["libfabric"] < row["xio"]
    assert rows[32768]["xio"] / rows[32768]["ibv"] > \
        rows[4096]["xio"] / rows[4096]["ibv"] * 0.9
