"""Sec. II-B — dual-port RNICs (and the multi-path related work).

Every production machine carries a dual-port 25 Gbps CX4-Lx (50 Gbps
aggregate).  The related work the paper cites (Lu et al., NSDI'18) reports
near-linear bandwidth scaling with port count when flows avoid
out-of-order delivery — which our flow-hashed port selection preserves.
"""

import pytest

from repro.cluster import build_cluster
from repro.rnic import Opcode, WorkRequest
from repro.sim import SECONDS
from tests.conftest import establish

from .conftest import emit

FLOWS = 4
WRITES = 4
SIZE = 2 << 20


def aggregate_gbps(nic_ports: int) -> float:
    cluster = build_cluster(1 + FLOWS, nic_ports=nic_ports)
    sender = cluster.host(0)
    sim = cluster.sim
    conns = [establish(cluster, 0, dst + 1, service_port=7000)
             for dst in range(FLOWS)]

    def stream(conn_c, conn_s, dst):
        host = cluster.host(dst + 1)
        buf = host.memory.alloc(SIZE)
        mr = yield host.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        for _ in range(WRITES):
            yield sender.verbs.post_send(conn_c.qp, WorkRequest(
                opcode=Opcode.WRITE, length=SIZE, remote_addr=mr.addr,
                rkey=mr.rkey))
        done = 0
        while done < WRITES:
            done += len(conn_c.qp.send_cq.poll())
            yield sim.timeout(10_000)
        yield host.verbs.dereg_mr(conn_s.qp.pd, mr)
        host.memory.free(buf.addr)

    t0 = sim.now
    procs = [sim.spawn(stream(conn_c, conn_s, dst))
             for dst, (conn_c, conn_s) in enumerate(conns)]
    sim.run_until_event(sim.all_of(procs), limit=60 * SECONDS)
    return FLOWS * WRITES * SIZE * 8 / (sim.now - t0)


def test_sec2_dual_port_bandwidth(once):
    def run():
        return aggregate_gbps(1), aggregate_gbps(2)

    single, dual = once(run)
    lines = [
        f"{'NIC ports':>10} {'aggregate (Gbps)':>17}",
        f"{1:>10} {single:>17.2f}",
        f"{2:>10} {dual:>17.2f}",
        "",
        f"scaling: {dual / single:.2f}x "
        "(paper hardware: dual-port 25 Gbps = 50 Gbps/host; related work "
        "reports near-linear port scaling)",
    ]
    emit("sec2_dual_port", lines)

    assert single < 26.0                  # one link's worth
    assert dual > single * 1.5            # well into the second port
