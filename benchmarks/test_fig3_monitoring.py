"""Fig. 3 — per-machine online monitoring (PolarDB-style).

The paper's dashboard shows send/receive bandwidth alternating between
saturated and unsaturated (diurnal load) and the QP count stepping as
connections come and go.  We regenerate both series with the Monitor over
a diurnal traffic profile.
"""

import pytest

from repro.analysis import Monitor
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.workloads.traces import diurnal_profile, rate_at
from repro.xrdma.message import MessageKind

from .conftest import emit

DURATION = 2 * SECONDS
PERIOD = 500 * MILLIS


def run_monitoring():
    cluster = build_cluster(3)
    monitor = Monitor(cluster.sim, cluster.stats,
                      sample_interval_ns=50 * MILLIS)
    server = cluster.xrdma_context(1)
    server.listen(9400)
    client = cluster.xrdma_context(0)
    monitor.attach(client)
    sim = cluster.sim

    def sink():
        while True:
            yield server.incoming.get()

    sim.spawn(sink())
    profile = diurnal_profile(DURATION, PERIOD, low=200, high=4000)

    def driver():
        channel = yield from client.connect(1, 9400)
        started = sim.now
        while sim.now - started < DURATION:
            rate = rate_at(profile, sim.now - started)
            gap = max(int(SECONDS / rate), 1)
            client.send_msg(channel, 32 * 1024, kind=MessageKind.ONEWAY)
            yield sim.timeout(gap)

    sim.spawn(driver())
    sim.run(until=DURATION + 100 * MILLIS)
    return cluster, monitor, client


def test_fig3_monitoring_series(once):
    cluster, monitor, client = once(run_monitoring)

    tx_rates = monitor.rate_per_second(f"ctx{client.ctx_id}.tx_bytes")
    qp_counts = monitor.values(f"ctx{client.ctx_id}.qp_count")

    lines = [f"{'sample':>7} {'tx GB/s':>9} {'qp':>4}"]
    for index, rate in enumerate(tx_rates):
        qp = qp_counts[min(index, len(qp_counts) - 1)]
        lines.append(f"{index:>7} {rate / 1e9:>9.3f} {qp:>4.0f}")
    lines.append("")
    lines.append("paper: send/receive ratios alternate between saturated "
                 "and unsaturated across the day; QP count steps with "
                 "connection churn")
    emit("fig3_monitoring", lines)

    assert len(tx_rates) >= 10
    peak, trough = max(tx_rates), min(r for r in tx_rates if r >= 0)
    # The diurnal alternation is clearly visible (≥3x swing).
    assert peak > 3 * max(trough, 1.0)
    # The series actually oscillates (at least two rises and two falls).
    direction_changes = sum(
        1 for a, b, c in zip(tx_rates, tx_rates[1:], tx_rates[2:])
        if (b - a) * (c - b) < 0)
    assert direction_changes >= 2
    assert max(qp_counts) >= 1
