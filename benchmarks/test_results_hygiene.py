"""A plain ``pytest`` run must never dirty ``benchmarks/results/``.

The committed tables are regenerated deliberately (``XR_WRITE_RESULTS=1``)
or by the fleet, not as a side effect of every benchmark invocation.
"""

import os
import pathlib
import subprocess

import pytest

from benchmarks import conftest as bench_conftest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestEmitGating:
    def test_emit_is_print_only_by_default(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.delenv("XR_WRITE_RESULTS", raising=False)
        monkeypatch.setattr(bench_conftest, "RESULTS_DIR",
                            tmp_path / "results")
        bench_conftest.emit("probe", ["row 1", "row 2"])
        assert "===== probe =====" in capsys.readouterr().out
        assert not (tmp_path / "results").exists()

    def test_emit_writes_when_opted_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XR_WRITE_RESULTS", "1")
        monkeypatch.setattr(bench_conftest, "RESULTS_DIR",
                            tmp_path / "results")
        bench_conftest.emit("probe", ["row 1", "row 2"])
        assert (tmp_path / "results" / "probe.txt").read_text() \
            == "row 1\nrow 2\n"

    def test_emit_requires_exactly_1(self, tmp_path, monkeypatch):
        # "true"/"yes" are not the contract; only "1" opts in.
        monkeypatch.setenv("XR_WRITE_RESULTS", "yes")
        monkeypatch.setattr(bench_conftest, "RESULTS_DIR",
                            tmp_path / "results")
        bench_conftest.emit("probe", ["row"])
        assert not (tmp_path / "results").exists()


def test_results_dir_clean_in_git():
    """Catch *any* writer, not just emit(): the committed results files
    must be unmodified at the time this test runs."""
    if os.environ.get("XR_WRITE_RESULTS") == "1":
        pytest.skip("regeneration run: results are supposed to change")
    proc = subprocess.run(  # xr-lint: disable=blocking-call
        ["git", "status", "--porcelain", "--", "benchmarks/results"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=30)
    if proc.returncode != 0:
        pytest.skip(f"git unavailable: {proc.stderr.strip()}")
    assert proc.stdout.strip() == "", (
        "benchmarks/results/ modified by a test run without "
        f"XR_WRITE_RESULTS=1:\n{proc.stdout}")
