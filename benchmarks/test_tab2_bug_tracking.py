"""Table II — bug classes and the mechanism that catches each.

| bug                   | tracking method              |
|-----------------------|------------------------------|
| heavy incast          | tracing, XR-Stat             |
| broken network        | keepAlive, XR-Ping           |
| jitter / long tail    | tracing, XR-Perf             |
| bugs hard to reproduce| Filter                       |
| memory leak or crash  | isolated memory cache        |

Each scenario injects the bug and asserts the designated mechanism
actually observes it.
"""

import pytest

from repro.analysis import ClockSync, Filter, Monitor, Tracer
from repro.analysis.faultfilter import FaultRule
from repro.cluster import build_cluster
from repro.sim import MICROS, MILLIS, SECONDS
from repro.sim.params import congested_params
from repro.tools import XrPerf, XrPing, XrStat
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache

from .conftest import emit

CAUGHT = []


def scenario_heavy_incast():
    """XR-Stat's crucial indexes expose the incast."""
    cluster = build_cluster(5, params=congested_params())
    perf = XrPerf(cluster)
    perf.run_incast([0, 1, 2, 3], 4, size=128 * 1024,
                    messages_per_source=10,
                    config=XrdmaConfig(flow_control=False))
    stat = XrStat(cluster)
    crucial = stat.crucial_indexes()
    caught = crucial["cnps"] > 0 or crucial["pfc_pause_frames"] > 0
    return "heavy incast", "XR-Stat crucial indexes", caught


def scenario_broken_network():
    """keepAlive + XR-Ping both notice the dead host."""
    cluster = build_cluster(3)
    contexts = [cluster.xrdma_context(h, config=XrdmaConfig(
        keepalive_intv_ms=5.0)) for h in range(3)]
    ping = XrPing(cluster, contexts)
    cluster.host(2).nic.crash()
    proc = cluster.sim.spawn(ping.run_mesh())
    cluster.sim.run_until_event(proc, limit=120 * SECONDS)
    caught = (0, 2) in ping.unreachable_pairs()
    return "broken network", "keepAlive / XR-Ping", caught


def scenario_jitter_long_tail():
    """Tracing's poll-gap watchdog catches the stalled thread."""
    cluster = build_cluster(2)
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    sync = ClockSync(cluster.rng)
    tracer = Tracer(client, sync)
    server.listen(9500)

    def scenario():
        channel = yield from client.connect(1, 9500)
        client.send_msg(channel, 64)
        yield server.incoming.get()

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(proc, limit=5 * SECONDS)
    client.inject_stall(2 * MILLIS)     # the allocator-lock bug
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)
    caught = bool(tracer.poll_gap_log)
    return "jitter/long tail", "tracing poll watchdog", caught


def scenario_hard_to_reproduce():
    """Filter injects the elusive drop so the app-level bug shows up."""
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    server.listen(9600)
    server.filter = Filter(cluster.rng.stream("tab2"))
    server.filter.add_rule(FaultRule(drop_probability=1.0))

    def scenario():
        channel = yield from client.connect(1, 9600)
        client.send_msg(channel, 64)

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(proc, limit=5 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 20 * MILLIS)
    caught = server.filter.dropped == 1 and not server.incoming.items
    return "hard-to-reproduce bug", "Filter fault injection", caught


def scenario_memory_bug():
    """The isolated memory cache flags the out-of-bounds access."""
    cluster = build_cluster(2)
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 << 20, isolated=True)

    def scenario():
        buffer = yield from cache.alloc(4096)
        return buffer

    proc = cluster.sim.spawn(scenario())
    buffer = cluster.sim.run_until_event(proc, limit=SECONDS)
    # A buggy application touches past its buffer:
    in_bounds = cache.check_access(buffer.addr, buffer.size)
    out_of_bounds = cache.check_access(buffer.addr + (1 << 21), 64)
    caught = in_bounds and not out_of_bounds and cache.out_of_bound_hits == 1
    return "memory leak/crash", "isolated memory cache", caught


def test_tab2_bug_tracking_matrix(once):
    def run():
        return [
            scenario_heavy_incast(),
            scenario_broken_network(),
            scenario_jitter_long_tail(),
            scenario_hard_to_reproduce(),
            scenario_memory_bug(),
        ]

    rows = once(run)
    lines = [f"{'bug type':<24} {'tracking method':<28} {'caught':>7}"]
    for bug, method, caught in rows:
        lines.append(f"{bug:<24} {method:<28} {str(caught):>7}")
    emit("tab2_bug_tracking", lines)

    for bug, method, caught in rows:
        assert caught, f"{method} failed to catch {bug}"
