"""Sec. VII-B — programming simplification: lines of code.

The paper: a ping-pong takes ≥200 LOC on libverbs (≈50 on sockets); the
Pangu data plane took ~2000 LOC of native RDMA versus ~40 LOC of X-RDMA
APIs.  We count the real lines of this repository's two example programs,
which implement the same ping-pong on raw verbs and on X-RDMA.
"""

import pathlib

import pytest

from .conftest import emit

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def count_effective_loc(path: pathlib.Path) -> int:
    """Non-blank, non-comment, non-docstring lines."""
    loc = 0
    in_docstring = False
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            if not (line.endswith('"""') and len(line) > 3) \
                    and not (line.endswith("'''") and len(line) > 3):
                in_docstring = True
            continue
        if line.startswith("#"):
            continue
        loc += 1
    return loc


def test_sec7b_loc_comparison(once):
    def run():
        raw = count_effective_loc(EXAMPLES / "pingpong_raw_verbs.py")
        xrdma = count_effective_loc(EXAMPLES / "quickstart.py")
        return raw, xrdma

    raw_loc, xrdma_loc = once(run)
    lines = [
        f"{'program':<28} {'effective LOC':>14}",
        f"{'ping-pong on raw verbs':<28} {raw_loc:>14}",
        f"{'ping-pong on X-RDMA':<28} {xrdma_loc:>14}",
        "",
        f"ratio: {raw_loc / xrdma_loc:.1f}x "
        f"(paper: ~200 LOC verbs vs tens of LOC X-RDMA; "
        f"Pangu: 2000 vs ~40)",
    ]
    emit("sec7b_loc", lines)

    # The paper's qualitative claim: several-fold code reduction.
    assert raw_loc > 2.5 * xrdma_loc
    assert xrdma_loc < 80
