"""Fig. 8 — ESSD aggregate IOPS during a connect storm.

The paper: after a restart, while (re)establishing connections, ESSD
reaches steady state within <2 s and ≈6 KOPS at 128 KB payloads.  We scale
the deployment down (2 block servers × 4 chunk servers, 2 front-ends,
single-digit queue depths) and assert the shape:

* the mesh (and front-end) establishment happens at t=0 (the storm),
* IOPS reaches ≥80% of steady level within the first 2 simulated seconds,
* the last window holds the level (no sag after the ramp).
"""

from statistics import mean

import pytest

from repro.apps import EssdFrontend, PanguDeployment
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS

from .conftest import emit

SIM_END = 1200 * MILLIS


def run_recovery():
    cluster = build_cluster(8)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[2, 3, 4, 5], replicas=3)
    # The connect storm happens *while* front-ends are already issuing:
    # spawn the mesh establishment and the front-ends together (restart).
    sim = cluster.sim
    chunk_hosts = [cs.host_id for cs in deployment.chunk_servers]
    for block_server in deployment.block_servers:
        sim.spawn(block_server.connect_mesh(chunk_hosts))

    frontends = []
    for index in range(2):
        frontend = EssdFrontend(cluster, host_id=6 + index,
                                block_server_host=index,
                                io_bytes=128 * 1024, queue_depth=4)
        frontends.append(frontend)
        sim.spawn(frontend.run_closed_loop(10 ** 9))   # duration-bounded

    sim.run(until=SIM_END)
    return deployment, frontends


def test_fig8_essd_reaches_steady_state_quickly(once):
    deployment, frontends = once(run_recovery)

    bucket = 100 * MILLIS
    aggregate = {}
    for frontend in frontends:
        for when, _lat in frontend.completions:
            aggregate[when // bucket] = aggregate.get(when // bucket, 0) + 1
    timeline = [(index * bucket, count * (SECONDS // bucket))
                for index, count in sorted(aggregate.items())]

    lines = [f"{'t(ms)':>7} {'IOPS':>8}"]
    for when, iops in timeline:
        lines.append(f"{when / 1e6:>7.0f} {iops:>8.0f}")
    lines.append("")
    lines.append("paper: ESSD switches to steady state within <2 s of the "
                 "storm and holds ~6 KOPS (128 KB payloads; scaled here)")
    emit("fig8_essd_recovery", lines)

    assert timeline, "no I/O completed"
    steady = mean(rate for when, rate in timeline
                  if when >= SIM_END // 2)
    # Paper shape: steady within <2 s of the storm.
    ramp_done = [when for when, rate in timeline if rate >= 0.8 * steady]
    assert ramp_done and ramp_done[0] < 2 * SECONDS
    # No post-ramp collapse: the final stretch holds the level.
    late = mean(rate for when, rate in timeline
                if when >= SIM_END - 3 * bucket)
    assert late >= 0.7 * steady
    # Thousands of 128 KB I/O per second (KOPS-scale figure).
    assert steady > 1000
