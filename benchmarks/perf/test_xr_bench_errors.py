"""``xr_bench --baseline`` error paths: fail fast, fail loud.

A CI job pointing at a deleted trajectory file or the wrong mode section
must exit 2 *before* the suite runs, with a one-line diagnostic on
stderr — the silent-skip failure mode (bench runs, comparison quietly
does nothing, regressions sail through) is exactly what these pin down.
"""

import json

from repro.tools import xr_bench


def run(argv):
    return xr_bench.main(argv)


class TestBaselineUsageErrors:
    def test_missing_file_exits_2_before_running_suite(self, tmp_path,
                                                       capsys):
        missing = tmp_path / "nope.json"
        code = run(["--quick", "--baseline", str(missing)])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read baseline" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        # Fail-fast contract: no bench output was produced at all.
        assert "xr-bench [quick]" not in captured.out

    def test_missing_mode_section_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "full_only.json"
        baseline.write_text(json.dumps(
            {"full": {"after": {"timer-churn": {"events_per_sec": 1}}}}))
        code = run(["--quick", "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 2
        assert "no 'quick' section" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "xr-bench [quick]" not in captured.out

    def test_unparsable_baseline_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "torn.json"
        baseline.write_text('{"mode": "quick", "benches": {')
        code = run(["--quick", "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not valid JSON" in captured.err

    def test_wrong_mode_results_file_exits_2(self, tmp_path, capsys):
        # A results file written by a *full* run used against --quick.
        baseline = tmp_path / "full_results.json"
        baseline.write_text(json.dumps(
            {"mode": "full",
             "benches": {"timer-churn": {"events_per_sec": 1}}}))
        code = run(["--quick", "--baseline", str(baseline)])
        assert code == 2
        assert "no 'quick' section" in capsys.readouterr().err


class TestBaselineHappyPath:
    def test_valid_baseline_still_compares(self, tmp_path, capsys):
        baseline = tmp_path / "ok.json"
        baseline.write_text(json.dumps(
            {"mode": "quick",
             "benches": {"timer-churn": {"events_per_sec": 1}}}))
        code = run(["--quick", "--only", "timer-churn",
                    "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 0
        assert "timer-churn" in captured.out
        assert captured.err == ""
