"""Engine performance microbenches (the xr-bench suite under pytest).

Unlike the figure benchmarks (which regenerate paper results), this suite
tracks the *simulator's own* speed: fired events per wall-clock second on
the four hot-path microbenches.  The committed ``BENCH_PR3.json``
trajectory file at the repo root holds the measured before/after numbers
for the PR-3 engine overhaul; CI's perf-smoke job compares fresh quick
runs against it.

Two properties are asserted here, neither of which is wall-clock:

* **determinism** — event counts and bench-specific outputs are exact for
  fixed seeds, so any drift means the schedule changed (the digest suite
  in ``tests/scenarios`` then tells you whether order changed too);
* **sanity** — each bench actually exercised its hot path (nonzero
  events, segments, allocations).

Wall-clock regression gating lives in ``xr_bench --baseline`` (CI), not
in pytest asserts: a loaded machine must not fail the build by itself.
"""

import json
import pathlib

import pytest

from repro.tools import xr_bench

from ..conftest import emit

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
TRAJECTORY = REPO_ROOT / "BENCH_PR3.json"


@pytest.fixture(scope="module")
def quick_results():
    """One quick-scale pass over the whole suite, shared by the asserts."""
    return xr_bench.run_suite(quick=True)


def test_suite_covers_all_declared_benches(quick_results):
    assert set(quick_results) == set(xr_bench.BENCHES)


def test_event_counts_are_deterministic(quick_results):
    """Same seeds → same schedule → same event counts, run to run."""
    again = xr_bench.run_suite(quick=True)
    for name, result in quick_results.items():
        assert again[name].events == result.events, (
            f"{name}: event count drifted across identical runs "
            f"({again[name].events} vs {result.events})")


def test_benches_exercise_their_hot_paths(quick_results):
    assert quick_results["timer-churn"].events > 1_000
    incast = quick_results["incast-segment-storm"]
    assert incast.extra["bytes_moved"] > 0
    assert incast.extra["messages"] > 0
    churn = quick_results["memcache-churn"]
    assert churn.extra["allocs"] > 100
    pingpong = quick_results["pingpong"]
    assert pingpong.extra["mean_latency_us"] > 0


def test_trajectory_file_is_committed_and_well_formed():
    """BENCH_PR3.json must exist with before/after sections per mode."""
    payload = json.loads(TRAJECTORY.read_text())
    for mode in ("quick", "full"):
        assert mode in payload, f"missing {mode!r} section"
        for side in ("before", "after"):
            section = payload[mode].get(side)
            assert isinstance(section, dict), f"missing {mode}/{side}"
            for name in xr_bench.BENCHES:
                assert name in section, f"{mode}/{side} missing {name!r}"
                assert section[name]["events_per_sec"] > 0


def test_trajectory_records_the_headline_speedups():
    """The PR's acceptance criterion, pinned against the committed file:
    >=1.5x events/sec on timer-churn and incast-segment-storm (full
    scale, interleaved A/B best-of measurements)."""
    payload = json.loads(TRAJECTORY.read_text())
    full = payload["full"]
    for name in ("timer-churn", "incast-segment-storm"):
        before = full["before"][name]["events_per_sec"]
        after = full["after"][name]["events_per_sec"]
        assert after / before >= 1.5, (
            f"{name}: committed trajectory shows {after / before:.2f}x")


def test_emit_quick_table(quick_results):
    emit("perf_engine_quick",
         [result.summary() for result in quick_results.values()])
