"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables/figures: it runs the
scenario inside pytest-benchmark (so wall-clock cost is tracked), prints the
paper-style rows, and asserts the qualitative *shape* the paper reports.

Tables are persisted to ``benchmarks/results/`` only when
``XR_WRITE_RESULTS=1`` is set: a plain ``pytest`` run must leave ``git
status`` clean (regenerating committed tables on every developer run made
every benchmark invocation dirty the tree).
"""

import os
import pathlib

import pytest

from repro.analysis import invariants

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def counting_invariants():
    """Benchmarks run under a count-mode registry: violations are recorded
    (and sampled into the Monitor's ``*.invariant_violations`` series) but
    never abort the run, mirroring production count-and-report."""
    registry = invariants.install(mode="count")
    yield registry
    if registry.total:
        print(f"\n[invariants] {registry.total} violation(s): "
              f"{registry.summary()}")
    invariants.uninstall()


def emit(name: str, lines):
    """Print a result table; persist it only when explicitly asked.

    Set ``XR_WRITE_RESULTS=1`` to (re)generate the committed
    ``benchmarks/results/`` tables.  The default is print-only so a plain
    ``pytest`` run never touches the working tree.
    """
    text = "\n".join(lines)
    print(f"\n===== {name} =====")
    print(text)
    if os.environ.get("XR_WRITE_RESULTS") == "1":
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run a scenario exactly once under pytest-benchmark."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return runner
