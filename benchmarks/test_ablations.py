"""Ablations over the design constants DESIGN.md calls out.

Not figures from the paper — these justify the paper's parameter choices
with sweeps on our substrate:

* fragment size around the 64 KB default (Sec. V-C),
* small-message threshold around the 4 KB default (Sec. IV-C),
* seq-ack window depth (Sec. V-B),
* memory-cache MR size: LITE-style 4 KB MRs vs X-RDMA's 4 MB (Sec. IV-E).

The sweep bodies live in :mod:`repro.fleet.scenarios` — one
implementation serves both these inline benchmarks (seed 0, assertions on
the paper's qualitative claims) and the parallel fleet sweeps
(``python -m repro.tools.xr_fleet run --spec ablation-grid``) that
regenerate the EXPERIMENTS.md tables across seeds.
"""

from repro.fleet.runner import run_scenario_inline

from .conftest import emit


def metrics(scenario: str, params: dict) -> dict:
    return run_scenario_inline(scenario, params, seed=0)["metrics"]


def test_ablation_fragment_size(once):
    sizes = [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]

    def run():
        return {size: metrics("fragment-incast",
                              {"fragment_bytes": size})["goodput_gbps"]
                for size in sizes}

    rows = once(run)
    lines = [f"{'fragment':>9} {'goodput(Gbps)':>14}"]
    for size, goodput in rows.items():
        lines.append(f"{size // 1024:>7}KB {goodput:>14.2f}")
    lines.append("")
    lines.append("paper: moderate fragments win — tiny ones cannot fill "
                 "the pipe under the outstanding-WR budget, huge ones "
                 "burst into congestion.  The optimum scales with the "
                 "deployment (64KB at Alibaba's 6144-connection nodes; "
                 "16KB at this bench's scaled-down incast).")
    emit("ablation_fragment_size", lines)

    # The paper's qualitative claim: an interior optimum exists.
    best = max(rows, key=rows.get)
    assert best not in (sizes[0], sizes[-1]), rows
    # Tiny fragments underfill the pipe ...
    assert rows[4 * 1024] < rows[best] * 0.8
    # ... and jumbo fragments congest back down.
    assert rows[256 * 1024] < rows[best] * 0.8


def test_ablation_small_message_threshold(once):
    """2 KB payloads: eager vs rendezvous — the 4 KB default keeps them
    on the fast path; memory cost is the tradeoff."""
    def run():
        return (metrics("rpc-latency", {"small_msg_size": 4096}),
                metrics("rpc-latency", {"small_msg_size": 1024}))

    eager, rendezvous = once(run)
    assert eager["eager"] and not rendezvous["eager"]
    eager_us = eager["rtt_us"]
    rendezvous_us = rendezvous["rtt_us"]
    # Receive-ring memory per channel scales with the threshold:
    depth_bytes_4k = eager["recv_ring_bytes_per_channel"]
    depth_bytes_1k = rendezvous["recv_ring_bytes_per_channel"]
    lines = [
        f"{'threshold':<12} {'2KB RPC rtt (us)':>17} {'recv ring B/ch':>15}",
        f"{'4096 (eager)':<12} {eager_us:>17.2f} {depth_bytes_4k:>15}",
        f"{'1024 (rndv)':<12} {rendezvous_us:>17.2f} {depth_bytes_1k:>15}",
        "",
        "paper: small messages trade memory for latency; large ones "
        "tolerate the rendezvous (Sec. IV-C)",
    ]
    emit("ablation_small_msg_threshold", lines)
    assert eager_us < rendezvous_us          # eager is faster ...
    assert depth_bytes_1k < depth_bytes_4k   # ... rendezvous is leaner


def test_ablation_window_depth(once):
    """Deeper windows raise one-way throughput until the pipe saturates."""
    depths = [4, 16, 64]

    def run():
        return {depth: metrics("window-throughput",
                               {"inflight_depth": depth})["throughput_gbps"]
                for depth in depths}

    rows = once(run)
    lines = [f"{'depth':>6} {'throughput(Gbps)':>17}"]
    for depth, gbps in rows.items():
        lines.append(f"{depth:>6} {gbps:>17.2f}")
    emit("ablation_window_depth", lines)
    assert rows[16] > rows[4]               # window was the bottleneck
    assert rows[64] >= rows[16] * 0.9       # then the pipe is


def test_ablation_mr_size(once):
    """LITE-style 4 KB MRs multiply registrations; 4 MB arenas amortize."""
    def run():
        return {"4KB MRs (LITE)": metrics("mr-registration",
                                          {"mr_bytes": 4096}),
                "4MB MRs (X-RDMA)": metrics("mr-registration",
                                            {"mr_bytes": 4 * 1024 * 1024})}

    rows = once(run)
    lines = [f"{'arena':<18} {'MRs':>5} {'alloc 256x4KB (us)':>19}"]
    for name, result in rows.items():
        lines.append(f"{name:<18} {result['mr_count']:>5} "
                     f"{result['alloc_us']:>19.0f}")
    lines.append("")
    lines.append("paper: LITE showed MR-count pressure beyond ~1000 MRs; "
                 "X-RDMA uses 4MB MRs to keep the count low (Sec. IV-E)")
    emit("ablation_mr_size", lines)

    lite = rows["4KB MRs (LITE)"]
    xrdma = rows["4MB MRs (X-RDMA)"]
    assert lite["mr_count"] == 256 and xrdma["mr_count"] == 1
    assert xrdma["alloc_us"] < lite["alloc_us"] / 5
