"""Ablations over the design constants DESIGN.md calls out.

Not figures from the paper — these justify the paper's parameter choices
with sweeps on our substrate:

* fragment size around the 64 KB default (Sec. V-C),
* small-message threshold around the 4 KB default (Sec. IV-C),
* seq-ack window depth (Sec. V-B),
* memory-cache MR size: LITE-style 4 KB MRs vs X-RDMA's 4 MB (Sec. IV-E).
"""

from statistics import mean

import pytest

from repro.cluster import build_cluster
from repro.sim import MICROS, SECONDS
from repro.sim.params import congested_params
from repro.tools import XrPerf
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache

from .conftest import emit


SOURCES = [src for src in range(4) for _ in range(4)]


def incast_goodput(config: XrdmaConfig) -> float:
    cluster = build_cluster(5, params=congested_params())
    perf = XrPerf(cluster)
    result = perf.run_incast(SOURCES, 4, size=256 * 1024,
                             messages_per_source=8, config=config)
    return result.goodput_gbps


def test_ablation_fragment_size(once):
    sizes = [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]

    def run():
        return {size: incast_goodput(XrdmaConfig(fragment_bytes=size))
                for size in sizes}

    rows = once(run)
    lines = [f"{'fragment':>9} {'goodput(Gbps)':>14}"]
    for size, goodput in rows.items():
        lines.append(f"{size // 1024:>7}KB {goodput:>14.2f}")
    lines.append("")
    lines.append("paper: moderate fragments win — tiny ones cannot fill "
                 "the pipe under the outstanding-WR budget, huge ones "
                 "burst into congestion.  The optimum scales with the "
                 "deployment (64KB at Alibaba's 6144-connection nodes; "
                 "16KB at this bench's scaled-down incast).")
    emit("ablation_fragment_size", lines)

    # The paper's qualitative claim: an interior optimum exists.
    best = max(rows, key=rows.get)
    assert best not in (sizes[0], sizes[-1]), rows
    # Tiny fragments underfill the pipe ...
    assert rows[4 * 1024] < rows[best] * 0.8
    # ... and jumbo fragments congest back down.
    assert rows[256 * 1024] < rows[best] * 0.8


def rpc_latency(config: XrdmaConfig, size: int) -> float:
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(8650)
    latencies = []

    def scenario():
        channel = yield from client.connect(1, 8650)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for index in range(16):
            t0 = cluster.sim.now
            request = client.send_request(channel, size)
            yield request.response
            if index >= 3:
                latencies.append(cluster.sim.now - t0)

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    return mean(latencies) / 1000


def test_ablation_small_message_threshold(once):
    """2 KB payloads: eager vs rendezvous — the 4 KB default keeps them
    on the fast path; memory cost is the tradeoff."""
    def run():
        eager = rpc_latency(XrdmaConfig(small_msg_size=4096), 2048)
        rendezvous = rpc_latency(XrdmaConfig(small_msg_size=1024), 2048)
        return eager, rendezvous

    eager_us, rendezvous_us = once(run)
    # Receive-ring memory per channel scales with the threshold:
    depth_bytes_4k = (4096 + 64) * 36
    depth_bytes_1k = (1024 + 64) * 36
    lines = [
        f"{'threshold':<12} {'2KB RPC rtt (us)':>17} {'recv ring B/ch':>15}",
        f"{'4096 (eager)':<12} {eager_us:>17.2f} {depth_bytes_4k:>15}",
        f"{'1024 (rndv)':<12} {rendezvous_us:>17.2f} {depth_bytes_1k:>15}",
        "",
        "paper: small messages trade memory for latency; large ones "
        "tolerate the rendezvous (Sec. IV-C)",
    ]
    emit("ablation_small_msg_threshold", lines)
    assert eager_us < rendezvous_us          # eager is faster ...
    assert depth_bytes_1k < depth_bytes_4k   # ... rendezvous is leaner


def test_ablation_window_depth(once):
    """Deeper windows raise one-way throughput until the pipe saturates."""
    depths = [4, 16, 64]

    def throughput(depth: int) -> float:
        cluster = build_cluster(2)
        config = XrdmaConfig(inflight_depth=depth)
        client = cluster.xrdma_context(0, config=config)
        server = cluster.xrdma_context(1, config=config)
        server.listen(8660)
        sim = cluster.sim
        received = []

        def sink():
            while True:
                msg = yield server.incoming.get()
                received.append(sim.now)

        sim.spawn(sink())

        def producer():
            channel = yield from client.connect(1, 8660)
            for _ in range(400):
                client.send_msg(channel, 2048)
            while len(received) < 400:
                yield sim.timeout(50 * MICROS)

        proc = sim.spawn(producer())
        t0 = sim.now
        sim.run_until_event(proc, limit=60 * SECONDS)
        return 400 * 2048 * 8 / (sim.now - t0)   # Gbps

    def run():
        return {depth: throughput(depth) for depth in depths}

    rows = once(run)
    lines = [f"{'depth':>6} {'throughput(Gbps)':>17}"]
    for depth, gbps in rows.items():
        lines.append(f"{depth:>6} {gbps:>17.2f}")
    emit("ablation_window_depth", lines)
    assert rows[16] > rows[4]               # window was the bottleneck
    assert rows[64] >= rows[16] * 0.9       # then the pipe is


def test_ablation_mr_size(once):
    """LITE-style 4 KB MRs multiply registrations; 4 MB arenas amortize."""
    def registrations(mr_bytes: int):
        cluster = build_cluster(1)
        host = cluster.host(0)
        pd = host.verbs.alloc_pd()
        cache = MemCache(host.verbs, pd, mr_bytes=mr_bytes)

        def scenario():
            buffers = []
            for _ in range(256):
                buffer = yield from cache.alloc(4096)
                buffers.append(buffer)
            return buffers

        t0 = cluster.sim.now
        proc = cluster.sim.spawn(scenario())
        cluster.sim.run_until_event(proc, limit=60 * SECONDS)
        return cache.mr_count, (cluster.sim.now - t0) / 1000

    def run():
        return {"4KB MRs (LITE)": registrations(4096),
                "4MB MRs (X-RDMA)": registrations(4 * 1024 * 1024)}

    rows = once(run)
    lines = [f"{'arena':<18} {'MRs':>5} {'alloc 256x4KB (us)':>19}"]
    for name, (count, micros) in rows.items():
        lines.append(f"{name:<18} {count:>5} {micros:>19.0f}")
    lines.append("")
    lines.append("paper: LITE showed MR-count pressure beyond ~1000 MRs; "
                 "X-RDMA uses 4MB MRs to keep the count low (Sec. IV-E)")
    emit("ablation_mr_size", lines)

    lite_count, lite_us = rows["4KB MRs (LITE)"]
    xrdma_count, xrdma_us = rows["4MB MRs (X-RDMA)"]
    assert lite_count == 256 and xrdma_count == 1
    assert xrdma_us < lite_us / 5