"""Fig. 10 — incast with and without X-RDMA flow control.

The paper emulates incast on one node (6144 connections, all outbound
Read/Write) and compares 64 KB, 128 KB and 128 KB-with-flow-control
payloads: fc improves bandwidth ~24%, cuts CNPs to 1–2% of the baseline
and drives TX pause frames to ~zero.

Scaled here to 32 channels (8 hosts × 4) into one sink over shallow
switch buffers.  Assertions are on the paper's qualitative claims:
goodput up, CNPs slashed, pauses eliminated, retransmissions gone.
"""

import pytest

from repro.cluster import build_cluster
from repro.sim import SECONDS
from repro.sim.params import congested_params
from repro.tools import XrPerf
from repro.xrdma import XrdmaConfig

from .conftest import emit

SOURCES = [s for s in range(8) for _ in range(4)]   # 32 connections
SINK = 8


def run_incast(flow_control: bool, size: int, messages: int):
    cluster = build_cluster(9, params=congested_params())
    perf = XrPerf(cluster)
    config = XrdmaConfig(flow_control=flow_control)
    return perf.run_incast(SOURCES, SINK, size=size,
                           messages_per_source=messages, config=config)


def test_fig10_flow_control(once):
    def run():
        return {
            "128KB": run_incast(False, 128 * 1024, 15),
            "128KB-fc": run_incast(True, 128 * 1024, 15),
            "64KB": run_incast(False, 64 * 1024, 30),
        }

    results = once(run)
    lines = [f"{'workload':<10} {'goodput(Gbps)':>14} {'CNP':>7} "
             f"{'TX-pause':>9} {'retx':>6}"]
    for name, result in results.items():
        lines.append(
            f"{name:<10} {result.goodput_gbps:>14.2f} "
            f"{result.crucial['cnps_sent']:>7} "
            f"{result.crucial['pause_frames']:>9} "
            f"{result.crucial['retransmissions']:>6}")
    lines.append("")
    lines.append("paper: fc improves bandwidth ~24%, CNP falls to 1-2%, "
                 "TX pause to ~0")
    emit("fig10_flow_control", lines)

    base = results["128KB"]
    with_fc = results["128KB-fc"]
    # Bandwidth improves by at least the paper's ~24%.
    assert with_fc.goodput_gbps > base.goodput_gbps * 1.20
    # CNPs collapse (paper: to 1-2%; we accept anything under 40%).
    assert with_fc.crucial["cnps_sent"] < base.crucial["cnps_sent"] * 0.4
    # TX pause frames are all but eliminated.
    assert with_fc.crucial["pause_frames"] < \
        max(base.crucial["pause_frames"] * 0.1, 30)
    # And RC-level retransmissions disappear entirely.
    assert with_fc.crucial["retransmissions"] == 0
    # 64 KB without fc sits between: smaller bursts help but the
    # uncapped demand still congests.
    small = results["64KB"]
    assert small.crucial["cnps_sent"] > with_fc.crucial["cnps_sent"]
