"""Fig. 10 — incast with and without X-RDMA flow control.

The paper emulates incast on one node (6144 connections, all outbound
Read/Write) and compares 64 KB, 128 KB and 128 KB-with-flow-control
payloads: fc improves bandwidth ~24%, cuts CNPs to 1–2% of the baseline
and drives TX pause frames to ~zero.

Scaled here to 32 channels (8 hosts × 4) into one sink over shallow
switch buffers.  Assertions are on the paper's qualitative claims:
goodput up, CNPs slashed, pauses eliminated, retransmissions gone.

The workload itself is the fleet's ``fig10-incast`` scenario
(:data:`repro.fleet.scenarios.FIG10_WORKLOADS` defines the presets); the
multi-seed sweep behind the committed table runs via
``python -m repro.tools.xr_fleet run --spec fig10``.
"""

from repro.fleet.runner import run_scenario_inline
from repro.fleet.scenarios import FIG10_WORKLOADS

from .conftest import emit


def test_fig10_flow_control(once):
    def run():
        return {label: run_scenario_inline(
                    "fig10-incast", {"workload": label}, seed=0)["metrics"]
                for label in FIG10_WORKLOADS}

    results = once(run)
    lines = [f"{'workload':<10} {'goodput(Gbps)':>14} {'CNP':>7} "
             f"{'TX-pause':>9} {'retx':>6}"]
    for name, result in results.items():
        lines.append(
            f"{name:<10} {result['goodput_gbps']:>14.2f} "
            f"{result['cnps_sent']:>7} "
            f"{result['pause_frames']:>9} "
            f"{result['retransmissions']:>6}")
    lines.append("")
    lines.append("paper: fc improves bandwidth ~24%, CNP falls to 1-2%, "
                 "TX pause to ~0")
    emit("fig10_flow_control", lines)

    base = results["128KB"]
    with_fc = results["128KB-fc"]
    # Bandwidth improves by at least the paper's ~24%.
    assert with_fc["goodput_gbps"] > base["goodput_gbps"] * 1.20
    # CNPs collapse (paper: to 1-2%; we accept anything under 40%).
    assert with_fc["cnps_sent"] < base["cnps_sent"] * 0.4
    # TX pause frames are all but eliminated.
    assert with_fc["pause_frames"] < max(base["pause_frames"] * 0.1, 30)
    # And RC-level retransmissions disappear entirely.
    assert with_fc["retransmissions"] == 0
    # 64 KB without fc sits between: smaller bursts help but the
    # uncapped demand still congests.
    small = results["64KB"]
    assert small["cnps_sent"] > with_fc["cnps_sent"]
