"""Fig. 12 — anti-jitter under pressure (ESSD and X-DB).

The paper's online monitoring shows throughput rising ~300% during a
pressure window with *no significant latency increase*, thanks to the
protocol extensions and resource management.

We drive ESSD (12a) and X-DB (12b) front-ends with a burst profile
(base → 3× base → base) and compare p50/p95 latency inside vs outside the
burst.  The contrast run disables flow control to show the jitter the
mechanisms remove.
"""

from statistics import mean

import pytest

from repro.analysis.stats import jitter_index
from repro.apps import EssdFrontend, PanguDeployment, XdbFrontend
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.sim.params import congested_params
from repro.workloads.traces import burst_profile
from repro.xrdma import XrdmaConfig

from .conftest import emit

DURATION = 1200 * MILLIS
BURST_START = 400 * MILLIS
BURST_LEN = 400 * MILLIS


def percentile(values, p):
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(len(ordered) * p / 100))]


def run_pressure(flow_control: bool):
    cluster = build_cluster(10, params=congested_params())
    config = XrdmaConfig(flow_control=flow_control)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[2, 3, 4, 5],
        replicas=3, config=config)
    deployment.establish_mesh()
    sim = cluster.sim

    essd = EssdFrontend(cluster, host_id=6, block_server_host=0,
                        io_bytes=128 * 1024, config=config)
    essd_profile = burst_profile(DURATION, base=500, burst=1500,
                                 burst_start_ns=BURST_START,
                                 burst_len_ns=BURST_LEN)
    sim.spawn(essd.run_profile(essd_profile, DURATION))

    xdb = XdbFrontend(cluster, host_id=7, block_server_host=1,
                      config=config)
    xdb_profile = burst_profile(DURATION, base=300, burst=900,
                                burst_start_ns=BURST_START,
                                burst_len_ns=BURST_LEN)
    sim.spawn(xdb.run_profile(xdb_profile, DURATION))

    sim.run(until=DURATION + 200 * MILLIS)
    return essd, xdb


def window_stats(app, label):
    calm = app.latencies_in(100 * MILLIS, BURST_START)
    burst = app.latencies_in(BURST_START, BURST_START + BURST_LEN)
    return {
        "label": label,
        "calm_p50_us": percentile(calm, 50) / 1000,
        "burst_p50_us": percentile(burst, 50) / 1000,
        "calm_p95_us": percentile(calm, 95) / 1000,
        "burst_p95_us": percentile(burst, 95) / 1000,
        "calm_n": len(calm),
        "burst_n": len(burst),
    }


def test_fig12_anti_jitter(once):
    def run():
        essd, xdb = run_pressure(flow_control=True)
        return window_stats(essd, "ESSD"), window_stats(xdb, "X-DB")

    essd_stats, xdb_stats = once(run)
    lines = [f"{'app':<6} {'calm p50':>9} {'burst p50':>10} "
             f"{'calm p95':>9} {'burst p95':>10} {'calm n':>7} {'burst n':>8}"]
    for stats in (essd_stats, xdb_stats):
        lines.append(
            f"{stats['label']:<6} {stats['calm_p50_us']:>9.0f} "
            f"{stats['burst_p50_us']:>10.0f} {stats['calm_p95_us']:>9.0f} "
            f"{stats['burst_p95_us']:>10.0f} {stats['calm_n']:>7} "
            f"{stats['burst_n']:>8}")
    lines.append("")
    lines.append("paper: throughput x3 during the pressure window with no "
                 "significant latency increment")
    emit("fig12_anti_jitter", lines)

    for stats in (essd_stats, xdb_stats):
        # Throughput really did triple inside the window.
        calm_rate = stats["calm_n"] / ((BURST_START - 100 * MILLIS) / 1e9)
        burst_rate = stats["burst_n"] / (BURST_LEN / 1e9)
        assert burst_rate > 2.0 * calm_rate, stats
        # ... and the median latency holds (no significant increment).
        assert stats["burst_p50_us"] < stats["calm_p50_us"] * 1.5, stats
        # Tail latency stays bounded too.
        assert stats["burst_p95_us"] < stats["calm_p95_us"] * 3.0, stats
