"""Sec. VII-F, experience 2 — SRQ saves memory but risks RNR.

"SRQ can effectively reduce memory usage.  However, it violates our
RNR-free design principle ... In X-RDMA, SRQ is supported although
disabled by default."

We run the same fan-in over per-QP receive queues and over one SRQ sized
below the aggregate window, showing the memory saving and the RNR risk.
"""

import pytest

from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig

from .conftest import emit

SENDERS = 4
MESSAGES = 93      # 3 full-window bursts per sender
BURST = 31


def run_fan_in(use_srq: bool, srq_size: int = 8):
    config = XrdmaConfig(use_srq=use_srq, srq_size=srq_size)
    cluster = build_cluster(SENDERS + 1)
    server = cluster.xrdma_context(SENDERS, config=config)
    server.listen(8900)
    sim = cluster.sim

    def sink():
        while True:
            yield server.incoming.get()

    sim.spawn(sink())

    def sender(host):
        ctx = cluster.xrdma_context(host)
        channel = yield from ctx.connect(SENDERS, 8900)
        sent = 0
        while sent < MESSAGES:
            for _ in range(BURST):        # full-window bursts: the shared
                if sent < MESSAGES:       # pool replenish cannot keep pace
                    ctx.send_msg(channel, 512)
                    sent += 1
            yield sim.timeout(3_000_000)

    procs = [sim.spawn(sender(host)) for host in range(SENDERS)]
    sim.run_until_event(sim.all_of(procs), limit=120 * SECONDS)
    sim.run(until=sim.now + 200 * MILLIS)
    delivered = sum(ch.stats["rx_msgs"] for ch in server.channels.values())
    recv_buffer_bytes = server.memcache.in_use_bytes
    return delivered, recv_buffer_bytes, cluster.stats.rnr_naks


def test_sec7f_srq_tradeoff(once):
    def run():
        return {
            "per-QP RQ": run_fan_in(use_srq=False),
            "SRQ": run_fan_in(use_srq=True, srq_size=8),
        }

    rows = once(run)
    lines = [f"{'mode':<10} {'delivered':>10} {'recv-buf bytes':>15} "
             f"{'RNR NAKs':>9}"]
    for name, (delivered, buf_bytes, rnr) in rows.items():
        lines.append(f"{name:<10} {delivered:>10} {buf_bytes:>15} {rnr:>9}")
    lines.append("")
    lines.append("paper: SRQ reduces memory but violates RNR-free; "
                 "disabled by default, avoid under ~10K QPs")
    emit("sec7f_srq", lines)

    rq_delivered, rq_bytes, rq_rnr = rows["per-QP RQ"]
    srq_delivered, srq_bytes, srq_rnr = rows["SRQ"]
    # Memory: SRQ posts one shared pool instead of per-channel rings.
    assert srq_bytes < rq_bytes
    # Robustness: per-QP queues are RNR-free; the undersized SRQ is not.
    assert rq_rnr == 0
    assert srq_rnr > 0
    # Traffic still completes eventually in both modes.
    assert rq_delivered == SENDERS * MESSAGES