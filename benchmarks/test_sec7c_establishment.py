"""Sec. VII-C — connection-establishment time and the QP cache.

Paper numbers:

* per-connection establishment falls 3946 µs → 2451 µs (−38%) with the
  QP cache;
* establishing 4096 connections takes ~3 s with X-RDMA versus ~10 s with
  plain rdma_cm (scaled down here to 256 connections).
"""

from statistics import mean

import pytest

from repro.cluster import build_cluster
from repro.sim import MICROS, SECONDS
from repro.xrdma import XrdmaConfig

from .conftest import emit


def single_connection_cost(warm_cache: bool) -> float:
    """Per-connection establishment µs, cold vs warm QP cache.

    One connection per fresh cluster: recycling from closed channels would
    otherwise warm the "cold" path silently.
    """
    costs = []
    for trial in range(3):
        cluster = build_cluster(2, seed=trial)
        client = cluster.xrdma_context(0)
        server = cluster.xrdma_context(1)
        server.listen(9700)
        sim = cluster.sim

        if warm_cache:
            def warm():
                yield from client.qpcache.prewarm(1)
                yield from server.qpcache.prewarm(1)
            proc = sim.spawn(warm())
            sim.run_until_event(proc, limit=SECONDS)

        def connector():
            t0 = sim.now
            yield from client.connect(1, 9700)
            return sim.now - t0

        proc = sim.spawn(connector())
        costs.append(sim.run_until_event(proc, limit=60 * SECONDS))
    return mean(costs) / 1000


def storm_duration(n_clients: int, conns_per_client: int,
                   warm: bool) -> float:
    """Wall time (s) for a connect storm of n×m connections to one host."""
    cluster = build_cluster(n_clients + 1)
    server = cluster.xrdma_context(n_clients)
    server.listen(9700)
    sim = cluster.sim
    contexts = [cluster.xrdma_context(h) for h in range(n_clients)]
    if warm:
        def warm_all():
            yield from server.qpcache.prewarm(
                min(n_clients * conns_per_client, 64))
            for ctx in contexts:
                yield from ctx.qpcache.prewarm(min(conns_per_client, 64))
        proc = sim.spawn(warm_all())
        sim.run_until_event(proc, limit=120 * SECONDS)

    t0 = sim.now

    def storm(ctx):
        for _ in range(conns_per_client):
            yield from ctx.connect(n_clients, 9700)

    procs = [sim.spawn(storm(ctx)) for ctx in contexts]
    sim.run_until_event(sim.all_of(procs), limit=sim.now + 300 * SECONDS)
    return (sim.now - t0) / 1e9


def test_sec7c_qp_cache_single_connection(once):
    def run():
        return single_connection_cost(False), single_connection_cost(True)

    cold_us, warm_us = once(run)
    saving = 1 - warm_us / cold_us
    lines = [
        f"{'path':<18} {'per-connection (us)':>20}",
        f"{'cold (no cache)':<18} {cold_us:>20.0f}",
        f"{'warm QP cache':<18} {warm_us:>20.0f}",
        "",
        f"saving: {saving:.0%}  (paper: 3946 -> 2451 us, -38%)",
    ]
    emit("sec7c_establishment_single", lines)

    # Magnitudes: milliseconds, like rdma_cm.
    assert 2500 < cold_us < 6000
    # The cache recovers a large fraction — the paper reports 38%.
    assert 0.25 < saving < 0.60


def test_sec7c_connect_storm(once):
    def run():
        return (storm_duration(8, 32, warm=False),
                storm_duration(8, 32, warm=True))

    cold_s, warm_s = once(run)
    lines = [
        f"{'path':<18} {'256-connection storm (s)':>26}",
        f"{'plain rdma_cm':<18} {cold_s:>26.2f}",
        f"{'with QP cache':<18} {warm_s:>26.2f}",
        "",
        "paper (4096 conns): ~10 s rdma_cm vs ~3 s with X-RDMA",
    ]
    emit("sec7c_establishment_storm", lines)

    assert warm_s < cold_s
    # The cache saves a substantial fraction of the storm.
    assert warm_s < 0.8 * cold_s