"""Sec. IX (Discussion) — DCT versus RC for massive connection counts.

The paper's position: "DCT can benefit massive connections to some extent
but DCT is not mature and stable enough in our tests."  We quantify both
halves on the simulated substrate:

* **benefit**: one DCI + cheap in-band sessions replace N full RC QPs —
  orders of magnitude less setup time and fewer NIC objects;
* **cost**: round-robin fan-out pays a drain+switch on every retarget,
  so per-message latency degrades versus dedicated RC connections.
"""

from statistics import mean

import pytest

from repro.cluster import build_cluster
from repro.rnic import Opcode, WorkRequest
from repro.sim import MICROS, SECONDS
from tests.conftest import establish, run_process

from .conftest import emit

N_PEERS = 12
ROUNDS = 6


def run_rc():
    """Dedicated RC QP per peer: expensive setup, cheap fan-out."""
    cluster = build_cluster(N_PEERS + 1)
    sim = cluster.sim
    t0 = sim.now
    conns = [establish(cluster, 0, peer + 1, service_port=7000)
             for peer in range(N_PEERS)]
    setup_ns = sim.now - t0
    sender = cluster.host(0)

    def prepost():
        for conn_c, conn_s in conns:
            host = cluster.hosts[conn_s.local_host]
            for _ in range(ROUNDS + 2):
                yield host.verbs.post_recv(conn_s.qp, WorkRequest(
                    opcode=Opcode.RECV, length=4096))

    run_process(cluster, prepost(), limit=10 * SECONDS)
    latencies = []

    def fan_out():
        for _ in range(ROUNDS):
            for conn_c, conn_s in conns:
                t_send = sim.now
                yield sender.verbs.post_send(conn_c.qp, WorkRequest(
                    opcode=Opcode.SEND, length=512, signaled=False))
                while not conn_s.qp.recv_cq.poll(1):
                    yield sim.timeout(500)
                latencies.append(sim.now - t_send)

    run_process(cluster, fan_out(), limit=60 * SECONDS)
    qp_objects = N_PEERS * 2     # one at each end per peer
    return setup_ns, mean(latencies), qp_objects


def run_dct():
    """One DCI, per-peer in-band sessions: cheap setup, switchy fan-out."""
    cluster = build_cluster(N_PEERS + 1)
    sim = cluster.sim
    sender = cluster.host(0)
    pd = sender.verbs.alloc_pd()
    cq = sender.verbs.create_cq()
    dci = sender.verbs.create_dc_initiator(pd, cq)

    targets = []
    t0 = sim.now
    for peer in range(N_PEERS):
        host = cluster.host(peer + 1)
        t_pd = host.verbs.alloc_pd()
        t_cq = host.verbs.create_cq()
        srq = host.verbs.create_srq(depth=128)
        for _ in range(ROUNDS + 2):
            srq.post(WorkRequest(opcode=Opcode.RECV, length=4096))
        targets.append(host.verbs.create_dc_target(t_pd, t_cq, srq))
    setup_ns = sim.now - t0      # SRQ/DCT creation is host-side & instant
    latencies = []

    def fan_out():
        for _ in range(ROUNDS):
            for peer, target in enumerate(targets):
                t_send = sim.now
                dci.post_send(peer + 1, target.dct_num, WorkRequest(
                    opcode=Opcode.SEND, length=512, signaled=False))
                while not target.recv_cq.poll(1):
                    yield sim.timeout(500)
                latencies.append(sim.now - t_send)

    run_process(cluster, fan_out(), limit=60 * SECONDS)
    # NIC-side objects: one DCI + per-peer lightweight sessions.
    return setup_ns, mean(latencies), 1 + dci.session_count, dci.switches


def test_sec9_dct_vs_rc(once):
    def run():
        return run_rc(), run_dct()

    (rc_setup, rc_latency, rc_qps), \
        (dc_setup, dc_latency, dc_objects, switches) = once(run)

    lines = [
        f"{'transport':<6} {'setup(ms)':>10} {'fanout lat(us)':>15} "
        f"{'NIC objects':>12}",
        f"{'RC':<6} {rc_setup / 1e6:>10.1f} {rc_latency / 1000:>15.2f} "
        f"{rc_qps:>12}",
        f"{'DCT':<6} {dc_setup / 1e6:>10.1f} {dc_latency / 1000:>15.2f} "
        f"{dc_objects:>12}",
        "",
        f"DCI retarget switches during fan-out: {switches}",
        "paper: DCT benefits massive connections to some extent, but is "
        "not mature/stable — setup wins, fan-out latency loses",
    ]
    emit("sec9_dct_vs_rc", lines)

    # The benefit: establishment collapses (no CM, no create_qp).
    assert dc_setup < rc_setup / 20
    # The cost: round-robin fan-out pays for every retarget.
    assert dc_latency > rc_latency
    assert switches >= (N_PEERS - 1) * ROUNDS - 1