"""Sec. VII-F, experience 1 — the RNIC QP-context cache barely matters.

"According to our evaluation upon ConnectX-4, cache influence on
performance is almost below 10% even when the number of QPs grows up to
60K."  We sweep the live QP count past the NIC's context-cache capacity
(scaled: 64-entry cache, up to 512 QPs) and measure ping-pong latency on
one victim connection while all QPs carry background traffic.
"""

from statistics import mean

import pytest

from repro.cluster import build_cluster
from repro.rnic import Opcode, QpState, WorkRequest
from repro.sim import MICROS, SECONDS, SimParams

from .conftest import emit

CACHE_ENTRIES = 64


def run_with_qps(total_qps: int) -> float:
    """Victim ping-pong latency (µs) with ``total_qps`` active QPs."""
    params = SimParams(nic_qp_cache_entries=CACHE_ENTRIES)
    cluster = build_cluster(2, params=params)
    from tests.conftest import establish
    sim = cluster.sim
    client, server = cluster.host(0), cluster.host(1)

    conns = [establish(cluster, 0, 1, service_port=7000 + i)
             for i in range(total_qps)]
    victim_c, victim_s = conns[0]

    def background(conn_c, conn_s, offset):
        """Sparse zero-byte writes cycle every QP through the NIC's
        context cache without saturating the transmit engine (~15%
        utilization regardless of QP count)."""
        yield sim.timeout(offset)
        while True:
            yield client.verbs.post_send(conn_c.qp, WorkRequest(
                opcode=Opcode.WRITE, length=0, remote_addr=0, rkey=1,
                signaled=False))
            yield sim.timeout(total_qps * 15 * MICROS)

    for index, (conn_c, conn_s) in enumerate(conns[1:]):
        sim.spawn(background(conn_c, conn_s, index * 15 * MICROS))

    latencies = []

    def victim():
        for _ in range(64):
            yield server.verbs.post_recv(victim_s.qp, WorkRequest(
                opcode=Opcode.RECV, length=256))
        for index in range(24):
            # Infrequent pings: every other QP gets touched in between,
            # so at high QP counts the victim's context is evicted.
            yield sim.timeout(2000 * MICROS)
            t0 = sim.now
            yield client.verbs.post_send(victim_c.qp, WorkRequest(
                opcode=Opcode.SEND, length=64, signaled=False))
            while not victim_s.qp.recv_cq.poll(1):
                yield sim.timeout(200)
            if index >= 4:
                latencies.append(sim.now - t0)

    proc = sim.spawn(victim())
    sim.run_until_event(proc, limit=120 * SECONDS)
    return mean(latencies) / 1000


def test_sec7f_qp_context_cache_influence(once):
    counts = [8, 128, 512]

    def run():
        return {count: run_with_qps(count) for count in counts}

    rows = once(run)
    base = rows[counts[0]]
    lines = [f"{'QPs':>6} {'latency(us)':>12} {'vs 8 QPs':>9}"]
    for count in counts:
        lines.append(f"{count:>6} {rows[count]:>12.2f} "
                     f"{rows[count] / base - 1:>8.1%}")
    lines.append("")
    lines.append(f"NIC context cache: {CACHE_ENTRIES} entries "
                 f"(paper: <10% impact up to 60K QPs on CX-4)")
    emit("sec7f_qp_scaling", lines)

    # The paper's conclusion: cache pressure alone costs ~10% or less.
    worst = max(rows.values())
    assert worst / base - 1 < 0.15
    # But it does cost *something* once the cache overflows.
    assert rows[counts[-1]] > base