"""Sec. VII-F, experience 3 — avoid continuous physical memory.

"We evaluate three modes (non-continuous, continuous and hugepage) and the
results show that the non-continuous mode has comparable performance and
less fragmentations."  We compare allocation cost and failure behaviour of
the three host-memory modes under fragmentation pressure.
"""

import pytest

from repro.memory import AllocMode, HostMemory, OutOfMemory

from .conftest import emit

MB = 1 << 20


def churn(memory: HostMemory, rounds: int = 2000) -> None:
    """Alloc/free churn drives fragmentation up."""
    live = []
    for index in range(rounds):
        live.append(memory.alloc(4 * MB))
        if len(live) > 8:
            memory.free(live.pop(0).addr)
    for allocation in live:
        memory.free(allocation.addr)


def profile_mode(mode: AllocMode):
    memory = HostMemory(capacity_bytes=8 << 30, hugepage_pool_bytes=1 << 30)
    cost_fresh = memory.alloc_cost_ns(4 * MB, mode)
    churn(memory)
    cost_fragmented = memory.alloc_cost_ns(4 * MB, mode)
    failures = 0
    for _ in range(16):
        try:
            allocation = memory.alloc(64 * MB, mode)
            memory.free(allocation.addr)
        except OutOfMemory:
            failures += 1
    return {
        "fresh_us": cost_fresh / 1000,
        "fragmented_us": cost_fragmented / 1000,
        "slowdown": cost_fragmented / cost_fresh,
        "large_alloc_failures": failures,
        "reclaims": memory.reclaim_events,
        "fragmentation": memory.fragmentation,
    }


def test_sec7f_memory_modes(once):
    def run():
        return {
            "non-continuous": profile_mode(AllocMode.ANONYMOUS),
            "continuous": profile_mode(AllocMode.CONTIGUOUS),
            "hugepage": profile_mode(AllocMode.HUGEPAGE),
        }

    rows = once(run)
    lines = [f"{'mode':<15} {'fresh(us)':>10} {'frag(us)':>9} "
             f"{'slowdown':>9} {'64MB fails':>11} {'reclaims':>9}"]
    for name, row in rows.items():
        lines.append(
            f"{name:<15} {row['fresh_us']:>10.1f} "
            f"{row['fragmented_us']:>9.1f} {row['slowdown']:>9.2f} "
            f"{row['large_alloc_failures']:>11} {row['reclaims']:>9}")
    lines.append("")
    lines.append("paper: non-continuous has comparable performance and "
                 "fewer fragmentation problems; continuous triggers kernel "
                 "reclaim under fragmentation")
    emit("sec7f_memory_modes", lines)

    anonymous = rows["non-continuous"]
    contiguous = rows["continuous"]
    hugepage = rows["hugepage"]
    # Non-continuous allocation cost is insensitive to fragmentation.
    assert anonymous["slowdown"] < 1.05
    # Continuous slows down badly and fails under fragmentation.
    assert contiguous["slowdown"] > 1.5
    assert contiguous["large_alloc_failures"] > 0
    assert contiguous["reclaims"] > 0
    # Non-continuous and hugepage never fail.
    assert anonymous["large_alloc_failures"] == 0
    assert hugepage["large_alloc_failures"] == 0