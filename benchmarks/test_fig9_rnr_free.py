"""Fig. 9 — RNR error counter: raw RDMA vs X-RDMA.

The paper's Pangu monitoring shows ~0.9 RNR errors per interval on raw
RDMA and exactly zero with X-RDMA's seq-ack window.  We reproduce both
sides: bursty senders overrunning a slow receiver's receive queue on raw
verbs raise RNR NAKs; the same burst through X-RDMA channels raises none.
"""

import pytest

from repro.cluster import build_cluster
from repro.rnic import Opcode, QpStateError, WorkRequest
from repro.sim import MICROS, MILLIS, SECONDS

from .conftest import emit

BURSTS = 8
BURST_LEN = 24
PAYLOAD = 1024


def run_raw_rdma():
    """Sender bursts past the receiver's slowly-replenished RQ."""
    from tests.conftest import establish
    cluster = build_cluster(2)
    conn_c, conn_s = establish(cluster, 0, 1)
    client, server = cluster.host(0), cluster.host(1)
    sim = cluster.sim

    def slow_receiver():
        # The application posts receives late — exactly the raw-RDMA
        # failure mode: the sender has no idea how fast we are.
        while True:
            if conn_s.qp.recv_buffers_posted < 8:
                yield server.verbs.post_recv(conn_s.qp, WorkRequest(
                    opcode=Opcode.RECV, length=PAYLOAD + 64))
            conn_s.qp.recv_cq.poll()
            yield sim.timeout(60 * MICROS)

    def bursty_sender():
        for _ in range(BURSTS):
            for _ in range(BURST_LEN):
                try:
                    yield client.verbs.post_send(conn_c.qp, WorkRequest(
                        opcode=Opcode.SEND, length=PAYLOAD, signaled=False))
                except QpStateError:    # SQ full under pressure
                    yield sim.timeout(100 * MICROS)
            yield sim.timeout(2 * MILLIS)

    sim.spawn(slow_receiver())
    sender = sim.spawn(bursty_sender())
    sim.run(until=200 * MILLIS)
    return cluster.stats.rnr_naks


def run_xrdma():
    """The same burst through X-RDMA: the window absorbs it, RNR-free."""
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    accepted = server.listen(8800)
    sim = cluster.sim

    def consumer():
        while True:
            yield server.incoming.get()
            yield sim.timeout(60 * MICROS)   # same slow application

    def producer():
        channel = yield from client.connect(1, 8800)
        for _ in range(BURSTS):
            for _ in range(BURST_LEN):
                client.send_msg(channel, PAYLOAD)
            yield sim.timeout(2 * MILLIS)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run(until=400 * MILLIS)
    return cluster.stats.rnr_naks


def test_fig9_rnr_counter(once):
    def run():
        return run_raw_rdma(), run_xrdma()

    raw_rnr, xrdma_rnr = once(run)
    per_interval = raw_rnr / BURSTS
    lines = [
        f"{'system':<10} {'RNR NAKs':>9} {'per burst interval':>20}",
        f"{'raw RDMA':<10} {raw_rnr:>9} {per_interval:>20.2f}",
        f"{'X-RDMA':<10} {xrdma_rnr:>9} {0.0:>20.2f}",
        "",
        "paper: raw RDMA averages ~0.91 RNR errors per interval; X-RDMA "
        "is RNR-free by construction",
    ]
    emit("fig9_rnr_counter", lines)

    assert raw_rnr > 0, "raw RDMA burst failed to provoke any RNR"
    assert xrdma_rnr == 0, "X-RDMA must be RNR-free"
