"""Fig. 11 — online QP count, IOPS and memory-cache usage during an
upgrade.

The paper's production monitoring shows a rolling upgrade raising the QP
count rapidly with no performance harm (11a/11b), and the memory cache's
occupied capacity tracking the in-use curve smoothly as bandwidth changes
(11c).

We run a Pangu deployment, roll in a second wave of block servers
mid-experiment (the upgrade), and sample everything with the Monitor.
"""

from statistics import mean

import pytest

from repro.analysis import Monitor
from repro.apps import EssdFrontend, PanguDeployment
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS

from .conftest import emit


def run_upgrade():
    cluster = build_cluster(12)
    monitor = Monitor(cluster.sim, cluster.stats,
                      sample_interval_ns=50 * MILLIS)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[4, 5, 6, 7], replicas=3)
    deployment.establish_mesh()
    for block_server in deployment.block_servers:
        monitor.attach(block_server.ctx)
    monitor.start_fabric_sampler(50 * MILLIS)

    sim = cluster.sim
    frontends = []
    for index, block_host in enumerate([0, 1]):
        frontend = EssdFrontend(cluster, host_id=8 + index,
                                block_server_host=block_host,
                                io_bytes=128 * 1024, queue_depth=4)
        frontends.append(frontend)
        sim.spawn(frontend.run_closed_loop(100_000))

    sim.run(until=600 * MILLIS)
    qp_before = deployment.qp_count()

    # The "online upgrade": two more block servers join and re-mesh.
    from repro.apps.pangu import BlockServer
    chunk_hosts = [cs.host_id for cs in deployment.chunk_servers]
    for host in (2, 3):
        block_server = BlockServer(cluster, host, replicas=3)
        deployment.block_servers.append(block_server)
        monitor.attach(block_server.ctx)
        sim.spawn(block_server.connect_mesh(chunk_hosts))
    for index, block_host in enumerate([2, 3]):
        frontend = EssdFrontend(cluster, host_id=10 + index,
                                block_server_host=block_host,
                                io_bytes=128 * 1024, queue_depth=4)
        frontends.append(frontend)
        sim.spawn(frontend.run_closed_loop(100_000))

    sim.run(until=1400 * MILLIS)
    qp_after = deployment.qp_count()
    return cluster, monitor, deployment, frontends, qp_before, qp_after


def test_fig11_online_resources(once):
    cluster, monitor, deployment, frontends, qp_before, qp_after = \
        once(run_upgrade)

    # -- 11a: QP number rises with the upgrade.
    assert qp_after > qp_before

    # -- 11b: IOPS did not collapse across the upgrade window.
    def iops_in(frontend_list, start, end):
        count = sum(
            1 for fe in frontend_list
            for when, _ in fe.completions if start <= when < end)
        return count / ((end - start) / 1e9)

    original = frontends[:2]
    before_iops = iops_in(original, 300 * MILLIS, 600 * MILLIS)
    after_iops = iops_in(original, 1000 * MILLIS, 1400 * MILLIS)
    assert after_iops > before_iops * 0.6   # no jitter collapse

    # -- 11c: memory cache tracks usage smoothly; occupied >= in-use.
    ctx = deployment.block_servers[0].ctx
    occupied = monitor.values(f"ctx{ctx.ctx_id}.mem_occupied")
    in_use = monitor.values(f"ctx{ctx.ctx_id}.mem_in_use")
    assert occupied and in_use
    assert all(o >= u for o, u in zip(occupied, in_use))
    assert max(in_use) > 0

    lines = [f"{'metric':<22} {'before':>12} {'after':>12}",
             f"{'deployment QPs':<22} {qp_before:>12} {qp_after:>12}",
             f"{'orig frontends IOPS':<22} {before_iops:>12.0f} "
             f"{after_iops:>12.0f}",
             f"{'mem occupied (max B)':<22} {max(occupied):>12.0f}",
             f"{'mem in-use (max B)':<22} {max(in_use):>12.0f}"]
    lines.append("")
    lines.append("paper: upgrade raises QP count without harming IOPS; "
                 "memory cache operates smoothly with bandwidth")
    emit("fig11_online_resources", lines)
