"""MR registration cache: lazy deregistration + batched registration.

Registration pins pages and programs the NIC translation table — tens of
microseconds that elastic workloads pay over and over as buffers churn.
The cache sits in front of ``verbs.reg_mr``:

* **release** keeps the registration *warm* instead of deregistering —
  the pages stay pinned and the MR stays installed in the NIC;
* **lookup** hands a warm same-length MR back with zero driver cost;
* **eviction** is FIFO by total pinned bytes (``capacity_bytes``), so
  the pinned-memory footprint — the cost no-pin mode exists to avoid —
  stays bounded and observable;
* **prewarm** registers many regions through ``verbs.reg_mr_batch``,
  paying the per-call driver base cost once for the whole batch.

Deregistration on eviction is synchronous and uncharged, mirroring
``MemCache.shrink`` (reclaim happens off the latency path).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.memory.host import AllocMode
from repro.rnic.mr import AccessFlags, MemoryRegion
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.mr import ProtectionDomain
    from repro.verbs.api import VerbsContext


class MrRegCache:
    """FIFO pool of warm (still-registered) memory regions."""

    def __init__(self, verbs: "VerbsContext", pd: "ProtectionDomain",
                 capacity_bytes: int = 64 * 1024 * 1024) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity: {capacity_bytes}")
        self.verbs = verbs
        self.pd = pd
        self.capacity_bytes = capacity_bytes
        self._pool: Deque[MemoryRegion] = deque()   #: FIFO, oldest left
        self.pinned_bytes = 0    #: bytes held warm (pinned but idle)
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pool)

    # ------------------------------------------------------------ fast path
    def lookup(self, length: int) -> Optional[MemoryRegion]:
        """A warm MR of exactly ``length`` bytes, or None (cold miss).

        Synchronous: a hit skips the driver entirely, which is the whole
        point of the cache.  First-fit over the FIFO keeps eviction order
        deterministic.
        """
        for index, mr in enumerate(self._pool):
            if mr.length == length:
                del self._pool[index]
                self.pinned_bytes -= length
                self.hits += 1
                return mr
        self.misses += 1
        return None

    def acquire(self, length: int, addr_source: Callable[[], int],
                access: AccessFlags = AccessFlags.all_remote()
                ) -> ProcessGenerator:
        """Generator: a warm MR if cached, else register at full cost.

        ``addr_source`` is only called on a miss — a hit reuses the warm
        MR's own (still-pinned) backing memory.
        """
        mr = self.lookup(length)
        if mr is None:
            mr = yield self.verbs.reg_mr(self.pd, addr_source(), length,
                                         access)
        return mr

    def release(self, mr: MemoryRegion) -> None:
        """Keep ``mr`` registered and warm; evict oldest past capacity."""
        self._pool.append(mr)
        self.pinned_bytes += mr.length
        self.releases += 1
        while self.pinned_bytes > self.capacity_bytes:
            self._evict(self._pool.popleft())

    # ------------------------------------------------------------- lifecycle
    def prewarm(self, count: int, length: int,
                addr_source: Optional[Callable[[], int]] = None,
                access: AccessFlags = AccessFlags.all_remote()
                ) -> ProcessGenerator:
        """Generator: batch-register ``count`` warm regions of ``length``.

        One ``reg_mr_batch`` call — the driver base cost is paid once,
        per-page pinning still sums (Sec. IV-E's lazy/batched knob).
        """
        if count <= 0:
            return
        if addr_source is None:
            memory = self.verbs.memory

            def addr_source() -> int:
                return memory.alloc(length, AllocMode.ANONYMOUS).addr
        regions = [(addr_source(), length) for _ in range(count)]
        mrs = yield self.verbs.reg_mr_batch(self.pd, regions, access)
        for mr in mrs:
            self.release(mr)

    def flush(self) -> int:
        """Deregister everything warm; returns the count (teardown path)."""
        count = len(self._pool)
        while self._pool:
            self._evict(self._pool.popleft())
        return count

    # -------------------------------------------------------------- internal
    def _evict(self, mr: MemoryRegion) -> None:
        self.pinned_bytes -= mr.length
        self.verbs.nic.mr_table.remove(mr)
        self.pd.deregister(mr)
        self.evictions += 1
