"""The QP cache (Sec. IV-E).

Creating a QP costs ~1 ms of driver/firmware work; destroying one wastes
that investment.  X-RDMA instead moves dead QPs to RESET and keeps them in
a per-context pool; establishment reuses them, cutting per-connection setup
from ≈3.9 ms to ≈2.5 ms (Sec. VII-C).

``put`` and ``prewarm`` are generators that yield verbs calls, so sim time
passes *between* a capacity check and the corresponding append.  Both
therefore re-check capacity after every yield and destroy the QP on
overshoot — concurrent recyclers racing for the last pool slot must never
push the pool past ``capacity`` (the ``qpcache.capacity_overshoot``
invariant).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.analysis.invariants import check as _invariant
from repro.rnic.qp import QpState, QueuePair
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.cq import CompletionQueue
    from repro.rnic.mr import ProtectionDomain
    from repro.verbs.api import VerbsContext


class QpCache:
    """Pool of RESET-state QPs ready for reuse."""

    def __init__(self, verbs: "VerbsContext", pd: "ProtectionDomain",
                 send_cq: "CompletionQueue", recv_cq: "CompletionQueue",
                 capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.verbs = verbs
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.capacity = capacity
        self._pool: Deque[QueuePair] = deque()
        self.hits = 0
        self.misses = 0
        self.puts = 0        #: recycle attempts (``recycled + destroyed``)
        self.recycled = 0    #: puts that landed in the pool
        self.destroyed = 0   #: puts/prewarms dropped at the NIC (pool full)

    def __len__(self) -> int:
        return len(self._pool)

    def _check_capacity(self) -> None:
        _invariant(len(self._pool) <= self.capacity,
                   "qpcache.capacity_overshoot",
                   lambda: f"pool {len(self._pool)} > "
                           f"capacity {self.capacity}")

    def get(self) -> Optional[QueuePair]:
        """A recycled RESET QP, or None (caller creates one at full cost)."""
        if self._pool:
            self.hits += 1
            return self._pool.popleft()
        self.misses += 1
        return None

    def put(self, qp: QueuePair) -> ProcessGenerator:
        """Generator: recycle a QP — reset it and pool it (or destroy it
        when the pool is full).  ``yield from`` inside a sim process."""
        self.puts += 1
        if len(self._pool) >= self.capacity:
            self.destroyed += 1
            yield self.verbs.destroy_qp(qp)
            return
        yield self.verbs.modify_qp(qp, QpState.RESET)
        if len(self._pool) >= self.capacity:
            # A concurrent put claimed the last slot while this QP was
            # resetting; pooling now would overshoot capacity.
            self.destroyed += 1
            yield self.verbs.destroy_qp(qp)
            return
        self._pool.append(qp)
        self.recycled += 1
        self._check_capacity()

    def prewarm(self, count: int) -> ProcessGenerator:
        """Generator: pre-create ``count`` QPs at startup (amortized cost)."""
        for _ in range(count):
            if len(self._pool) >= self.capacity:
                break
            qp = yield self.verbs.create_qp(self.pd, self.send_cq,
                                            self.recv_cq)
            if len(self._pool) >= self.capacity:
                # Raced with a concurrent prewarm/put for the last slot.
                self.destroyed += 1
                yield self.verbs.destroy_qp(qp)
                break
            self._pool.append(qp)
            self._check_capacity()
