"""The elastic control plane (Sec. IV-E grown up, ROADMAP item 3).

X-RDMA's data path is cheap; what dominates elastic workloads is the
*control plane* — QP creation/teardown, MR registration/pinning and the
CM handshake (the Swift observation).  This package pools and caches the
expensive control-plane objects so channel churn pays warm-cache prices:

* :class:`QpCache` — RESET-state QP pool (moved here from
  ``repro.xrdma.qpcache``; that module remains as a compatibility shim).
* :class:`MrRegCache` — registration cache in front of ``verbs.reg_mr``:
  deregistration becomes lazy, re-registration of a same-sized region
  becomes free, and batched registration amortizes the per-call base
  cost (the driver round trip) across many regions.

The NP-RDMA-style no-pin (on-demand paging) mode lives in
:class:`repro.xrdma.memcache.MemCache` as an ablation axis and is wired
through :class:`repro.xrdma.config.XrdmaConfig`.
"""

from repro.ctrlplane.mrcache import MrRegCache
from repro.ctrlplane.qpcache import QpCache

__all__ = ["MrRegCache", "QpCache"]
