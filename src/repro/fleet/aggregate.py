"""Folding run records into the jobs-invariant aggregate.

The aggregate is a pure function of ``(plan, terminal records)``: records
are keyed and sorted by run_id, every float comes from the deterministic
simulations themselves, and nothing wall-clock-derived is admitted
(``wall_s``, worker ids, and attempt *timing* live only in ``runs.jsonl``
and the manifest).  Serialize it with
:func:`repro.fleet.store.canonical_json` and the bytes are identical for
``--jobs 1`` and ``--jobs N`` — the property the committed invariance
test and the CI ``fleet-smoke`` job both enforce.

Structure::

    {
      "experiments": {name: {param_slug: {metric: {mean,p50,p90,min,max,n},
                                          runs, ok, failed,
                                          invariant_violations, digest}}},
      "runs":        {run_id: {status, attempts, seed, digest, metrics, ...}},
      "totals":      {runs, ok, failed, crashed, timeout, missing,
                      retried_attempts, invariant_violations, tie_anomalies}
    }

Percentiles use nearest-rank on the sorted values — integer index
arithmetic, no interpolation, no float-order sensitivity.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import nearest_rank
from repro.fleet.spec import RunUnit, format_params

__all__ = ["aggregate_records", "percentile", "metric_stats",
           "aggregate_tables"]

#: attempt-record fields that never enter the aggregate (host-timing or
#: bookkeeping the invariance guarantee must not depend on; ``traces``
#: and ``windows`` are normally split into traces.jsonl / windows.jsonl
#: before records reach us, but a hand-fed record must not bloat the
#: aggregate either)
_EXCLUDED_FIELDS = ("wall_s", "worker", "final", "traces", "windows")


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 1]).

    Sorts, then delegates to :func:`repro.analysis.stats.nearest_rank` —
    the one shared implementation (xr_trace and the serving window
    engine use the same one).
    """
    return nearest_rank(sorted(values), q)


def metric_stats(values: Sequence[float]) -> Dict[str, float]:
    """Deterministic summary of one metric across seeds."""
    ordered = sorted(values)
    return {
        "n": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "min": ordered[0],
        "max": ordered[-1],
    }


def _strip(record: Mapping[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in record.items()
            if key not in _EXCLUDED_FIELDS}


def _digest_roll(entries: Sequence[str]) -> str:
    """One digest over many ``run_id:digest`` lines (sorted)."""
    joined = "\n".join(sorted(entries))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def aggregate_records(
        units: Sequence[RunUnit],
        terminal: Mapping[str, Mapping[str, Any]],
        attempts: Optional[Mapping[str, int]] = None) -> Dict[str, Any]:
    """Fold terminal records (plus attempt counts) into the aggregate.

    ``units`` is the plan — any planned run without a terminal record is
    reported ``missing`` (a cancelled or still-running sweep) rather than
    silently dropped.
    """
    attempts = attempts or {}
    runs: Dict[str, Any] = {}
    by_group: Dict[str, Dict[str, List[Mapping[str, Any]]]] = \
        defaultdict(lambda: defaultdict(list))
    totals = {"runs": 0, "ok": 0, "failed": 0, "crashed": 0, "timeout": 0,
              "cancelled": 0, "missing": 0, "retried_attempts": 0,
              "invariant_violations": 0, "tie_anomalies": 0}

    for unit in sorted(units, key=lambda u: u.run_id):
        totals["runs"] += 1
        record = terminal.get(unit.run_id)
        n_attempts = attempts.get(unit.run_id,
                                  1 if record is not None else 0)
        totals["retried_attempts"] += max(0, n_attempts - 1)
        if record is None:
            runs[unit.run_id] = {"status": "missing", "attempts": n_attempts,
                                 "seed": unit.seed,
                                 "params": unit.params_dict}
            totals["missing"] += 1
            continue
        status = str(record.get("status", "failed"))
        totals[status] = totals.get(status, 0) + 1
        totals["invariant_violations"] += int(
            record.get("invariant_violations", 0))
        totals["tie_anomalies"] += int(record.get("tie_anomalies", 0))
        entry = _strip(record)
        entry["attempts"] = n_attempts
        runs[unit.run_id] = entry
        slug = format_params(unit.params_dict) or "-"
        by_group[unit.experiment][slug].append(record)

    experiments: Dict[str, Any] = {}
    for experiment in sorted(by_group):
        groups: Dict[str, Any] = {}
        for slug in sorted(by_group[experiment]):
            records = by_group[experiment][slug]
            ok = [r for r in records if r.get("status") == "ok"]
            metrics: Dict[str, Any] = {}
            numeric: Dict[str, List[float]] = defaultdict(list)
            for record in ok:
                for key, value in record.get("metrics", {}).items():
                    if isinstance(value, bool):
                        continue
                    if isinstance(value, (int, float)):
                        numeric[key].append(float(value))
            for key in sorted(numeric):
                metrics[key] = metric_stats(numeric[key])
            groups[slug] = {
                "runs": len(records),
                "ok": len(ok),
                "failed": len(records) - len(ok),
                "invariant_violations": sum(
                    int(r.get("invariant_violations", 0)) for r in records),
                "digest": _digest_roll(
                    [f"{r['run_id']}:{r.get('digest', '')}" for r in ok]),
                "metrics": metrics,
            }
        experiments[experiment] = groups

    return {"experiments": experiments, "runs": runs, "totals": totals}


# ------------------------------------------------------------- rendering
def aggregate_tables(aggregate: Mapping[str, Any]) -> str:
    """Paper-style text tables (one per experiment) from an aggregate."""
    lines: List[str] = []
    experiments = aggregate.get("experiments", {})
    for experiment in sorted(experiments):
        groups = experiments[experiment]
        lines.append(f"===== {experiment} =====")
        metric_names: List[str] = sorted(
            {name for group in groups.values()
             for name in group.get("metrics", {})})
        header = f"{'params':<40}" + "".join(
            f" {name:>18}" for name in metric_names) + f" {'ok/runs':>8}"
        lines.append(header)
        for slug in sorted(groups):
            group = groups[slug]
            row = f"{slug:<40}"
            for name in metric_names:
                stats = group["metrics"].get(name)
                row += (f" {stats['mean']:>18.3f}" if stats
                        else f" {'-':>18}")
            row += f" {group['ok']:>4}/{group['runs']}"
            lines.append(row)
        lines.append("")
    totals = aggregate.get("totals", {})
    if totals:
        lines.append(
            "totals: " + " ".join(f"{key}={totals[key]}"
                                  for key in sorted(totals)))
    return "\n".join(lines)
