"""Fleet scenarios for the protocol ablation matrix (ROADMAP item 5).

Three workload shapes, each swept over the pluggable protocol axes that
:mod:`repro.xrdma.protocol` exposes through :class:`XrdmaConfig` —
rendezvous variant (receiver Read vs sender Write-with-notify), eager
threshold, fragment size, and window depth:

* ``protocol-pingpong`` — closed-loop RPC latency, the variant's
  round-trip cost at and above the eager boundary;
* ``protocol-incast`` — congested many-to-one goodput, where fragment
  size and window depth interact with the variant's control-message
  economy;
* ``protocol-serving`` — the XR-Serve mice+bulk open-loop mix, where the
  bulk class rides the rendezvous path while mice demand low p99.

The ``protocol-ablation`` spec set grids them; the aggregate is the
"which protocol wins where" table EXPERIMENTS.md reports.
"""

from __future__ import annotations

from statistics import mean
from typing import Any, Dict, List

from repro.fleet.runner import RunContext
from repro.fleet.scenarios import scenario
from repro.serving import (BULK_CLASS, RPC_CLASS, ServingHarness, SloTarget,
                           TenantSpec, TrafficClass)
from repro.sim import MILLIS, SECONDS
from repro.sim.params import congested_params
from repro.tools.xr_perf import XrPerf
from repro.xrdma import XrdmaConfig

__all__ = ["protocol_config", "protocol_pingpong", "protocol_incast",
           "protocol_serving"]


def protocol_config(params: Dict[str, Any], **extra: Any) -> XrdmaConfig:
    """An :class:`XrdmaConfig` from the protocol axes present in
    ``params`` (absent axes keep the paper's defaults)."""
    kwargs: Dict[str, Any] = dict(extra)
    if "rendezvous_variant" in params:
        kwargs["rendezvous_variant"] = str(params["rendezvous_variant"])
    if "small_msg_size" in params:
        kwargs["small_msg_size"] = int(params["small_msg_size"])
    if "fragment_bytes" in params:
        kwargs["fragment_bytes"] = int(params["fragment_bytes"])
    if "inflight_depth" in params:
        kwargs["inflight_depth"] = int(params["inflight_depth"])
    return XrdmaConfig(**kwargs)


@scenario("protocol-pingpong")
def protocol_pingpong(ctx: RunContext) -> Dict[str, Any]:
    """Closed-loop RPC round trips under one protocol design point.

    params: rendezvous_variant, size; optional small_msg_size,
    fragment_bytes, inflight_depth, iterations.
    """
    params = ctx.params
    size = int(params.get("size", 2048))
    iterations = int(params.get("iterations", 16))
    config = protocol_config(params)
    cluster = ctx.build_cluster(2)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=protocol_config(params))
    accepted = server.listen(8720)
    latencies: List[int] = []

    def run():
        channel = yield from client.connect(1, 8720)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for index in range(iterations):
            t0 = cluster.sim.now
            request = client.send_request(channel, size)
            yield request.response
            if index >= 3:                      # drop warmup iterations
                latencies.append(cluster.sim.now - t0)
        return channel, server_channel

    proc = cluster.sim.spawn(run())
    channel, server_channel = cluster.sim.run_until_event(
        proc, limit=60 * SECONDS)
    return {
        "rtt_us": round(mean(latencies) / 1000, 3),
        "eager": size <= config.small_msg_size,
        "rendezvous_reads": server_channel.stats["rendezvous_reads"],
        "rendezvous_writes": channel.stats["rendezvous_writes"],
    }


@scenario("protocol-incast")
def protocol_incast(ctx: RunContext) -> Dict[str, Any]:
    """Congested incast goodput under one protocol design point.

    params: rendezvous_variant; optional fragment_bytes, inflight_depth,
    small_msg_size, n_sources, streams_per_source, size, messages.
    """
    params = ctx.params
    n_sources = int(params.get("n_sources", 4))
    streams = int(params.get("streams_per_source", 4))
    sources = [src for src in range(n_sources) for _ in range(streams)]
    cluster = ctx.build_cluster(n_sources + 1, params=congested_params())
    ctx.monitor(cluster)
    perf = XrPerf(cluster)
    result = perf.run_incast(sources, n_sources,
                             size=int(params.get("size", 256 * 1024)),
                             messages_per_source=int(
                                 params.get("messages", 8)),
                             config=protocol_config(params))
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "pause_frames": result.crucial.get("pause_frames", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }


@scenario("protocol-serving")
def protocol_serving(ctx: RunContext) -> Dict[str, Any]:
    """XR-Serve mice+bulk open-loop mix under one protocol design point:
    the bulk class exercises the rendezvous variant while the mice set
    the p99 the SLO judges.

    params: rendezvous_variant; optional small_msg_size, fragment_bytes,
    inflight_depth, rate_per_s, duration_ms, window_ms, slo_us.
    """
    params = ctx.params
    duration_ns = int(float(params.get("duration_ms", 40)) * MILLIS)
    window_ns = int(float(params.get("window_ms", 10)) * MILLIS)
    cluster = ctx.build_cluster(4)
    monitor = ctx.monitor(cluster)
    harness = ServingHarness(cluster, duration_ns=duration_ns,
                             window_ns=window_ns)
    harness.server_context(3, config=protocol_config(params))
    classes = (
        TrafficClass(name="rpc", weight=0.8, size_fn=RPC_CLASS.size_fn),
        TrafficClass(name="bulk", weight=0.2, size_fn=BULK_CLASS.size_fn))
    spec = TenantSpec(
        name="mix", hosts=(0, 1), server_host=3,
        rate_per_s=float(params.get("rate_per_s", 10_000.0)),
        classes=classes,
        n_channels=int(params.get("n_channels", 4)),
        policy=str(params.get("policy", "sharded")),
        slo=SloTarget(latency_us=float(params.get("slo_us", 800.0))))
    tenant = harness.add_tenant(spec, config=protocol_config(params))
    harness.run(monitor=monitor)
    ctx.record_windows(harness.window_rows())
    return {f"mix_{key}": value for key, value in tenant.summary().items()}
