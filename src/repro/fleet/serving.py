"""Fleet scenarios for XR-Serve: open-loop multi-tenant serving sweeps.

Two scenarios back the ``--spec serving`` family:

* ``serving-mix`` — one tenant with a mice+elephant class mix, swept
  over channel-selection policy and arrival process.  The headline
  number is the stable-window p99 under ``sharded`` vs ``round-robin``
  channels: sharding keeps bulk transfers from head-of-line-blocking
  the RPC class at the middleware queue.
* ``serving-interference`` — tenant B (latency-sensitive RPCs, traced
  with XR-Trace) shares a serving host with tenant A (a three-source
  bulk incast), swept over ``aggressor`` 0/1.  The aggregate table
  shows B's p99 degradation, and the traced segments attribute it —
  the inflation lives in the queueing stages, not the wire.

Both push their per-window SLO tables through
:meth:`repro.fleet.runner.RunContext.record_windows`, so sweeps grow a
``windows.jsonl`` artifact that :mod:`repro.tools.xr_slo` renders.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.fleet.runner import RunContext
from repro.fleet.scenarios import scenario
from repro.serving import (BULK_CLASS, RPC_CLASS, ServingHarness, SloTarget,
                           TenantSpec, TrafficClass)
from repro.sim import MILLIS
from repro.sim.params import congested_params
from repro.xrdma import XrdmaConfig

__all__ = ["serving_mix", "serving_interference"]

#: stages surfaced as flat metrics in the interference sweep (the rest
#: stay in the trace rollup / traces.jsonl)
_ATTRIBUTED_STAGES = ("window_wait", "flowctl_queue", "nic_tx", "rx_nic",
                      "ack_return")


def _harness(ctx: RunContext, cluster) -> ServingHarness:
    params = ctx.params
    duration_ns = int(float(params.get("duration_ms", 40)) * MILLIS)
    window_ns = int(float(params.get("window_ms", 10)) * MILLIS)
    return ServingHarness(cluster, duration_ns=duration_ns,
                          window_ns=window_ns)


def _flat(prefix: str, summary: Dict[str, Any]) -> Dict[str, Any]:
    return {f"{prefix}_{key}": value for key, value in summary.items()}


@scenario("serving-mix")
def serving_mix(ctx: RunContext) -> Dict[str, Any]:
    """One tenant, mice+elephant mix, open loop.

    params: policy (round-robin|sharded), arrival (poisson|mmpp|diurnal);
    optional rate_per_s (per source host), duration_ms, window_ms,
    n_channels, slo_us.
    """
    params = ctx.params
    cluster = ctx.build_cluster(4)
    monitor = ctx.monitor(cluster)
    harness = _harness(ctx, cluster)
    # Mice-dominant mix (the production shape): the channel-policy axis
    # only separates once bursts make per-channel queues bind, which is
    # why the full grid sweeps arrival=mmpp alongside poisson.
    classes = (
        TrafficClass(name="rpc", weight=0.8, size_fn=RPC_CLASS.size_fn),
        TrafficClass(name="bulk", weight=0.2, size_fn=BULK_CLASS.size_fn))
    spec = TenantSpec(
        name="mix", hosts=(0, 1), server_host=3,
        rate_per_s=float(params.get("rate_per_s", 10_000.0)),
        arrival=str(params.get("arrival", "poisson")),
        burst_factor=float(params.get("burst_factor", 6.0)),
        classes=classes,
        n_channels=int(params.get("n_channels", 4)),
        policy=str(params.get("policy", "round-robin")),
        slo=SloTarget(latency_us=float(params.get("slo_us", 800.0))))
    tenant = harness.add_tenant(spec)
    harness.run(monitor=monitor)
    ctx.record_windows(harness.window_rows())
    return _flat("mix", tenant.summary())


@scenario("serving-interference")
def serving_interference(ctx: RunContext) -> Dict[str, Any]:
    """Shared-host interference: bulk incast vs a latency-sensitive tenant.

    Tenant B (one source, all-RPC, XR-Traced) talks to a serving host;
    with ``aggressor=1`` tenant A fans three bulk sources into the same
    host.  params: aggressor (0|1); optional b_rate_per_s, a_rate_per_s,
    duration_ms, window_ms, slo_us.
    """
    params = ctx.params
    aggressor = int(params.get("aggressor", 1))
    cluster = ctx.build_cluster(6, params=congested_params())
    monitor = ctx.monitor(cluster)
    harness = _harness(ctx, cluster)
    # req-rsp mode end to end so XR-Trace contexts ride the headers;
    # only tenant B samples (the victim is what we decompose).
    server_ctx = harness.server_context(
        5, config=XrdmaConfig(req_rsp_mode=True))
    spec_b = TenantSpec(
        name="B", hosts=(4,), server_host=5,
        rate_per_s=float(params.get("b_rate_per_s", 8000.0)),
        classes=(RPC_CLASS,), n_channels=2,
        slo=SloTarget(latency_us=float(params.get("slo_us", 300.0))))
    tenant_b = harness.add_tenant(
        spec_b, config=XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1))
    for b_ctx in tenant_b.contexts:
        ctx.attach_tracer(cluster, b_ctx, tenant="B")
    ctx.attach_tracer(cluster, server_ctx)

    metrics: Dict[str, Any] = {"aggressor": aggressor}
    if aggressor:
        spec_a = TenantSpec(
            name="A", hosts=(0, 1, 2), server_host=5,
            rate_per_s=float(params.get("a_rate_per_s", 1500.0)),
            classes=(BULK_CLASS,), n_channels=2,
            slo=SloTarget(latency_us=50_000.0))
        tenant_a = harness.add_tenant(
            spec_a, config=XrdmaConfig(req_rsp_mode=True))
        harness.run(monitor=monitor)
        metrics.update(_flat("a", tenant_a.summary()))
    else:
        harness.run(monitor=monitor)
    ctx.record_windows(harness.window_rows())
    metrics.update(_flat("b", tenant_b.summary()))
    # Per-segment attribution: where tenant B's latency went, straight
    # from the victim's own tracer histograms.
    rollup = ctx.trace_rollup()
    for stage in _ATTRIBUTED_STAGES:
        entry = rollup.get("segments", {}).get(stage)
        metrics[f"seg_{stage}_p99_us"] = (
            round(entry["p99_ns"] / 1000, 2) if entry else 0.0)
    return metrics
