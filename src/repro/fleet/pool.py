"""The supervised worker pool: crash-isolated parallel sweep execution.

Architecture (one supervisor, N single-purpose workers)::

    supervisor ──task_q(1)──▶ worker 0 ──┐
               ──task_q(1)──▶ worker 1 ──┼──result_q──▶ supervisor
               ──task_q(1)──▶ ...      ──┘

Each worker owns a private depth-1 task queue, so the supervisor always
knows exactly which run a worker holds and since when — that is what
makes per-run wall-clock deadlines and crash attribution exact rather
than heuristic.  The contract the failure drills pin down:

* **Crash isolation** — a worker that dies mid-run (segfault analogue:
  ``os._exit``) is detected by liveness polling; the supervisor records a
  ``crashed`` attempt, respawns a fresh worker, and the sweep continues.
* **Timeouts** — a run past its ``timeout_s`` deadline gets its worker
  killed (SIGKILL; no cooperation required) and a ``timeout`` attempt
  recorded.  The in-engine guard (armed slightly tighter) usually turns
  the run into a reasoned ``failed`` record before the kill is needed.
* **Bounded retries with backoff, then quarantine** — failed / crashed /
  timed-out attempts are re-queued with exponential backoff up to the
  unit's ``max_retries``; after that the run is *quarantined*: its last
  attempt record is marked ``final`` and the sweep moves on.  The sweep
  always completes.
* **Graceful cancellation** — on KeyboardInterrupt the supervisor stops
  dispatching, kills in-flight workers, records ``cancelled`` attempts
  for them, and still writes a complete (if partial) store.

Dispatch order is the planner's canonical order regardless of ``jobs``;
completion interleaving differs, but the store keys records by run_id and
the aggregator sorts — which is why ``--jobs 1`` and ``--jobs 4`` emit
byte-identical aggregates.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.fleet.runner import execute_unit
from repro.fleet.spec import RunUnit
from repro.fleet.store import ResultStore

__all__ = ["FleetPool", "SweepSummary"]

#: supervisor poll period — bounds deadline-detection latency
_POLL_S = 0.05
#: how long to wait for a worker to exit before escalating to kill
_JOIN_S = 2.0


def _wall() -> float:
    """Host wall clock for deadlines/backoff; never observed by any
    simulation and excluded from jobs-invariant artifacts."""
    return time.monotonic()  # xr-lint: disable=wall-clock


def _worker_main(worker_id: int, task_q: "mp.queues.Queue[Any]",
                 result_q: "mp.queues.Queue[Any]") -> None:
    """Worker loop: take a task, run it, post the record, repeat.

    Anything :func:`execute_unit` can catch is already a ``failed``
    record; anything it cannot (os._exit, signals, interpreter death) is
    the supervisor's crash-detection problem — by design there is no
    try/except here pretending otherwise.
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        result_q.put((worker_id, execute_unit(task)))


@dataclass
class _Task:
    unit: RunUnit
    attempt: int = 0
    eligible_at: float = 0.0        #: host time before which not dispatched


@dataclass
class _Worker:
    worker_id: int
    process: mp.process.BaseProcess
    task_q: "mp.queues.Queue[Any]"
    current: Optional[_Task] = None
    deadline: float = 0.0


@dataclass
class SweepSummary:
    """What a pool run did, for manifests and CLI output."""

    records: int = 0                #: attempt records written
    ok: int = 0
    failed: int = 0
    crashed: int = 0
    timeout: int = 0
    cancelled: int = 0
    retries: int = 0                #: re-queued attempts
    quarantined: int = 0            #: runs that exhausted max_retries
    workers_respawned: int = 0
    wall_s: float = 0.0
    interrupted: bool = False
    attempts_by_run: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records, "ok": self.ok, "failed": self.failed,
            "crashed": self.crashed, "timeout": self.timeout,
            "cancelled": self.cancelled, "retries": self.retries,
            "quarantined": self.quarantined,
            "workers_respawned": self.workers_respawned,
            "wall_s": round(self.wall_s, 3),
            "interrupted": self.interrupted,
        }


class FleetPool:
    """Runs planned units across ``jobs`` supervised worker processes."""

    def __init__(self, jobs: int = 2, backoff_s: float = 0.25,
                 mp_context: Optional[str] = None,
                 on_record: Optional[Callable[[Dict[str, Any]], None]]
                 = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.backoff_s = backoff_s
        self.on_record = on_record
        if mp_context is None:
            # fork keeps worker startup ~ms; fall back where unavailable.
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(mp_context)
        self._next_worker_id = 0

    # ------------------------------------------------------------ internals
    def _spawn_worker(self, result_q: "mp.queues.Queue[Any]") -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_q: "mp.queues.Queue[Any]" = self._ctx.Queue(maxsize=1)
        process = self._ctx.Process(
            target=_worker_main, args=(worker_id, task_q, result_q),
            name=f"xr-fleet-w{worker_id}", daemon=True)
        process.start()
        return _Worker(worker_id=worker_id, process=process, task_q=task_q)

    def _synthesize(self, task: _Task, status: str,
                    reason: str) -> Dict[str, Any]:
        """A record for an attempt that produced none (crash/timeout/
        cancel) — same shape as :func:`execute_unit` output."""
        unit = task.unit
        return {
            "run_id": unit.run_id, "experiment": unit.experiment,
            "scenario": unit.scenario, "params": unit.params_dict,
            "seed": unit.seed, "attempt": task.attempt,
            "status": status, "reason": reason, "metrics": {},
            "digest": "", "events": 0, "tie_anomalies": 0,
            "invariant_violations": 0, "monitor": {}, "wall_s": 0.0,
        }

    def _finish_attempt(self, task: _Task, record: Dict[str, Any],
                        store: ResultStore, summary: SweepSummary,
                        pending: List[_Task]) -> None:
        """Write the attempt record; decide retry vs terminal."""
        status = str(record.get("status", "failed"))
        retryable = status in ("failed", "crashed", "timeout")
        will_retry = retryable and task.attempt < task.unit.max_retries
        record["final"] = not will_retry
        summary.records += 1
        summary.attempts_by_run[task.unit.run_id] = task.attempt + 1
        count_key = status if status in ("ok", "failed", "crashed",
                                         "timeout", "cancelled") else "failed"
        setattr(summary, count_key, getattr(summary, count_key) + 1)
        store.append(record)
        if self.on_record is not None:
            self.on_record(record)
        if will_retry:
            summary.retries += 1
            backoff = self.backoff_s * (2 ** task.attempt)
            pending.append(_Task(unit=task.unit, attempt=task.attempt + 1,
                                 eligible_at=_wall() + backoff))
        elif retryable and task.attempt >= task.unit.max_retries \
                and task.unit.max_retries > 0:
            summary.quarantined += 1

    def _reap(self, worker: _Worker) -> None:
        """Make certain a worker process is gone (kill, join, close)."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=_JOIN_S)
        worker.task_q.close()

    # ------------------------------------------------------------------ run
    def run(self, units: Sequence[RunUnit],
            store: ResultStore) -> SweepSummary:
        """Execute every unit (dispatching in the given canonical order);
        returns after all runs reached a terminal record."""
        summary = SweepSummary()
        t0 = _wall()
        pending: List[_Task] = [_Task(unit=unit) for unit in units]
        result_q: "mp.queues.Queue[Any]" = self._ctx.Queue()
        n_workers = min(self.jobs, max(1, len(pending)))
        workers: Dict[int, _Worker] = {}
        for _ in range(n_workers):
            worker = self._spawn_worker(result_q)
            workers[worker.worker_id] = worker
        try:
            self._supervise(pending, workers, result_q, store, summary)
        except KeyboardInterrupt:
            summary.interrupted = True
            for worker in workers.values():
                if worker.current is not None:
                    record = self._synthesize(
                        worker.current, "cancelled", "sweep interrupted")
                    record["final"] = True
                    summary.records += 1
                    summary.cancelled += 1
                    summary.attempts_by_run[worker.current.unit.run_id] = \
                        worker.current.attempt + 1
                    store.append(record)
                    worker.current = None
        finally:
            for worker in workers.values():
                if worker.current is None and worker.process.is_alive():
                    try:
                        worker.task_q.put_nowait(None)
                    except queue.Full:
                        pass
                self._reap(worker)
            result_q.close()
            summary.wall_s = _wall() - t0
        return summary

    def _supervise(self, pending: List[_Task], workers: Dict[int, _Worker],
                   result_q: "mp.queues.Queue[Any]", store: ResultStore,
                   summary: SweepSummary) -> None:
        while pending or any(w.current is not None
                             for w in workers.values()):
            now = _wall()
            # Dispatch: canonical order, to idle workers, honoring backoff.
            for worker in workers.values():
                if worker.current is not None or not pending:
                    continue
                index = next((i for i, task in enumerate(pending)
                              if task.eligible_at <= now), None)
                if index is None:
                    break
                task = pending.pop(index)
                worker.current = task
                worker.deadline = now + task.unit.timeout_s
                worker.task_q.put(task.unit.as_task(task.attempt))

            # Collect one result (bounded wait keeps the loop ticking).
            try:
                worker_id, record = result_q.get(timeout=_POLL_S)
            except queue.Empty:
                pass
            else:
                worker = workers.get(worker_id)
                if worker is not None and worker.current is not None:
                    task = worker.current
                    worker.current = None
                    self._finish_attempt(task, record, store, summary,
                                         pending)
                # else: a record from a worker killed at the same instant
                # its result landed — the kill path already synthesized
                # and recorded that attempt; drop the duplicate.

            # Deadlines: kill overdue workers, record timeout attempts.
            now = _wall()
            for worker_id in list(workers):
                worker = workers[worker_id]
                task = worker.current
                if task is None or now <= worker.deadline:
                    continue
                self._reap(worker)
                del workers[worker_id]
                worker.current = None
                record = self._synthesize(
                    task, "timeout",
                    f"run exceeded timeout_s={task.unit.timeout_s}; "
                    f"worker killed")
                self._finish_attempt(task, record, store, summary, pending)
                replacement = self._spawn_worker(result_q)
                workers[replacement.worker_id] = replacement
                summary.workers_respawned += 1

            # Crashes: a worker died while holding a run.
            for worker_id in list(workers):
                worker = workers[worker_id]
                if worker.process.is_alive():
                    continue
                task = worker.current
                self._reap(worker)
                del workers[worker_id]
                if task is not None:
                    worker.current = None
                    record = self._synthesize(
                        task, "crashed",
                        f"worker died mid-run "
                        f"(exitcode {worker.process.exitcode})")
                    self._finish_attempt(task, record, store, summary,
                                         pending)
                if pending or any(w.current is not None
                                  for w in workers.values()) or task:
                    replacement = self._spawn_worker(result_q)
                    workers[replacement.worker_id] = replacement
                    summary.workers_respawned += 1
