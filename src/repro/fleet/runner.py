"""Executing one run unit: the in-worker half of the fleet.

:func:`execute_unit` is what a pool worker calls for each task.  It wires
the determinism and self-checking machinery around an arbitrary scenario
callable:

* a :class:`RunContext` whose ``build_cluster`` seeds every cluster from
  the unit's seed and enables the TieAudit schedule digest,
* a count-mode invariant registry (unless the hosting process already
  installed one — benchmarks run inline under their own),
* engine runaway guards (``max_events`` plus a wall budget slightly under
  the supervisor's kill deadline, so most runaways die as recorded
  failures instead of SIGKILLs),
* metric sanitation — a scenario returning non-JSON metrics is a failed
  run, not a crashed sweep.

The resulting record is a plain dict ready for the JSONL store.  Nothing
in it except the explicitly wall-clock fields (``wall_s``) depends on
host timing, which is what the aggregator's byte-identity rests on.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.analysis import invariants
from repro.analysis.clocksync import ClockSync
from repro.analysis.monitor import Monitor
from repro.analysis.stats import LatencyHistogram
from repro.analysis.tracing import Tracer, merged_trace_records
from repro.cluster import Cluster, build_cluster
from repro.sim.engine import Simulator
from repro.sim.params import SimParams

__all__ = ["RunContext", "ScenarioFn", "execute_unit", "resolve_scenario",
           "run_scenario_inline"]

ScenarioFn = Callable[["RunContext"], Optional[Dict[str, Any]]]

#: headroom between the in-engine wall guard and the supervisor's kill
#: deadline: the guard should fire first so the run records a reasoned
#: failure; the kill is the backstop for scenarios stuck outside the
#: engine loop entirely.
GUARD_HEADROOM = 0.75


def _wall() -> float:
    """Host wall clock; only ever recorded in ``wall_s`` fields, which the
    aggregator excludes from jobs-invariant output."""
    return time.monotonic()  # xr-lint: disable=wall-clock


class RunContext:
    """What a scenario callable receives: parameters, seed, and factories.

    Scenarios must create clusters through :meth:`build_cluster` (never
    :func:`repro.cluster.build_cluster` directly) so the run's seed,
    schedule digest, and runaway guards are applied uniformly.
    """

    def __init__(self, params: Dict[str, Any], seed: int, attempt: int = 0,
                 max_events: Optional[int] = None,
                 wall_timeout_s: Optional[float] = None) -> None:
        self.params = params
        self.seed = seed
        self.attempt = attempt
        self._max_events = max_events
        self._wall_timeout_s = wall_timeout_s
        self._sims: List[Simulator] = []
        self._monitors: List[Monitor] = []
        self._tracers: List[Tracer] = []
        self._window_records: List[Dict[str, Any]] = []
        #: one shared ClockSync per cluster (identity-matched list, not an
        #: id()-keyed dict, so iteration order never depends on addresses)
        self._clocksyncs: List[Any] = []

    # ------------------------------------------------------------ factories
    def build_cluster(self, n_hosts: int = 4,
                      params: Optional[SimParams] = None,
                      attach_hosts: Optional[Iterable[int]] = None,
                      **dims: int) -> Cluster:
        """A seeded, audited, guarded cluster for this run.

        ``attach_hosts`` passes through to
        :func:`repro.cluster.build_cluster` for the cluster-scale
        scenarios, which size the fabric for the whole emulated cluster
        but attach RNIC stacks only for their shard's rack.
        """
        cluster = build_cluster(n_hosts, params=params, seed=self.seed,
                                attach_hosts=attach_hosts, **dims)
        cluster.sim.enable_tie_audit()
        if self._max_events is not None or self._wall_timeout_s is not None:
            cluster.sim.set_guards(max_events=self._max_events,
                                   wall_timeout_s=self._wall_timeout_s)
        self._sims.append(cluster.sim)
        return cluster

    def monitor(self, cluster: Cluster,
                sample_interval_ns: int = 10_000_000) -> Monitor:
        """Attach a fabric monitor whose series are rolled into the record.

        Spawns the background fabric sampler — safe under
        ``run_until_event``/bounded ``run(until=...)``, which is how all
        fleet scenarios drive their simulations.
        """
        mon = Monitor(cluster.sim, cluster.stats,
                      sample_interval_ns=sample_interval_ns)
        mon.start_fabric_sampler()
        self._monitors.append(mon)
        return mon

    def attach_tracer(self, cluster: Cluster, xrdma_ctx: Any,
                      resync_after_ns: Optional[int] = None,
                      tenant: str = "") -> Tracer:
        """Attach an XR-Trace tracer to one context; tracers on the same
        cluster share one ClockSync (network decomposition needs both ends
        on the same offset table).  Trace records flow into the run record
        via :meth:`trace_rollup` / :meth:`trace_records`.  ``tenant`` tags
        every record the tracer creates (serving scenarios use it for
        per-tenant critical-path attribution)."""
        sync: Optional[ClockSync] = None
        for owner, existing in self._clocksyncs:
            if owner is cluster:
                sync = existing
                break
        if sync is None:
            sync = ClockSync(cluster.rng, resync_after_ns=resync_after_ns)
            self._clocksyncs.append((cluster, sync))
        tracer = Tracer(xrdma_ctx, sync, tenant=tenant)
        self._tracers.append(tracer)
        return tracer

    def record_windows(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Stash per-window SLO rows (XR-Serve) for the run record.

        Rows land in the record's ``windows`` key, which the store splits
        into the sweep's ``windows.jsonl`` artifact — exactly the
        ``traces`` treatment, and like traces they are excluded from the
        jobs-invariant aggregate."""
        self._window_records.extend(rows)

    # ------------------------------------------------------------ collection
    def schedule_digest(self) -> str:
        """The run's schedule digest (joined when multiple clusters)."""
        digests = [sim.tie_audit.digest() for sim in self._sims
                   if sim.tie_audit is not None]
        if not digests:
            return ""
        if len(digests) == 1:
            return digests[0]
        return hashlib.sha256("\n".join(digests).encode()).hexdigest()

    def events_fired(self) -> int:
        return sum(sim._sequence for sim in self._sims)

    def tie_anomalies(self) -> int:
        return sum(sim.tie_audit.anomalies for sim in self._sims
                   if sim.tie_audit is not None)

    def monitor_rollup(self) -> Dict[str, Dict[str, float]]:
        """Per-series rollup (sample count / last / peak), sim-time only."""
        rollup: Dict[str, Dict[str, float]] = {}
        for mon in self._monitors:
            for name in sorted(mon.series):
                values = mon.values(name)
                if not values:
                    continue
                rollup[name] = {
                    "samples": len(values),
                    "last": values[-1],
                    "peak": max(values),
                }
        return rollup

    def trace_rollup(self) -> Dict[str, Any]:
        """Deterministic XR-Trace summary for the run record ({} when no
        tracer is attached)."""
        if not self._tracers:
            return {}
        records = self.trace_records()
        completed = sum(1 for record in records if record["complete"])
        segments: Dict[str, Dict[str, float]] = {}
        merged: Dict[str, LatencyHistogram] = {}
        for tracer in self._tracers:
            for stage in sorted(tracer.segment_latency):
                histogram = merged.get(stage)
                if histogram is None:
                    histogram = merged[stage] = LatencyHistogram()
                histogram.merge(tracer.segment_latency[stage])
        for stage in sorted(merged):
            histogram = merged[stage]
            segments[stage] = {
                "count": histogram.count,
                "p99_ns": histogram.percentile(99),
            }
        return {
            "records": len(records),
            "completed": completed,
            "incomplete": len(records) - completed,
            "negative_network_clamped": sum(
                tracer.negative_network_clamped for tracer in self._tracers),
            "suppressed_marks": sum(
                tracer.suppressed_marks for tracer in self._tracers),
            "segments": segments,
        }

    def trace_records(self) -> List[Dict[str, Any]]:
        """Every trace, one dict per trace id (sender view preferred)."""
        return merged_trace_records(self._tracers)

    def window_records(self) -> List[Dict[str, Any]]:
        """Per-window rows stashed via :meth:`record_windows`."""
        return list(self._window_records)


# --------------------------------------------------------------- resolution
def resolve_scenario(name: str) -> ScenarioFn:
    """Look up a scenario by registry name or ``module:attr`` path.

    Importing :mod:`repro.fleet.scenarios` / :mod:`repro.fleet.drills`
    populates the registry, so workers (including spawn-context ones that
    share no interpreter state) resolve purely from the task's string.
    """
    from repro.fleet import (drills, protocol,   # noqa: F401  (registration)
                             scenarios, serving)  # noqa: F401
    fn = scenarios.SCENARIOS.get(name)
    if fn is not None:
        return fn
    if ":" in name:
        module_name, _, attr = name.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr, None)
        if callable(fn):
            return fn
    raise KeyError(
        f"unknown scenario {name!r}; registered: "
        f"{', '.join(sorted(scenarios.SCENARIOS))} (or use 'module:attr')")


# ---------------------------------------------------------------- execution
def execute_unit(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task dict (see :meth:`RunUnit.as_task`) to a record dict.

    Never raises for scenario-level failures — those become
    ``status="failed"`` records; only defects in the fleet itself (or
    process death, which the supervisor handles) escape.
    """
    timeout_s = task.get("timeout_s")
    wall_guard = (None if timeout_s is None
                  else max(0.1, float(timeout_s) * GUARD_HEADROOM))
    ctx = RunContext(params=dict(task["params"]), seed=int(task["seed"]),
                     attempt=int(task.get("attempt", 0)),
                     max_events=task.get("max_events"),
                     wall_timeout_s=wall_guard)
    registry = invariants.current()
    owns_registry = registry is None
    if owns_registry:
        registry = invariants.install(mode="count")
    violations_before = registry.total
    status, reason = "ok", ""
    metrics: Dict[str, Any] = {}
    t0 = _wall()
    try:
        metrics = resolve_scenario(task["scenario"])(ctx) or {}
        # Non-serializable metrics are a scenario bug; record it as a
        # failed run so the sweep (and the store) keep going.
        json.dumps(metrics)
    except (TypeError, ValueError) as exc:
        status, reason = "failed", f"bad metrics: {exc}"
        metrics = {}
    except Exception as exc:  # xr-lint: disable=swallowed-error
        # Fault-isolation boundary: *any* scenario failure — including
        # SimulationError and InvariantError — must surface as a recorded
        # failed run with its reason, never abort the sweep.
        status = "failed"
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        reason = f"{type(exc).__name__}: {exc} [{tail}]"
        metrics = {}
    finally:
        violations = registry.total - violations_before
        if owns_registry:
            invariants.uninstall()
    record = {
        "run_id": task["run_id"],
        "experiment": task["experiment"],
        "scenario": task["scenario"],
        "params": dict(task["params"]),
        "seed": task["seed"],
        "attempt": task.get("attempt", 0),
        "status": status,
        "reason": reason,
        "metrics": metrics,
        "digest": ctx.schedule_digest(),
        "events": ctx.events_fired(),
        "tie_anomalies": ctx.tie_anomalies(),
        "invariant_violations": violations,
        "monitor": ctx.monitor_rollup(),
        "wall_s": round(_wall() - t0, 4),
    }
    trace = ctx.trace_rollup()
    if trace:
        # Only traced scenarios grow these keys, so untraced sweeps keep
        # byte-identical records (and aggregates) with older ones.
        record["trace"] = trace
        record["traces"] = ctx.trace_records()
    windows = ctx.window_records()
    if windows:
        # Same split treatment as traces: the store peels this off into
        # windows.jsonl; non-serving sweeps never grow the key.
        record["windows"] = windows
    return record


def run_scenario_inline(scenario: str, params: Dict[str, Any],
                        seed: int = 0,
                        max_events: Optional[int] = None) -> Dict[str, Any]:
    """Execute a scenario in-process (benchmarks, debugging) and return
    the full record; raises if the run failed rather than returning a
    failure record — inline callers want the traceback."""
    record = execute_unit({
        "run_id": f"inline/{scenario}/s{seed}",
        "experiment": "inline",
        "scenario": scenario,
        "params": params,
        "seed": seed,
        "attempt": 0,
        "timeout_s": None,
        "max_events": max_events,
    })
    if record["status"] != "ok":
        raise RuntimeError(
            f"inline scenario {scenario!r} failed: {record['reason']}")
    return record
