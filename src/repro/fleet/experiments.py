"""Built-in experiment specs: the paper sweeps as fleet work.

Two scales per sweep:

* **full** — the grids EXPERIMENTS.md tables are regenerated from, three
  seeds per grid point so aggregate tables carry real percentiles.
* **quick** (``--quick``) — single-seed, trimmed grids; what CI's
  ``fleet-smoke`` job runs (with the jobs-invariance byte check) and
  what the committed invariance test uses at its smallest.

``specs_for(...)`` is the one lookup the CLI and tests share.  Spec
construction is deliberately free of environment queries — a spec set is
a pure value, so the expansion (and therefore every run_id) is identical
on any machine.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fleet.spec import ExperimentSpec

__all__ = ["SPEC_SETS", "specs_for", "spec_names"]

KB = 1024
MB = 1024 * 1024

#: generous per-run wall budget (these are single-digit-second sims; a
#: minute means something is wrong) and an event budget far above any
#: healthy run of these scales.
_TIMEOUT_S = 300.0
_MAX_EVENTS = 20_000_000


def _ablation_specs(quick: bool) -> List[ExperimentSpec]:
    seeds = [0] if quick else [0, 1, 2]
    fragment_sizes = ([4 * KB, 64 * KB, 256 * KB] if quick
                      else [4 * KB, 16 * KB, 64 * KB, 256 * KB])
    depths = [4, 64] if quick else [4, 16, 64]
    thresholds = [1024, 4096]
    mr_sizes = [4 * KB, 4 * MB]
    common = dict(seeds=seeds, timeout_s=_TIMEOUT_S,
                  max_events=_MAX_EVENTS)
    return [
        ExperimentSpec(
            name="ablation-fragment-size", scenario="fragment-incast",
            grid={"fragment_bytes": fragment_sizes},
            description="incast goodput vs fragment size (Sec. V-C)",
            **common),
        ExperimentSpec(
            name="ablation-window-depth", scenario="window-throughput",
            grid={"inflight_depth": depths},
            description="one-way throughput vs seq-ack window (Sec. V-B)",
            **common),
        ExperimentSpec(
            name="ablation-small-msg-threshold", scenario="rpc-latency",
            grid={"small_msg_size": thresholds},
            description="2KB RPC latency: eager vs rendezvous (Sec. IV-C)",
            **common),
        ExperimentSpec(
            name="ablation-mr-size", scenario="mr-registration",
            grid={"mr_bytes": mr_sizes},
            description="MR count / alloc latency vs arena size (Sec. IV-E)",
            **common),
    ]


def _fig10_specs(quick: bool) -> List[ExperimentSpec]:
    seeds = [0] if quick else [0, 1, 2]
    grid = {"workload": ["128KB", "128KB-fc", "64KB"]}
    if quick:
        grid["n_sources"] = [4]
    return [ExperimentSpec(
        name="fig10-flow-control", scenario="fig10-incast", grid=grid,
        seeds=seeds, timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
        description="incast with/without flow control (Fig. 10)")]


def _smoke_specs(quick: bool) -> List[ExperimentSpec]:
    del quick           # already minimal by construction
    return [ExperimentSpec(
        name="smoke", scenario="smoke-incast",
        grid={"fragment_bytes": [16 * KB, 64 * KB]}, seeds=[0, 1, 2],
        timeout_s=60.0, max_events=2_000_000,
        description="tiny incast grid for pool/CI smoke and invariance "
                    "checks")]


def _trace_specs(quick: bool) -> List[ExperimentSpec]:
    seeds = [0] if quick else [0, 1, 2]
    sizes = [2048] if quick else [2048, 256 * KB]
    return [ExperimentSpec(
        name="trace-rpc", scenario="traced-rpc",
        grid={"size": sizes}, seeds=seeds,
        timeout_s=60.0, max_events=2_000_000,
        description="span-traced RPC: XR-Trace artifact + critical-path "
                    "attribution (Sec. VI-A / VII-D)")]


def _ctrlplane_specs(quick: bool) -> List[ExperimentSpec]:
    seeds = [0] if quick else [0, 1, 2]
    channels = [64] if quick else [512, 4096, 16384]
    return [
        ExperimentSpec(
            name="ctrl-plane-setup", scenario="ctrl-plane",
            grid={"channels": channels, "warm": [0, 1]}, seeds=seeds,
            timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="cold vs warm control plane: setup-latency CDFs "
                        "across channel churn (Sec. VII-C / Swift)"),
        ExperimentSpec(
            name="ctrl-plane-nopin", scenario="ctrl-plane",
            grid={"channels": [64] if quick else [512, 4096],
                  "warm": [1], "no_pin": [0, 1]},
            seeds=seeds, timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="pinned vs on-demand-paging memory cache "
                        "(NP-RDMA ablation axis)"),
    ]


def _cluster_specs(quick: bool) -> List[ExperimentSpec]:
    """The 1000-node emulation path, fleet-sharded one rack per worker.

    Full scale is 1024 emulated hosts (64 racks, 8 pods): every rack is
    a shard, and the jobs-invariant aggregate stitches the per-rack
    metrics into the cluster view EXPERIMENTS.md reports.  Quick scale
    is 256 hosts with two sampled racks — one per pod — sized for CI's
    fleet-smoke byte-identity check, not for throughput numbers.
    """
    if quick:
        n_hosts = 256
        racks = [0, 9]              # one rack in each of the two pods
        connects = [2]
        incast_grid = {"size": [16 * KB], "messages": [2]}
    else:
        n_hosts = 1024
        racks = list(range(n_hosts // 16))
        connects = [8]
        incast_grid = {"size": [64 * KB], "messages": [4]}
    return [
        ExperimentSpec(
            name="cluster-connect-storm", scenario="cluster-connect-storm",
            grid={"n_hosts": [n_hosts], "rack": racks,
                  "connects_per_host": connects},
            seeds=[0], timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="full-mesh connect storm at cluster scale, one "
                        "rack per shard (Fig. 9 shape)"),
        ExperimentSpec(
            name="cluster-incast", scenario="cluster-incast",
            grid={"n_hosts": [n_hosts], "rack": racks, **incast_grid},
            seeds=[0], timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="cluster-wide incast onto a saturated cross-pod "
                        "sink, one rack per shard (Fig. 10 shape)"),
    ]


def _serving_specs(quick: bool) -> List[ExperimentSpec]:
    """XR-Serve open-loop sweeps (multi-tenant serving, windowed SLOs).

    Full scale runs 160 ms with 20 ms windows (6 stable windows after
    warmup/cooldown); quick is 40 ms / 10 ms — enough windows for the
    jobs-invariance byte check without CI-scale event counts.
    """
    seeds = [0] if quick else [0, 1, 2]
    timing = ({"duration_ms": [40], "window_ms": [10]} if quick
              else {"duration_ms": [160], "window_ms": [20]})
    mix_grid = {"policy": ["round-robin", "sharded"], **timing}
    if not quick:
        # Two arrival processes x two offered loads: the policy axis
        # only separates in the burst regime (mmpp at a rate the
        # fabric can absorb); poisson shows the policies are
        # indistinguishable when no channel queue binds, and the high
        # mmpp rate shows sharding *hurting* at overload.
        mix_grid["arrival"] = ["poisson", "mmpp"]
        mix_grid["rate_per_s"] = [4000, 10000]
    return [
        ExperimentSpec(
            name="serving-mix", scenario="serving-mix", grid=mix_grid,
            seeds=seeds, timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="mice+elephant tenant: stable-window p99 under "
                        "round-robin vs per-class-sharded channels"),
        ExperimentSpec(
            name="serving-interference", scenario="serving-interference",
            grid={"aggressor": [0, 1], **timing},
            seeds=seeds, timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS,
            description="bulk-incast tenant A vs RPC tenant B on a shared "
                        "serving host; XR-Traced per-segment attribution"),
    ]


def _protocol_specs(quick: bool) -> List[ExperimentSpec]:
    """The protocol ablation matrix (ROADMAP item 5): the Taranov axes
    gridded over pingpong, incast, and the serving mice/bulk mix.

    Full scale is the EXPERIMENTS.md "which protocol wins where" table;
    quick is a two-variant slice of each workload, small enough for the
    fleet-smoke jobs-invariance byte check.
    """
    seeds = [0] if quick else [0, 1, 2]
    variants = ["read", "write"]
    common = dict(seeds=seeds, timeout_s=_TIMEOUT_S, max_events=_MAX_EVENTS)
    if quick:
        pingpong_grid = {"rendezvous_variant": variants,
                         "size": [2048, 256 * KB]}
        incast_grid = {"rendezvous_variant": variants,
                       "fragment_bytes": [64 * KB]}
        serving_grid = {"rendezvous_variant": variants,
                        "duration_ms": [40], "window_ms": [10]}
    else:
        pingpong_grid = {"rendezvous_variant": variants,
                         "size": [2048, 64 * KB, MB],
                         "small_msg_size": [1024, 4096]}
        incast_grid = {"rendezvous_variant": variants,
                       "fragment_bytes": [16 * KB, 64 * KB, 256 * KB],
                       "inflight_depth": [8, 32]}
        serving_grid = {"rendezvous_variant": variants,
                        "small_msg_size": [1024, 4096],
                        "duration_ms": [160], "window_ms": [20]}
    return [
        ExperimentSpec(
            name="protocol-pingpong", scenario="protocol-pingpong",
            grid=pingpong_grid,
            description="closed-loop RPC RTT: read vs write rendezvous "
                        "at and above the eager boundary",
            **common),
        ExperimentSpec(
            name="protocol-incast", scenario="protocol-incast",
            grid=incast_grid,
            description="congested incast goodput across rendezvous "
                        "variant x fragment size x window depth",
            **common),
        ExperimentSpec(
            name="protocol-serving", scenario="protocol-serving",
            grid=serving_grid,
            description="serving mice/bulk mix: stable-window p99 per "
                        "rendezvous variant",
            **common),
    ]


SPEC_SETS = {
    "ablation-grid": _ablation_specs,
    "cluster-scale": _cluster_specs,
    "ctrl-plane": _ctrlplane_specs,
    "fig10": _fig10_specs,
    "protocol-ablation": _protocol_specs,
    "serving": _serving_specs,
    "smoke": _smoke_specs,
    "trace": _trace_specs,
}


def spec_names() -> List[str]:
    return sorted(SPEC_SETS)


def specs_for(names: List[str], quick: bool = False) -> List[ExperimentSpec]:
    """Resolve spec-set names (or ``all``) into concrete specs."""
    if not names or names == ["all"]:
        names = spec_names()
    specs: Dict[str, ExperimentSpec] = {}
    for name in names:
        builder = SPEC_SETS.get(name)
        if builder is None:
            raise KeyError(
                f"unknown spec set {name!r}; choose from "
                f"{', '.join(spec_names())} or 'all'")
        for spec in builder(quick):
            specs[spec.name] = spec
    return [specs[name] for name in sorted(specs)]
