"""Declarative experiment specifications and their expansion.

An :class:`ExperimentSpec` names a scenario callable (by registry name or
``module:attr`` path — workers re-resolve it by name, so specs stay
picklable and serializable), a seed list, and a parameter grid.  Expansion
is the cartesian product of grid axes × seeds, in a canonical order:

* axes sorted by name,
* values in their declared order,
* seeds in their declared order.

Every resulting :class:`RunUnit` carries a ``run_id`` derived purely from
the spec — ``<experiment>/<axis=value,...>/s<seed>`` — so unit identity
never depends on worker count, dispatch order, or wall time.  That is the
root of the jobs-invariance guarantee: the aggregate is keyed by run_id,
and run_ids are a pure function of the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ExperimentSpec", "RunUnit", "format_params"]


def _format_value(value: Any) -> str:
    """Compact, unambiguous scalar rendering for run ids."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, str)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise TypeError(
        f"grid values must be scalars (bool/int/float/str), got "
        f"{type(value).__name__}: {value!r}")


def format_params(params: Mapping[str, Any]) -> str:
    """Canonical ``axis=value,...`` slug (axes sorted by name)."""
    return ",".join(f"{key}={_format_value(params[key])}"
                    for key in sorted(params))


@dataclass(frozen=True)
class RunUnit:
    """One independent simulation: a scenario at a grid point and a seed."""

    run_id: str
    experiment: str
    scenario: str
    params: Tuple[Tuple[str, Any], ...]     #: sorted, hashable param items
    seed: int
    timeout_s: float
    max_retries: int
    max_events: Optional[int]

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def as_task(self, attempt: int = 0) -> Dict[str, Any]:
        """The picklable message handed to a worker."""
        return {
            "run_id": self.run_id,
            "experiment": self.experiment,
            "scenario": self.scenario,
            "params": self.params_dict,
            "seed": self.seed,
            "attempt": attempt,
            "timeout_s": self.timeout_s,
            "max_events": self.max_events,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A scenario swept over a parameter grid and a seed list.

    ``grid`` maps axis name → list of scalar values; an empty grid means a
    single run per seed.  ``timeout_s`` is the per-run wall-clock budget
    the pool supervisor enforces (a worker past its deadline is killed);
    ``max_events`` additionally arms the in-worker engine guard so most
    runaways die as recorded :class:`~repro.sim.engine.GuardExceeded`
    failures instead of kills.  ``max_retries`` bounds how often a failed
    or crashed run is re-attempted before quarantine.
    """

    name: str
    scenario: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    timeout_s: float = 120.0
    max_retries: int = 2
    max_events: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"bad experiment name {self.name!r}")
        if not self.seeds:
            raise ValueError(f"{self.name}: empty seed list")
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"{self.name}: axis {axis!r} has no values")
            for value in values:
                _format_value(value)        # raises on non-scalars

    def expand(self) -> List[RunUnit]:
        """All run units, in the canonical (grid × seed) order."""
        axes = sorted(self.grid)
        units: List[RunUnit] = []
        value_lists = [list(self.grid[axis]) for axis in axes]
        for combo in product(*value_lists) if axes else [()]:
            params = dict(zip(axes, combo))
            slug = format_params(params) or "-"
            for seed in self.seeds:
                units.append(RunUnit(
                    run_id=f"{self.name}/{slug}/s{seed}",
                    experiment=self.name,
                    scenario=self.scenario,
                    params=tuple(sorted(params.items())),
                    seed=seed,
                    timeout_s=self.timeout_s,
                    max_retries=self.max_retries,
                    max_events=self.max_events,
                ))
        return units

    def as_dict(self) -> Dict[str, Any]:
        """JSON form persisted into the sweep plan."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": {axis: list(values)
                     for axis, values in sorted(self.grid.items())},
            "seeds": list(self.seeds),
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "max_events": self.max_events,
            "description": self.description,
        }
