"""Deterministic planning: canonical order and stable sharding.

The planner turns specs into the one total order every part of the fleet
agrees on.  Two properties matter:

* **Worker-count independence** — the plan (unit identity *and* order) is
  a pure function of the specs.  ``--jobs 1`` and ``--jobs 8`` dispatch
  the same units in the same order; only completion interleaving differs,
  and the store/aggregator canonicalize that away.
* **Stable sharding** — :func:`shard_of` hashes the run_id itself
  (SHA-256, not Python's salted ``hash()``), so a unit lands on the same
  shard in every process, on every machine, for any shard count it is
  asked about.  ``--shard K/N`` sweeps on different machines therefore
  partition perfectly without coordination.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.fleet.spec import ExperimentSpec, RunUnit

__all__ = ["plan", "shard_of", "shard_filter", "shard_histogram"]


def plan(specs: Sequence[ExperimentSpec]) -> List[RunUnit]:
    """Expand ``specs`` into the canonical run-unit order.

    Units are ordered by (experiment name, expansion order); duplicate
    experiment names or run ids are an error — silent collisions would
    make records overwrite each other in the store.
    """
    seen_specs: Dict[str, str] = {}
    units: List[RunUnit] = []
    for spec in sorted(specs, key=lambda s: s.name):
        if spec.name in seen_specs:
            raise ValueError(f"duplicate experiment name {spec.name!r}")
        seen_specs[spec.name] = spec.scenario
        units.extend(spec.expand())
    seen_ids = set()
    for unit in units:
        if unit.run_id in seen_ids:
            raise ValueError(f"duplicate run id {unit.run_id!r}")
        seen_ids.add(unit.run_id)
    return units


def shard_of(run_id: str, n_shards: int) -> int:
    """The shard ``run_id`` belongs to, stable across processes/machines."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(run_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def shard_filter(units: Iterable[RunUnit], shard: int,
                 n_shards: int) -> List[RunUnit]:
    """The subset of ``units`` owned by ``shard`` (0-based) of ``n_shards``."""
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard {shard} out of range for {n_shards} shards")
    return [unit for unit in units
            if shard_of(unit.run_id, n_shards) == shard]


def shard_histogram(units: Iterable[RunUnit],
                    n_shards: int) -> List[int]:
    """Units per shard — used by ``status`` to show balance."""
    counts = [0] * n_shards
    for unit in units:
        counts[shard_of(unit.run_id, n_shards)] += 1
    return counts
