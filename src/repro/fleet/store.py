"""The sweep's on-disk artifact: JSONL run records + canonical JSON files.

Layout of a sweep directory::

    <out>/
      plan.json        expanded specs + run units (pure function of specs)
      runs.jsonl       one record per *attempt*, appended as they finish
      aggregate.json   deterministic rollup — byte-identical for any --jobs
      manifest.json    environment: jobs, wall seconds, failure summary

``runs.jsonl`` is append-only and flushed per record so a killed sweep
leaves a readable prefix; re-running ``aggregate`` over a partial store
works (missing runs are reported as such).  Attempt records carry
``final: false`` when the supervisor re-queued the run; exactly one
record per run_id has ``final: true`` in a completed sweep — that is the
retry-accounting contract the failure drills assert.

``aggregate.json`` is written via :func:`canonical_json` (sorted keys,
fixed separators, trailing newline) — byte identity across ``--jobs``
counts is asserted by tests and CI, not just promised.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Sequence

from repro.fleet.spec import ExperimentSpec, RunUnit

__all__ = ["ResultStore", "canonical_json"]

PLAN_NAME = "plan.json"
RUNS_NAME = "runs.jsonl"
TRACES_NAME = "traces.jsonl"
WINDOWS_NAME = "windows.jsonl"
AGGREGATE_NAME = "aggregate.json"
MANIFEST_NAME = "manifest.json"


def canonical_json(payload: Any) -> str:
    """Canonical bytes for jobs-invariant artifacts."""
    return json.dumps(payload, sort_keys=True, indent=2,
                      separators=(",", ": "), ensure_ascii=False) + "\n"


class ResultStore:
    """Owns one sweep directory; all reads/writes go through here."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._runs_handle: Optional[IO[str]] = None

    # ---------------------------------------------------------------- paths
    @property
    def plan_path(self) -> Path:
        return self.root / PLAN_NAME

    @property
    def runs_path(self) -> Path:
        return self.root / RUNS_NAME

    @property
    def traces_path(self) -> Path:
        return self.root / TRACES_NAME

    @property
    def windows_path(self) -> Path:
        return self.root / WINDOWS_NAME

    @property
    def aggregate_path(self) -> Path:
        return self.root / AGGREGATE_NAME

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    # -------------------------------------------------------------- writing
    def begin(self, specs: Sequence[ExperimentSpec],
              units: Sequence[RunUnit]) -> None:
        """Create the directory, persist the plan, truncate the record log."""
        self.root.mkdir(parents=True, exist_ok=True)
        plan = {
            "specs": [spec.as_dict() for spec in specs],
            "units": [unit.run_id for unit in units],
        }
        self.plan_path.write_text(canonical_json(plan), encoding="utf-8")
        self._runs_handle = open(self.runs_path, "w", encoding="utf-8")
        # A fresh sweep must not inherit a previous sweep's trace or
        # window lines.
        self.traces_path.unlink(missing_ok=True)
        self.windows_path.unlink(missing_ok=True)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one attempt record, durably (flush + fsync).

        Per-trace lines (the bulky ``traces`` list of traced scenarios)
        are split off into ``traces.jsonl`` — the run record keeps the
        compact ``trace`` rollup; the artifact file is what
        ``repro.tools.xr_trace`` analyzes.  Per-window SLO rows
        (``windows``, XR-Serve scenarios) get the same treatment into
        ``windows.jsonl``, which ``repro.tools.xr_slo`` renders.
        """
        self._split(record, "traces", self.traces_path)
        self._split(record, "windows", self.windows_path)
        if self._runs_handle is None:
            self._runs_handle = open(self.runs_path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, ensure_ascii=False)
        self._runs_handle.write(line + "\n")
        self._runs_handle.flush()
        os.fsync(self._runs_handle.fileno())

    def _split(self, record: Dict[str, Any], key: str, path: Path) -> None:
        """Peel ``record[key]`` (a list of dicts) off into a side artifact,
        each line stamped with its run_id/attempt."""
        entries = record.pop(key, None)
        if not entries:
            return
        with open(path, "a", encoding="utf-8") as handle:
            for entry in entries:
                stamped = dict(entry)
                stamped["run_id"] = record.get("run_id", "")
                stamped["attempt"] = record.get("attempt", 0)
                handle.write(json.dumps(stamped, sort_keys=True,
                                        ensure_ascii=False) + "\n")

    def close(self) -> None:
        if self._runs_handle is not None:
            self._runs_handle.close()
            self._runs_handle = None

    def write_aggregate(self, aggregate: Dict[str, Any]) -> None:
        self.aggregate_path.write_text(canonical_json(aggregate),
                                       encoding="utf-8")

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.manifest_path.write_text(canonical_json(manifest),
                                      encoding="utf-8")

    # -------------------------------------------------------------- reading
    def load_plan(self) -> Dict[str, Any]:
        with open(self.plan_path, encoding="utf-8") as handle:
            plan = json.load(handle)
        if not isinstance(plan, dict) or "units" not in plan:
            raise ValueError(f"{self.plan_path}: not a sweep plan")
        return plan

    def load_records(self) -> List[Dict[str, Any]]:
        """Every attempt record, in append order; tolerates a torn tail
        line (a killed sweep's last partial write)."""
        if not self.runs_path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with open(self.runs_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break       # torn tail — everything before it is good
        return records

    def terminal_records(self) -> Dict[str, Dict[str, Any]]:
        """run_id -> its final record (the one with ``final: true``)."""
        final: Dict[str, Dict[str, Any]] = {}
        for record in self.load_records():
            if record.get("final"):
                final[record["run_id"]] = record
        return final

    def load_traces(self) -> List[Dict[str, Any]]:
        """Every exported trace line, in append order (torn-tail tolerant)."""
        return self._load_jsonl(self.traces_path)

    def load_windows(self) -> List[Dict[str, Any]]:
        """Every per-window SLO row, in append order (torn-tail tolerant)."""
        return self._load_jsonl(self.windows_path)

    @staticmethod
    def _load_jsonl(path: Path) -> List[Dict[str, Any]]:
        if not path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    break
        return entries

    def load_aggregate(self) -> Dict[str, Any]:
        with open(self.aggregate_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{self.aggregate_path}: not an aggregate")
        return payload
