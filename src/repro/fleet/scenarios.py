"""The fleet's scenario library: the paper sweeps as parameterized callables.

Each scenario is a function ``(ctx: RunContext) -> dict`` taking its knobs
from ``ctx.params`` and returning flat JSON-able metrics.  These are the
*single* implementations of the ablation grids and the Fig. 10 incast —
``benchmarks/test_ablations.py`` / ``test_fig10_flow_control.py`` call the
same bodies inline (via :func:`repro.fleet.runner.run_scenario_inline`),
and the fleet specs in :mod:`repro.fleet.experiments` sweep them across
seeds and grid points in parallel.

Registration is by name so worker processes resolve scenarios from the
task string alone::

    @scenario("fragment-incast")
    def fragment_incast(ctx): ...
"""

from __future__ import annotations

from collections import deque
from statistics import mean
from typing import Any, Callable, Dict, List, Optional

from repro.cluster import fabric_footprint
from repro.fleet.runner import RunContext, ScenarioFn
from repro.net.aggregate import AggregateTraffic
from repro.sim import MICROS, MILLIS, SECONDS
from repro.sim.params import congested_params
from repro.tools.xr_perf import XrPerf
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache

__all__ = ["SCENARIOS", "scenario", "fragment_incast", "rpc_latency",
           "window_throughput", "mr_registration", "fig10_incast",
           "smoke_incast", "traced_rpc", "ctrl_plane", "cluster_dims",
           "cluster_connect_storm", "cluster_incast"]

SCENARIOS: Dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario under ``name`` (what specs/tasks reference)."""
    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario name {name!r}")
        SCENARIOS[name] = fn
        return fn
    return register


# ------------------------------------------------------------- ablations
@scenario("fragment-incast")
def fragment_incast(ctx: RunContext) -> Dict[str, Any]:
    """Incast goodput at one fragment size (ablation, Sec. V-C).

    params: fragment_bytes; optional n_sources, streams_per_source,
    size, messages.
    """
    params = ctx.params
    n_sources = int(params.get("n_sources", 4))
    streams = int(params.get("streams_per_source", 4))
    sources = [src for src in range(n_sources) for _ in range(streams)]
    cluster = ctx.build_cluster(n_sources + 1, params=congested_params())
    ctx.monitor(cluster)
    perf = XrPerf(cluster)
    config = XrdmaConfig(fragment_bytes=int(params["fragment_bytes"]))
    result = perf.run_incast(sources, n_sources,
                             size=int(params.get("size", 256 * 1024)),
                             messages_per_source=int(
                                 params.get("messages", 8)),
                             config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }


@scenario("rpc-latency")
def rpc_latency(ctx: RunContext) -> Dict[str, Any]:
    """Closed-loop RPC latency at one small-message threshold
    (ablation, Sec. IV-C).  params: small_msg_size; optional size,
    iterations."""
    params = ctx.params
    size = int(params.get("size", 2048))
    iterations = int(params.get("iterations", 16))
    config = XrdmaConfig(small_msg_size=int(params["small_msg_size"]))
    cluster = ctx.build_cluster(2)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(8650)
    latencies: List[int] = []

    def run():
        channel = yield from client.connect(1, 8650)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for index in range(iterations):
            t0 = cluster.sim.now
            request = client.send_request(channel, size)
            yield request.response
            if index >= 3:                      # drop warmup iterations
                latencies.append(cluster.sim.now - t0)

    proc = cluster.sim.spawn(run())
    cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    threshold = int(params["small_msg_size"])
    return {
        "rtt_us": mean(latencies) / 1000,
        "recv_ring_bytes_per_channel": (threshold + 64) * 36,
        "eager": size <= threshold,
    }


@scenario("window-throughput")
def window_throughput(ctx: RunContext) -> Dict[str, Any]:
    """One-way throughput at one seq-ack window depth (ablation,
    Sec. V-B).  params: inflight_depth; optional messages, size."""
    params = ctx.params
    n_messages = int(params.get("messages", 400))
    size = int(params.get("size", 2048))
    cluster = ctx.build_cluster(2)
    config = XrdmaConfig(inflight_depth=int(params["inflight_depth"]))
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    server.listen(8660)
    sim = cluster.sim
    received: List[int] = []

    def sink():
        while True:
            yield server.incoming.get()
            received.append(sim.now)

    sim.spawn(sink())

    def producer():
        channel = yield from client.connect(1, 8660)
        for _ in range(n_messages):
            client.send_msg(channel, size)
        # Bounded drain (the close-drain doctrine): a dropped message must
        # end the scenario with a short count, not wedge it forever.
        deadline = sim.now + 60 * SECONDS
        while len(received) < n_messages:
            if sim.now >= deadline:
                break
            yield sim.timeout(50 * MICROS)

    proc = sim.spawn(producer())
    t0 = sim.now
    sim.run_until_event(proc, limit=60 * SECONDS)
    return {
        "throughput_gbps": n_messages * size * 8 / (sim.now - t0),
        "messages": n_messages,
    }


@scenario("mr-registration")
def mr_registration(ctx: RunContext) -> Dict[str, Any]:
    """MR count and alloc latency at one arena size (ablation,
    Sec. IV-E).  params: mr_bytes; optional allocs, alloc_bytes."""
    params = ctx.params
    n_allocs = int(params.get("allocs", 256))
    alloc_bytes = int(params.get("alloc_bytes", 4096))
    cluster = ctx.build_cluster(1)
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=int(params["mr_bytes"]))

    def run():
        buffers = []
        for _ in range(n_allocs):
            buffer = yield from cache.alloc(alloc_bytes)
            buffers.append(buffer)
        return buffers

    t0 = cluster.sim.now
    proc = cluster.sim.spawn(run())
    buffers = cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    alloc_us = (cluster.sim.now - t0) / 1000
    for buffer in buffers:
        cache.free(buffer)
    return {"mr_count": cache.mr_count, "alloc_us": alloc_us}


@scenario("traced-rpc")
def traced_rpc(ctx: RunContext) -> Dict[str, Any]:
    """Span-traced closed-loop RPC: the XR-Trace artifact run (Sec. VI-A).

    Both ends run in req-rsp mode with a tracer attached; every sampled
    RPC decomposes into the full span chain, and the run record carries
    the trace rollup plus per-trace lines (``traces.jsonl``).

    params: optional size, iterations, sample_mask, resync_after_ns.
    """
    params = ctx.params
    size = int(params.get("size", 2048))
    iterations = int(params.get("iterations", 24))
    mask = int(params.get("sample_mask", 1))
    resync = params.get("resync_after_ns")
    resync = int(resync) if resync is not None else None
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=mask)
    cluster = ctx.build_cluster(2)
    ctx.monitor(cluster)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    client_tracer = ctx.attach_tracer(cluster, client,
                                      resync_after_ns=resync)
    ctx.attach_tracer(cluster, server, resync_after_ns=resync)
    accepted = server.listen(8670)
    sim = cluster.sim

    def run():
        channel = yield from client.connect(1, 8670)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for _ in range(iterations):
            request = client.send_request(channel, size)
            yield request.response
        # Settle: let trailing piggybacked/standalone acks close the
        # last spans on both sides before we read the histograms.
        yield sim.timeout(500 * MICROS)

    proc = sim.spawn(run())
    sim.run_until_event(proc, limit=60 * SECONDS)
    totals: Dict[str, int] = {}
    for record in client_tracer.records.values():
        if record.complete:
            for stage, duration in record.spans:
                totals[stage] = totals.get(stage, 0) + duration
    dominant = (max(sorted(totals), key=lambda stage: totals[stage])
                if totals else "")
    rollup = ctx.trace_rollup()
    p99 = (client_tracer.latency.percentile(99)
           if client_tracer.latency.count else 0.0)
    return {
        "rpcs": iterations,
        "traces_completed": rollup["completed"],
        "traces_incomplete": rollup["incomplete"],
        "negative_network_clamped": rollup["negative_network_clamped"],
        "client_p99_total_us": round(p99 / 1000, 3),
        "dominant_segment": dominant,
    }


@scenario("ctrl-plane")
def ctrl_plane(ctx: RunContext) -> Dict[str, Any]:
    """Control-plane churn: setup-latency CDFs, cold vs warm caches
    (Sec. VII-C grown into the Swift elastic-control-plane story).

    A client opens ``channels`` connections against one server, keeping
    at most ``concurrency`` open (older ones close as new ones open —
    the churn that feeds the QP cache).  Every establishment is traced
    end to end with the ``cm_resolve``/``qp_setup``/``handshake``/
    ``qp_to_rts``/``mr_reg``/``recv_prime`` span chain; the metrics are
    the setup-latency CDF plus exact cache-counter accounting.

    params: channels; optional warm (1 = prewarmed QP/MR caches,
    0 = caches disabled, every connect pays full cost), concurrency,
    no_pin (NP-RDMA-style on-demand paging in the memory cache).
    """
    params = ctx.params
    n_channels = int(params.get("channels", 128))
    warm = bool(int(params.get("warm", 1)))
    concurrency = int(params.get("concurrency", 32))
    no_pin = bool(int(params.get("no_pin", 0)))
    pool = max(64, concurrency) if warm else 0
    client_config = XrdmaConfig(
        trace_sample_mask=1, qp_cache_capacity=pool,
        mr_reg_cache=warm, memcache_no_pin=no_pin)
    server_config = XrdmaConfig(
        qp_cache_capacity=pool, mr_reg_cache=warm,
        memcache_no_pin=no_pin)
    cluster = ctx.build_cluster(2)
    client = cluster.xrdma_context(0, config=client_config)
    server = cluster.xrdma_context(1, config=server_config)
    tracer = ctx.attach_tracer(cluster, client)
    server.listen(8690)
    sim = cluster.sim

    def run():
        if warm:
            prime = min(n_channels, concurrency)
            yield from client.qpcache.prewarm(prime)
            yield from server.qpcache.prewarm(prime)
            # Enough warm arenas for `concurrency` primed channels, so
            # steady-state establishment never registers memory.
            recv_bytes = client.config.small_msg_size + 64
            per_channel = (client.config.inflight_depth
                           + client.config.prepost_slack) * recv_bytes
            arenas = (concurrency * per_channel
                      // client.config.memcache_mr_bytes + 2)
            yield from client.memcache.prewarm(arenas)
            yield from server.memcache.prewarm(arenas)
        open_channels: deque = deque()
        for _ in range(n_channels):
            channel = yield from client.connect(1, 8690)
            open_channels.append(channel)
            if len(open_channels) > concurrency:
                yield from client.close_channel(open_channels.popleft())
        while open_channels:
            yield from client.close_channel(open_channels.popleft())
        # Let the server process the trailing CLOSEs and recycle its QPs.
        yield sim.timeout(10 * MILLIS)

    proc = sim.spawn(run())
    sim.run_until_event(proc, limit=20 * MILLIS * n_channels + 10 * SECONDS)

    hist = tracer.setup_latency
    setup_records = [record for record in tracer.records.values()
                     if record.view == "setup"]
    residual_violations = sum(1 for record in setup_records
                              if record.complete and record.residual_ns)

    def span_p50(stage: str) -> float:
        histogram = tracer.segment_latency.get(stage)
        if histogram is None or not histogram.count:
            return 0.0
        return round(histogram.percentile(50) / 1000, 2)

    metrics: Dict[str, Any] = {
        "channels": n_channels,
        "warm": int(warm),
        "no_pin": int(no_pin),
        "setup_traces": hist.count,
        "setup_residual_violations": residual_violations,
        "qp_setup_p50_us": span_p50("qp_setup"),
        "mr_reg_p50_us": span_p50("mr_reg"),
        "qp_cache_hits": client.qpcache.hits,
        "qp_cache_misses": client.qpcache.misses,
        "qp_cache_recycled": client.qpcache.recycled,
        "qp_cache_destroyed": client.qpcache.destroyed,
        "mr_cache_hits": (client.mr_reg_cache.hits
                          if client.mr_reg_cache is not None else 0),
        "qps_created": cluster.host(0).verbs.qps_created,
        "mrs_registered": cluster.host(0).verbs.mrs_registered,
        "pages_faulted": client.memcache.pages_faulted,
    }
    for pct in (10, 25, 50, 75, 90, 99):
        metrics[f"setup_p{pct}_us"] = (
            round(hist.percentile(pct) / 1000, 1) if hist.count else 0.0)
    return metrics


# ---------------------------------------------------------------- figures
#: Fig. 10 workload presets: label -> (flow_control, size, messages)
FIG10_WORKLOADS: Dict[str, Any] = {
    "128KB": (False, 128 * 1024, 15),
    "128KB-fc": (True, 128 * 1024, 15),
    "64KB": (False, 64 * 1024, 30),
}


@scenario("fig10-incast")
def fig10_incast(ctx: RunContext) -> Dict[str, Any]:
    """Fig. 10: incast with/without X-RDMA flow control.

    params: workload (one of FIG10_WORKLOADS); optional n_sources,
    streams_per_source.
    """
    params = ctx.params
    label = str(params["workload"])
    if label not in FIG10_WORKLOADS:
        raise ValueError(f"unknown fig10 workload {label!r}; "
                         f"choose from {', '.join(FIG10_WORKLOADS)}")
    flow_control, size, messages = FIG10_WORKLOADS[label]
    n_sources = int(params.get("n_sources", 8))
    streams = int(params.get("streams_per_source", 4))
    sources = [src for src in range(n_sources) for _ in range(streams)]
    cluster = ctx.build_cluster(n_sources + 1, params=congested_params())
    ctx.monitor(cluster)
    perf = XrPerf(cluster)
    config = XrdmaConfig(flow_control=flow_control)
    result = perf.run_incast(sources, n_sources, size=size,
                             messages_per_source=messages, config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "pause_frames": result.crucial.get("pause_frames", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }


# ------------------------------------------------------------------ smoke
@scenario("smoke-incast")
def smoke_incast(ctx: RunContext) -> Dict[str, Any]:
    """A deliberately tiny incast for pool/CLI tests and ``--quick``
    invariance checks: seconds of wall time, not minutes.
    params: optional fragment_bytes, n_sources, size, messages."""
    params = ctx.params
    n_sources = int(params.get("n_sources", 3))
    sources = list(range(n_sources))
    cluster = ctx.build_cluster(n_sources + 1)
    perf = XrPerf(cluster)
    config: Optional[XrdmaConfig] = None
    if "fragment_bytes" in params:
        config = XrdmaConfig(fragment_bytes=int(params["fragment_bytes"]))
    result = perf.run_incast(sources, n_sources,
                             size=int(params.get("size", 16 * 1024)),
                             messages_per_source=int(
                                 params.get("messages", 6)),
                             mean_gap_ns=40_000, config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "bytes_moved": result.bytes_moved,
    }


# ----------------------------------------------------------- cluster scale
#: rack width the cluster-scale scenarios shard by (one ToR per rack)
RACK_HOSTS = 16


def cluster_dims(n_hosts: int) -> Dict[str, int]:
    """Canonical Clos dimensions for an emulated cluster of ``n_hosts``.

    16 hosts per ToR (one rack), up to 8 racks per pod, two leaves per
    pod and two spines: 1024 hosts become an 8-pod fabric whose
    cross-pod paths all transit the spine tier.  Pure arithmetic — every
    fleet shard of the same cluster derives the identical fabric.
    """
    pod_hosts = 8 * RACK_HOSTS
    n_pods = max(1, -(-n_hosts // pod_hosts))
    tors_per_pod = -(-n_hosts // (n_pods * RACK_HOSTS))
    return {"n_pods": n_pods, "tors_per_pod": tors_per_pod,
            "hosts_per_tor": RACK_HOSTS, "leaves_per_pod": 2,
            "n_spines": 2}


def _rack_shard(n_hosts: int, rack: int) -> List[int]:
    """The host ids of one rack shard (one ToR's worth)."""
    n_racks = n_hosts // RACK_HOSTS
    if n_racks < 2:
        raise ValueError(
            f"cluster-scale scenarios need >= {2 * RACK_HOSTS} hosts, "
            f"got {n_hosts}")
    if not 0 <= rack < n_racks:
        raise ValueError(f"rack {rack} outside [0, {n_racks})")
    base = rack * RACK_HOSTS
    return list(range(base, base + RACK_HOSTS))


def _remote_peer(n_hosts: int, dims: Dict[str, int], rack_base: int) -> int:
    """A host id one pod away from the rack (falls back to the next rack
    on single-pod fabrics), so packet-level traffic transits the spines."""
    pod_hosts = dims["tors_per_pod"] * dims["hosts_per_tor"]
    peer = (rack_base + pod_hosts) % n_hosts
    if peer // RACK_HOSTS == rack_base // RACK_HOSTS:
        peer = (rack_base + RACK_HOSTS) % n_hosts
    return peer


def _spine_tx_bytes(cluster) -> int:
    return sum(port.tx_bytes
               for spine in cluster.topology.spines
               for port in spine.ports)


@scenario("cluster-connect-storm")
def cluster_connect_storm(ctx: RunContext) -> Dict[str, Any]:
    """Full-mesh connect storm at cluster scale, one rack per fleet shard
    (the Fig. 9 shape: every node establishing channels at once).

    The fabric is sized for the whole emulated cluster but only this
    shard's rack gets RNIC stacks, plus one cross-pod gateway host that
    terminates the rack's connects — so the storm's packet-level traffic
    transits ToR, leaf and spine tiers.  The other racks' concurrent
    storms ride flow-aggregate channels converging on the gateway's rack.

    params: n_hosts, rack; optional connects_per_host.
    """
    params = ctx.params
    n_hosts = int(params.get("n_hosts", 1024))
    rack = int(params.get("rack", 0))
    connects = int(params.get("connects_per_host", 8))
    dims = cluster_dims(n_hosts)
    rack_hosts = _rack_shard(n_hosts, rack)
    n_racks = n_hosts // RACK_HOSTS
    gateway = _remote_peer(n_hosts, dims, rack_hosts[0])
    cluster = ctx.build_cluster(n_hosts,
                                attach_hosts=[*rack_hosts, gateway],
                                **dims)
    sim = cluster.sim
    agg = AggregateTraffic(cluster)
    share = cluster.params.link_bandwidth_bps / n_racks
    for other in range(n_racks):
        src = other * RACK_HOSTS
        if other == rack or src == gateway:
            continue
        agg.add_flow(src, gateway, rate_bps=share)
    agg.flush()

    server = cluster.xrdma_context(gateway)
    accepted = server.listen(8700)

    def acceptor():
        while True:
            channel = yield accepted.get()
            channel.on_request = \
                lambda msg: server.send_response(msg, 64)

    sim.spawn(acceptor())

    def storm(host_id: int):
        client = cluster.xrdma_context(host_id)
        for _ in range(connects):
            channel = yield from client.connect(gateway, 8700)
            request = client.send_request(channel, 256)
            yield request.response
            yield from client.close_channel(channel)

    procs = [sim.spawn(storm(host)) for host in rack_hosts]

    def wait_all():
        for proc in procs:
            yield proc

    waiter = sim.spawn(wait_all())
    sim.run_until_event(waiter, limit=60 * SECONDS)
    background_bytes = agg.settle()
    metrics: Dict[str, Any] = {
        "rack": rack,
        "connects": len(rack_hosts) * connects,
        "storm_ms": round(sim.now / 1e6, 3),
        "spine_tx_bytes": _spine_tx_bytes(cluster),
        "background_bytes": round(background_bytes, 1),
        "background_flows": agg.active_flows(),
        "pause_frames": cluster.stats.pause_frames,
    }
    metrics.update(fabric_footprint(cluster))
    return metrics


@scenario("cluster-incast")
def cluster_incast(ctx: RunContext) -> Dict[str, Any]:
    """Cluster-wide incast, one rack per fleet shard (the Fig. 10 shape
    scaled out: ~all hosts converging on one sink).

    This shard's rack sends packet-level incast traffic to a cross-pod
    sink; every other host in the emulated cluster converges on the same
    sink as a flow-aggregate channel at its fair share of the sink link.
    The foreground flows therefore serialize into the ~5% residual floor
    of a saturated downlink — the contention regime of the figure —
    while event cost stays proportional to one rack.

    params: n_hosts, rack; optional size, messages.
    """
    params = ctx.params
    n_hosts = int(params.get("n_hosts", 1024))
    rack = int(params.get("rack", 0))
    size = int(params.get("size", 64 * 1024))
    messages = int(params.get("messages", 4))
    dims = cluster_dims(n_hosts)
    rack_hosts = _rack_shard(n_hosts, rack)
    sink = _remote_peer(n_hosts, dims, rack_hosts[0])
    cluster = ctx.build_cluster(n_hosts, params=congested_params(),
                                attach_hosts=[*rack_hosts, sink],
                                **dims)
    attached = set(rack_hosts) | {sink}
    agg = AggregateTraffic(cluster)
    share = cluster.params.link_bandwidth_bps / n_hosts
    for host in range(n_hosts):
        if host in attached:
            continue
        agg.add_flow(host, sink, rate_bps=share)
    agg.flush()

    perf = XrPerf(cluster)
    config = XrdmaConfig(flow_control=True)
    result = perf.run_incast(rack_hosts, sink, size=size,
                             messages_per_source=messages, config=config)
    background_bytes = agg.settle()
    metrics: Dict[str, Any] = {
        "rack": rack,
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "foreground_bytes": result.bytes_moved,
        "background_bytes": round(background_bytes, 1),
        "background_flows": agg.active_flows(),
        "spine_tx_bytes": _spine_tx_bytes(cluster),
        "pause_frames": result.crucial.get("pause_frames", 0),
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }
    metrics.update(fabric_footprint(cluster))
    return metrics
