"""The fleet's scenario library: the paper sweeps as parameterized callables.

Each scenario is a function ``(ctx: RunContext) -> dict`` taking its knobs
from ``ctx.params`` and returning flat JSON-able metrics.  These are the
*single* implementations of the ablation grids and the Fig. 10 incast —
``benchmarks/test_ablations.py`` / ``test_fig10_flow_control.py`` call the
same bodies inline (via :func:`repro.fleet.runner.run_scenario_inline`),
and the fleet specs in :mod:`repro.fleet.experiments` sweep them across
seeds and grid points in parallel.

Registration is by name so worker processes resolve scenarios from the
task string alone::

    @scenario("fragment-incast")
    def fragment_incast(ctx): ...
"""

from __future__ import annotations

from collections import deque
from statistics import mean
from typing import Any, Callable, Dict, List, Optional

from repro.fleet.runner import RunContext, ScenarioFn
from repro.sim import MICROS, MILLIS, SECONDS
from repro.sim.params import congested_params
from repro.tools.xr_perf import XrPerf
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache

__all__ = ["SCENARIOS", "scenario", "fragment_incast", "rpc_latency",
           "window_throughput", "mr_registration", "fig10_incast",
           "smoke_incast", "traced_rpc", "ctrl_plane"]

SCENARIOS: Dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario under ``name`` (what specs/tasks reference)."""
    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario name {name!r}")
        SCENARIOS[name] = fn
        return fn
    return register


# ------------------------------------------------------------- ablations
@scenario("fragment-incast")
def fragment_incast(ctx: RunContext) -> Dict[str, Any]:
    """Incast goodput at one fragment size (ablation, Sec. V-C).

    params: fragment_bytes; optional n_sources, streams_per_source,
    size, messages.
    """
    params = ctx.params
    n_sources = int(params.get("n_sources", 4))
    streams = int(params.get("streams_per_source", 4))
    sources = [src for src in range(n_sources) for _ in range(streams)]
    cluster = ctx.build_cluster(n_sources + 1, params=congested_params())
    ctx.monitor(cluster)
    perf = XrPerf(cluster)
    config = XrdmaConfig(fragment_bytes=int(params["fragment_bytes"]))
    result = perf.run_incast(sources, n_sources,
                             size=int(params.get("size", 256 * 1024)),
                             messages_per_source=int(
                                 params.get("messages", 8)),
                             config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }


@scenario("rpc-latency")
def rpc_latency(ctx: RunContext) -> Dict[str, Any]:
    """Closed-loop RPC latency at one small-message threshold
    (ablation, Sec. IV-C).  params: small_msg_size; optional size,
    iterations."""
    params = ctx.params
    size = int(params.get("size", 2048))
    iterations = int(params.get("iterations", 16))
    config = XrdmaConfig(small_msg_size=int(params["small_msg_size"]))
    cluster = ctx.build_cluster(2)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(8650)
    latencies: List[int] = []

    def run():
        channel = yield from client.connect(1, 8650)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for index in range(iterations):
            t0 = cluster.sim.now
            request = client.send_request(channel, size)
            yield request.response
            if index >= 3:                      # drop warmup iterations
                latencies.append(cluster.sim.now - t0)

    proc = cluster.sim.spawn(run())
    cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    threshold = int(params["small_msg_size"])
    return {
        "rtt_us": mean(latencies) / 1000,
        "recv_ring_bytes_per_channel": (threshold + 64) * 36,
        "eager": size <= threshold,
    }


@scenario("window-throughput")
def window_throughput(ctx: RunContext) -> Dict[str, Any]:
    """One-way throughput at one seq-ack window depth (ablation,
    Sec. V-B).  params: inflight_depth; optional messages, size."""
    params = ctx.params
    n_messages = int(params.get("messages", 400))
    size = int(params.get("size", 2048))
    cluster = ctx.build_cluster(2)
    config = XrdmaConfig(inflight_depth=int(params["inflight_depth"]))
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    server.listen(8660)
    sim = cluster.sim
    received: List[int] = []

    def sink():
        while True:
            yield server.incoming.get()
            received.append(sim.now)

    sim.spawn(sink())

    def producer():
        channel = yield from client.connect(1, 8660)
        for _ in range(n_messages):
            client.send_msg(channel, size)
        # Bounded drain (the close-drain doctrine): a dropped message must
        # end the scenario with a short count, not wedge it forever.
        deadline = sim.now + 60 * SECONDS
        while len(received) < n_messages:
            if sim.now >= deadline:
                break
            yield sim.timeout(50 * MICROS)

    proc = sim.spawn(producer())
    t0 = sim.now
    sim.run_until_event(proc, limit=60 * SECONDS)
    return {
        "throughput_gbps": n_messages * size * 8 / (sim.now - t0),
        "messages": n_messages,
    }


@scenario("mr-registration")
def mr_registration(ctx: RunContext) -> Dict[str, Any]:
    """MR count and alloc latency at one arena size (ablation,
    Sec. IV-E).  params: mr_bytes; optional allocs, alloc_bytes."""
    params = ctx.params
    n_allocs = int(params.get("allocs", 256))
    alloc_bytes = int(params.get("alloc_bytes", 4096))
    cluster = ctx.build_cluster(1)
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=int(params["mr_bytes"]))

    def run():
        buffers = []
        for _ in range(n_allocs):
            buffer = yield from cache.alloc(alloc_bytes)
            buffers.append(buffer)
        return buffers

    t0 = cluster.sim.now
    proc = cluster.sim.spawn(run())
    buffers = cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    alloc_us = (cluster.sim.now - t0) / 1000
    for buffer in buffers:
        cache.free(buffer)
    return {"mr_count": cache.mr_count, "alloc_us": alloc_us}


@scenario("traced-rpc")
def traced_rpc(ctx: RunContext) -> Dict[str, Any]:
    """Span-traced closed-loop RPC: the XR-Trace artifact run (Sec. VI-A).

    Both ends run in req-rsp mode with a tracer attached; every sampled
    RPC decomposes into the full span chain, and the run record carries
    the trace rollup plus per-trace lines (``traces.jsonl``).

    params: optional size, iterations, sample_mask, resync_after_ns.
    """
    params = ctx.params
    size = int(params.get("size", 2048))
    iterations = int(params.get("iterations", 24))
    mask = int(params.get("sample_mask", 1))
    resync = params.get("resync_after_ns")
    resync = int(resync) if resync is not None else None
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=mask)
    cluster = ctx.build_cluster(2)
    ctx.monitor(cluster)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    client_tracer = ctx.attach_tracer(cluster, client,
                                      resync_after_ns=resync)
    ctx.attach_tracer(cluster, server, resync_after_ns=resync)
    accepted = server.listen(8670)
    sim = cluster.sim

    def run():
        channel = yield from client.connect(1, 8670)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        for _ in range(iterations):
            request = client.send_request(channel, size)
            yield request.response
        # Settle: let trailing piggybacked/standalone acks close the
        # last spans on both sides before we read the histograms.
        yield sim.timeout(500 * MICROS)

    proc = sim.spawn(run())
    sim.run_until_event(proc, limit=60 * SECONDS)
    totals: Dict[str, int] = {}
    for record in client_tracer.records.values():
        if record.complete:
            for stage, duration in record.spans:
                totals[stage] = totals.get(stage, 0) + duration
    dominant = (max(sorted(totals), key=lambda stage: totals[stage])
                if totals else "")
    rollup = ctx.trace_rollup()
    p99 = (client_tracer.latency.percentile(99)
           if client_tracer.latency.count else 0.0)
    return {
        "rpcs": iterations,
        "traces_completed": rollup["completed"],
        "traces_incomplete": rollup["incomplete"],
        "negative_network_clamped": rollup["negative_network_clamped"],
        "client_p99_total_us": round(p99 / 1000, 3),
        "dominant_segment": dominant,
    }


@scenario("ctrl-plane")
def ctrl_plane(ctx: RunContext) -> Dict[str, Any]:
    """Control-plane churn: setup-latency CDFs, cold vs warm caches
    (Sec. VII-C grown into the Swift elastic-control-plane story).

    A client opens ``channels`` connections against one server, keeping
    at most ``concurrency`` open (older ones close as new ones open —
    the churn that feeds the QP cache).  Every establishment is traced
    end to end with the ``cm_resolve``/``qp_setup``/``handshake``/
    ``qp_to_rts``/``mr_reg``/``recv_prime`` span chain; the metrics are
    the setup-latency CDF plus exact cache-counter accounting.

    params: channels; optional warm (1 = prewarmed QP/MR caches,
    0 = caches disabled, every connect pays full cost), concurrency,
    no_pin (NP-RDMA-style on-demand paging in the memory cache).
    """
    params = ctx.params
    n_channels = int(params.get("channels", 128))
    warm = bool(int(params.get("warm", 1)))
    concurrency = int(params.get("concurrency", 32))
    no_pin = bool(int(params.get("no_pin", 0)))
    pool = max(64, concurrency) if warm else 0
    client_config = XrdmaConfig(
        trace_sample_mask=1, qp_cache_capacity=pool,
        mr_reg_cache=warm, memcache_no_pin=no_pin)
    server_config = XrdmaConfig(
        qp_cache_capacity=pool, mr_reg_cache=warm,
        memcache_no_pin=no_pin)
    cluster = ctx.build_cluster(2)
    client = cluster.xrdma_context(0, config=client_config)
    server = cluster.xrdma_context(1, config=server_config)
    tracer = ctx.attach_tracer(cluster, client)
    server.listen(8690)
    sim = cluster.sim

    def run():
        if warm:
            prime = min(n_channels, concurrency)
            yield from client.qpcache.prewarm(prime)
            yield from server.qpcache.prewarm(prime)
            # Enough warm arenas for `concurrency` primed channels, so
            # steady-state establishment never registers memory.
            recv_bytes = client.config.small_msg_size + 64
            per_channel = (client.config.inflight_depth
                           + client.config.prepost_slack) * recv_bytes
            arenas = (concurrency * per_channel
                      // client.config.memcache_mr_bytes + 2)
            yield from client.memcache.prewarm(arenas)
            yield from server.memcache.prewarm(arenas)
        open_channels: deque = deque()
        for _ in range(n_channels):
            channel = yield from client.connect(1, 8690)
            open_channels.append(channel)
            if len(open_channels) > concurrency:
                yield from client.close_channel(open_channels.popleft())
        while open_channels:
            yield from client.close_channel(open_channels.popleft())
        # Let the server process the trailing CLOSEs and recycle its QPs.
        yield sim.timeout(10 * MILLIS)

    proc = sim.spawn(run())
    sim.run_until_event(proc, limit=20 * MILLIS * n_channels + 10 * SECONDS)

    hist = tracer.setup_latency
    setup_records = [record for record in tracer.records.values()
                     if record.view == "setup"]
    residual_violations = sum(1 for record in setup_records
                              if record.complete and record.residual_ns)

    def span_p50(stage: str) -> float:
        histogram = tracer.segment_latency.get(stage)
        if histogram is None or not histogram.count:
            return 0.0
        return round(histogram.percentile(50) / 1000, 2)

    metrics: Dict[str, Any] = {
        "channels": n_channels,
        "warm": int(warm),
        "no_pin": int(no_pin),
        "setup_traces": hist.count,
        "setup_residual_violations": residual_violations,
        "qp_setup_p50_us": span_p50("qp_setup"),
        "mr_reg_p50_us": span_p50("mr_reg"),
        "qp_cache_hits": client.qpcache.hits,
        "qp_cache_misses": client.qpcache.misses,
        "qp_cache_recycled": client.qpcache.recycled,
        "qp_cache_destroyed": client.qpcache.destroyed,
        "mr_cache_hits": (client.mr_reg_cache.hits
                          if client.mr_reg_cache is not None else 0),
        "qps_created": cluster.host(0).verbs.qps_created,
        "mrs_registered": cluster.host(0).verbs.mrs_registered,
        "pages_faulted": client.memcache.pages_faulted,
    }
    for pct in (10, 25, 50, 75, 90, 99):
        metrics[f"setup_p{pct}_us"] = (
            round(hist.percentile(pct) / 1000, 1) if hist.count else 0.0)
    return metrics


# ---------------------------------------------------------------- figures
#: Fig. 10 workload presets: label -> (flow_control, size, messages)
FIG10_WORKLOADS: Dict[str, Any] = {
    "128KB": (False, 128 * 1024, 15),
    "128KB-fc": (True, 128 * 1024, 15),
    "64KB": (False, 64 * 1024, 30),
}


@scenario("fig10-incast")
def fig10_incast(ctx: RunContext) -> Dict[str, Any]:
    """Fig. 10: incast with/without X-RDMA flow control.

    params: workload (one of FIG10_WORKLOADS); optional n_sources,
    streams_per_source.
    """
    params = ctx.params
    label = str(params["workload"])
    if label not in FIG10_WORKLOADS:
        raise ValueError(f"unknown fig10 workload {label!r}; "
                         f"choose from {', '.join(FIG10_WORKLOADS)}")
    flow_control, size, messages = FIG10_WORKLOADS[label]
    n_sources = int(params.get("n_sources", 8))
    streams = int(params.get("streams_per_source", 4))
    sources = [src for src in range(n_sources) for _ in range(streams)]
    cluster = ctx.build_cluster(n_sources + 1, params=congested_params())
    ctx.monitor(cluster)
    perf = XrPerf(cluster)
    config = XrdmaConfig(flow_control=flow_control)
    result = perf.run_incast(sources, n_sources, size=size,
                             messages_per_source=messages, config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "cnps_sent": result.crucial.get("cnps_sent", 0),
        "pause_frames": result.crucial.get("pause_frames", 0),
        "retransmissions": result.crucial.get("retransmissions", 0),
    }


# ------------------------------------------------------------------ smoke
@scenario("smoke-incast")
def smoke_incast(ctx: RunContext) -> Dict[str, Any]:
    """A deliberately tiny incast for pool/CLI tests and ``--quick``
    invariance checks: seconds of wall time, not minutes.
    params: optional fragment_bytes, n_sources, size, messages."""
    params = ctx.params
    n_sources = int(params.get("n_sources", 3))
    sources = list(range(n_sources))
    cluster = ctx.build_cluster(n_sources + 1)
    perf = XrPerf(cluster)
    config: Optional[XrdmaConfig] = None
    if "fragment_bytes" in params:
        config = XrdmaConfig(fragment_bytes=int(params["fragment_bytes"]))
    result = perf.run_incast(sources, n_sources,
                             size=int(params.get("size", 16 * 1024)),
                             messages_per_source=int(
                                 params.get("messages", 6)),
                             mean_gap_ns=40_000, config=config)
    return {
        "goodput_gbps": result.goodput_gbps,
        "messages": result.messages,
        "bytes_moved": result.bytes_moved,
    }
