"""XR-Fleet: parallel experiment orchestration (the control plane for sweeps).

The paper's evidence is a fleet artifact — >4000 servers, figure sweeps,
ablation grids, failure drills — and the hard part of operating RDMA at
that scale is the orchestration plane, not the data path.  This package
is the reproduction's equivalent layer for its *simulated* fleet: it fans
independent seeded simulations out across a supervised multiprocessing
worker pool and folds the results back together reproducibly.

Pipeline::

    ExperimentSpec --expand--> RunUnits --plan--> canonical order
        --FleetPool--> JSONL run records --aggregate--> aggregate.json

* :mod:`repro.fleet.spec` — declarative experiment description (scenario
  name + seed list + parameter grid) and its expansion into
  :class:`~repro.fleet.spec.RunUnit` work units with stable,
  worker-count-independent identities.
* :mod:`repro.fleet.planner` — canonical total order and deterministic
  sharding over run units.
* :mod:`repro.fleet.runner` — executes one unit: seeded cluster
  factory, TieAudit schedule digest, invariant counting, monitor
  rollups, metric sanitation.
* :mod:`repro.fleet.pool` — the supervised worker pool: per-run
  wall-clock timeouts, crash isolation, bounded retries with backoff,
  quarantine, graceful cancellation.  The sweep always completes.
* :mod:`repro.fleet.store` — JSONL run records plus canonical-bytes
  JSON artifacts.
* :mod:`repro.fleet.aggregate` — percentile tables and the
  machine-readable aggregate; byte-identical for any ``--jobs``.
* :mod:`repro.fleet.scenarios` / :mod:`repro.fleet.experiments` — the
  library of paper scenarios and the built-in specs (ablation grids,
  Fig. 10 sweep).
* :mod:`repro.fleet.drills` — fault-injection scenarios exercising the
  supervisor itself (crash, flaky crash, raise, runaway).

CLI: ``python -m repro.tools.xr_fleet`` (run / status / aggregate).
"""

from repro.fleet.aggregate import aggregate_records
from repro.fleet.planner import plan, shard_of
from repro.fleet.pool import FleetPool, SweepSummary
from repro.fleet.runner import RunContext, execute_unit, run_scenario_inline
from repro.fleet.spec import ExperimentSpec, RunUnit
from repro.fleet.store import ResultStore, canonical_json

__all__ = [
    "ExperimentSpec",
    "FleetPool",
    "ResultStore",
    "RunContext",
    "RunUnit",
    "SweepSummary",
    "aggregate_records",
    "canonical_json",
    "execute_unit",
    "plan",
    "run_scenario_inline",
    "shard_of",
]
