"""Fault-injection drills: scenarios that attack the fleet itself.

The paper's operational lesson is that the orchestration layer must keep
working when individual runs do not.  These scenarios exercise exactly
that — each one misbehaves in a distinct way so the supervisor's crash
isolation, retry accounting, quarantine, and runaway guards can be proven
by tests (``tests/scenarios/test_fleet_failures.py``) rather than
asserted in prose.

All drills are deterministic: whether and when they misbehave depends
only on ``ctx.params`` / ``ctx.seed`` / ``ctx.attempt``, never on timing,
so retry accounting is exact and jobs-invariant.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.fleet.runner import RunContext
from repro.fleet.scenarios import scenario

__all__ = ["healthy", "raising", "crashing", "flaky_crash", "runaway"]


@scenario("drill-healthy")
def healthy(ctx: RunContext) -> Dict[str, Any]:
    """A trivially healthy run — control group for drill sweeps."""
    cluster = ctx.build_cluster(2)
    ticks = int(ctx.params.get("ticks", 10))

    def ticker():
        for _ in range(ticks):
            yield cluster.sim.timeout(1000)
        return ticks

    proc = cluster.sim.spawn(ticker())
    return {"ticks": cluster.sim.run_until_event(proc)}


@scenario("drill-raising")
def raising(ctx: RunContext) -> Dict[str, Any]:
    """Raises inside the worker: must become a reasoned ``failed`` record
    (the worker survives and takes the next task)."""
    ctx.build_cluster(1)
    raise RuntimeError(f"injected failure (seed {ctx.seed})")


@scenario("drill-crashing")
def crashing(ctx: RunContext) -> Dict[str, Any]:
    """Kills the worker process outright — no record, no goodbye.

    ``os._exit`` bypasses every ``finally``/``except`` in the worker, the
    closest simulation of a segfaulting or OOM-killed run the pure-Python
    fleet can produce.  The supervisor must notice the dead worker,
    synthesize a ``crashed`` record, and respawn.
    """
    os._exit(int(ctx.params.get("exit_code", 13)))


@scenario("drill-flaky-crash")
def flaky_crash(ctx: RunContext) -> Dict[str, Any]:
    """Crashes the worker on early attempts, succeeds from
    ``params["succeed_at"]`` on — the retry-then-recover path."""
    succeed_at = int(ctx.params.get("succeed_at", 1))
    if ctx.attempt < succeed_at:
        os._exit(int(ctx.params.get("exit_code", 21)))
    cluster = ctx.build_cluster(1)
    cluster.sim.run(until=1000)
    return {"recovered_at_attempt": ctx.attempt}


@scenario("drill-runaway")
def runaway(ctx: RunContext) -> Dict[str, Any]:
    """An unbounded event churner: never returns on its own.

    With ``max_events`` set on the spec the in-engine guard turns it into
    a recorded failure; without, the supervisor's wall-clock deadline
    kills the worker (a ``timeout`` record).  Both paths are tested.
    """
    cluster = ctx.build_cluster(1)

    def spin():
        while True:
            yield cluster.sim.timeout(10)

    proc = cluster.sim.spawn(spin())
    cluster.sim.run_until_event(proc)
    return {}       # pragma: no cover — unreachable


@scenario("drill-hang")
def hang(ctx: RunContext) -> Dict[str, Any]:
    """Spins *outside* the engine loop, where no event-budget or in-loop
    wall guard can see it — only the supervisor's kill-based per-run
    deadline ends this one.  The worst-case runaway."""
    del ctx
    while True:     # pragma: no cover — terminated by SIGKILL
        pass
