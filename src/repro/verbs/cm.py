"""librdmacm-shaped connection management.

The full REQ/REP/RTU handshake plus both sides' QP setup reproduces the
paper's pain point: ≈4 ms per establishment versus ≈100 µs for TCP
(Sec. III, Issue 3).  Both sides may supply a *recycled* QP (RESET state) to
skip the expensive ``create_qp`` — the hook the X-RDMA QP cache uses.

Usage (inside sim processes)::

    listener = cm.listen(service_port=7000)
    conn = yield from cm.connect(remote_host=1, service_port=7000,
                                 pd=pd, send_cq=cq, recv_cq=cq)
    peer_conn = yield listener.accepted.get()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.packet import Segment, SegmentKind
from repro.rnic.qp import QpState, QueuePair, SharedReceiveQueue
from repro.sim.events import AnyOf, Event
from repro.sim.timeunits import MICROS, SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.cq import CompletionQueue
    from repro.rnic.mr import ProtectionDomain
    from repro.rnic.nic import Rnic
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams
    from repro.sim.resources import Store
    from repro.verbs.api import VerbsContext

#: Control-plane "port" the CM agent claims on the NIC.
CM_PORT = 0
#: Wire size of CM messages.
_CM_BYTES = 256
#: Per-message software processing at each end of the handshake.
_CM_PROC_NS = 150 * MICROS

_conn_ids = itertools.count(1)


class ConnectError(RuntimeError):
    """Establishment failed (timeout, rejection, or dead peer).

    ``qp`` is the QP the failed attempt was holding (recycled or freshly
    created), so the caller can recycle or destroy it instead of leaking
    it — the connect-storm contract.
    """

    def __init__(self, message: str,
                 qp: Optional[QueuePair] = None) -> None:
        super().__init__(message)
        self.qp = qp


class _CmKind(Enum):
    REQ = auto()
    REP = auto()
    RTU = auto()
    REJ = auto()
    DISC = auto()


@dataclass
class _CmMessage:
    kind: _CmKind
    conn_id: int
    src_host: int
    service_port: int
    qpn: int = 0
    private_data: Optional[dict] = None
    port: int = CM_PORT      #: control-handler dispatch key


@dataclass
class CmConnection:
    """An established RC connection, as seen by one side."""

    conn_id: int
    qp: QueuePair
    local_host: int
    remote_host: int
    service_port: int
    private_data: Optional[dict] = None
    disconnected: bool = False
    on_disconnect: Optional[Callable[["CmConnection"], None]] = None


class CmListener:
    """Passive side of a service port; accepted connections land in a Store."""

    def __init__(self, sim: "Simulator", service_port: int,
                 pd: "ProtectionDomain", send_cq: "CompletionQueue",
                 recv_cq: "CompletionQueue",
                 srq: Optional[SharedReceiveQueue] = None,
                 qp_provider: Optional[Callable[[], Optional[QueuePair]]] = None,
                 private_data: Optional[dict] = None):
        from repro.sim.resources import Store
        self.service_port = service_port
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.srq = srq
        #: returns a recycled RESET-state QP, or None to create fresh
        self.qp_provider = qp_provider
        self.private_data = private_data
        self.accepted: Store = Store(sim, name=f"listener{service_port}")


class CmAgent:
    """One per host; owns the CM control channel on the NIC."""

    def __init__(self, sim: "Simulator", params: "SimParams",
                 verbs: "VerbsContext", nic: "Rnic"):
        self.sim = sim
        self.params = params
        self.verbs = verbs
        self.nic = nic
        self.listeners: Dict[int, CmListener] = {}
        self._pending: Dict[int, Event] = {}          # conn_id -> REP/REJ event
        self._connections: Dict[int, CmConnection] = {}
        self.established = 0
        nic.control_handlers[CM_PORT] = self._on_segment

    # -------------------------------------------------------------- passive
    def listen(self, service_port: int, pd: "ProtectionDomain",
               send_cq: "CompletionQueue", recv_cq: "CompletionQueue",
               srq: Optional[SharedReceiveQueue] = None,
               qp_provider: Optional[Callable[[], Optional[QueuePair]]] = None,
               private_data: Optional[dict] = None) -> CmListener:
        if service_port in self.listeners:
            raise ValueError(f"port {service_port} already listening")
        listener = CmListener(self.sim, service_port, pd, send_cq, recv_cq,
                              srq=srq, qp_provider=qp_provider,
                              private_data=private_data)
        self.listeners[service_port] = listener
        return listener

    def stop_listening(self, service_port: int) -> None:
        self.listeners.pop(service_port, None)

    # --------------------------------------------------------------- active
    def connect(self, remote_host: int, service_port: int,
                pd: "ProtectionDomain", send_cq: "CompletionQueue",
                recv_cq: "CompletionQueue",
                qp: Optional[QueuePair] = None,
                srq: Optional[SharedReceiveQueue] = None,
                private_data: Optional[dict] = None,
                timeout_ns: int = 2 * SECONDS,
                setup_trace=None):
        """Generator: establish a connection; ``yield from`` it.

        ``qp`` may be a recycled RESET-state QP (the QP-cache fast path);
        otherwise a fresh QP is created at full cost.  ``setup_trace`` is
        an optional XR-Trace :class:`TraceContext`; marks are passive
        timestamp captures, so tracing stays schedule-neutral.
        """
        yield self.sim.timeout(self.params.cm_resolve_ns)
        if setup_trace is not None:
            setup_trace.mark("cm_resolve")

        if qp is None:
            qp = yield self.verbs.create_qp(pd, send_cq, recv_cq, srq=srq)
        elif qp.state is not QpState.RESET:
            raise ConnectError("recycled QP must be in RESET state", qp=qp)
        yield self.verbs.modify_qp(qp, QpState.INIT)
        if setup_trace is not None:
            setup_trace.mark("qp_setup")

        conn_id = next(_conn_ids)
        reply_ev = self.sim.event(f"cm:rep{conn_id}")
        self._pending[conn_id] = reply_ev
        self._send(remote_host, _CmMessage(
            kind=_CmKind.REQ, conn_id=conn_id, src_host=self.nic.host_id,
            service_port=service_port, qpn=qp.qpn,
            private_data=private_data))

        result = yield AnyOf(self.sim, [reply_ev,
                                        self.sim.timeout(timeout_ns)])
        self._pending.pop(conn_id, None)
        if reply_ev not in result:
            raise ConnectError(
                f"connect to host {remote_host}:{service_port} timed out",
                qp=qp)
        reply: _CmMessage = reply_ev.value
        if reply.kind is _CmKind.REJ:
            raise ConnectError(
                f"host {remote_host} rejected port {service_port}", qp=qp)

        yield self.sim.timeout(_CM_PROC_NS)       # REP processing
        if setup_trace is not None:
            setup_trace.mark("handshake")
        yield self.verbs.modify_qp(qp, QpState.RTR,
                                   remote_host=remote_host,
                                   remote_qpn=reply.qpn)
        yield self.verbs.modify_qp(qp, QpState.RTS)
        if setup_trace is not None:
            setup_trace.mark("qp_to_rts")
        self._send(remote_host, _CmMessage(
            kind=_CmKind.RTU, conn_id=conn_id, src_host=self.nic.host_id,
            service_port=service_port, qpn=qp.qpn))

        conn = CmConnection(
            conn_id=conn_id, qp=qp, local_host=self.nic.host_id,
            remote_host=remote_host, service_port=service_port,
            private_data=reply.private_data)
        self._connections[conn_id] = conn
        self.established += 1
        return conn

    def disconnect(self, conn: CmConnection) -> None:
        """Tear down; flushes the QP and notifies the peer."""
        if conn.disconnected:
            return
        conn.disconnected = True
        self._send(conn.remote_host, _CmMessage(
            kind=_CmKind.DISC, conn_id=conn.conn_id,
            src_host=self.nic.host_id, service_port=conn.service_port))
        self.nic.flush(conn.qp)
        self._connections.pop(conn.conn_id, None)

    # ------------------------------------------------------------- internals
    def _send(self, remote_host: int, message: _CmMessage) -> None:
        segment = Segment(src=self.nic.host_id, dst=remote_host,
                          size=_CM_BYTES, kind=SegmentKind.CONTROL,
                          ecn_capable=False, payload=message)
        if self.nic.uplink is None:
            raise RuntimeError("CM agent's NIC is not attached to a fabric")
        if remote_host == self.nic.host_id:
            self.sim.call_after(self.params.link_propagation_ns,
                                lambda: self._on_segment(segment))
        else:
            self.nic.uplink.enqueue(segment)

    def _on_segment(self, segment: Segment) -> None:
        message: _CmMessage = segment.payload
        if message.kind is _CmKind.REQ:
            self.sim.spawn(self._handle_request(message),
                           name=f"cm:req{message.conn_id}")
        elif message.kind in (_CmKind.REP, _CmKind.REJ):
            pending = self._pending.get(message.conn_id)
            if pending is not None and not pending.triggered:
                pending.succeed(message)
        elif message.kind is _CmKind.RTU:
            # Passive side is fully established; nothing further to do —
            # the QP was moved to RTS when REP was sent (matching the
            # practical rdma_cm pattern of RTR+RTS on accept).
            pass
        elif message.kind is _CmKind.DISC:
            conn = self._connections.pop(message.conn_id, None)
            if conn is not None and not conn.disconnected:
                conn.disconnected = True
                self.nic.flush(conn.qp)
                if conn.on_disconnect is not None:
                    conn.on_disconnect(conn)

    def _handle_request(self, request: _CmMessage):
        yield self.sim.timeout(_CM_PROC_NS)
        listener = self.listeners.get(request.service_port)
        if listener is None:
            self._send(request.src_host, _CmMessage(
                kind=_CmKind.REJ, conn_id=request.conn_id,
                src_host=self.nic.host_id,
                service_port=request.service_port))
            return
        qp: Optional[QueuePair] = None
        if listener.qp_provider is not None:
            qp = listener.qp_provider()
        if qp is None:
            qp = yield self.verbs.create_qp(
                listener.pd, listener.send_cq, listener.recv_cq,
                srq=listener.srq)
        yield self.verbs.modify_qp(qp, QpState.INIT)
        yield self.verbs.modify_qp(qp, QpState.RTR,
                                   remote_host=request.src_host,
                                   remote_qpn=request.qpn)
        yield self.verbs.modify_qp(qp, QpState.RTS)
        self._send(request.src_host, _CmMessage(
            kind=_CmKind.REP, conn_id=request.conn_id,
            src_host=self.nic.host_id, service_port=request.service_port,
            qpn=qp.qpn, private_data=listener.private_data))
        conn = CmConnection(
            conn_id=request.conn_id, qp=qp, local_host=self.nic.host_id,
            remote_host=request.src_host,
            service_port=request.service_port,
            private_data=request.private_data)
        self._connections[request.conn_id] = conn
        self.established += 1
        listener.accepted.put_nowait(conn)
