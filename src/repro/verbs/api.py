"""libibverbs-shaped API over the simulated RNIC.

Calls that cost host time return events; application processes yield them::

    mr = yield ctx.reg_mr(pd, buf.addr, buf.length)
    yield ctx.post_send(qp, wr)
    completions = ctx.poll_cq(cq)       # non-blocking, like ibv_poll_cq

The cost model is the part that matters to the middleware: MR registration
is tens of µs (why X-RDMA pools 4 MB MRs), QP creation is ~1 ms (why the QP
cache exists), posting is ~200 ns (why per-message overheads stay small).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.memory.host import AllocMode, HostMemory
from repro.rnic.cq import CompletionQueue
from repro.rnic.mr import AccessFlags, MemoryRegion, ProtectionDomain
from repro.rnic.qp import QpState, QueuePair, SharedReceiveQueue
from repro.rnic.wqe import Completion, WorkRequest
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.nic import Rnic
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams


class VerbsContext:
    """One process's handle on its host's RNIC (ibv_context)."""

    def __init__(self, sim: "Simulator", params: "SimParams", nic: "Rnic",
                 memory: Optional[HostMemory] = None):
        self.sim = sim
        self.params = params
        self.nic = nic
        self.memory = memory or HostMemory()
        self.mrs_registered = 0
        self.qps_created = 0

    # ----------------------------------------------------------------- infra
    def _charged(self, cost_ns: int, effect: Callable[[], object]) -> Event:
        """Run ``effect`` after ``cost_ns``; the returned event carries its
        result (or failure)."""
        done = self.sim.event()

        def fire(_ev: Event) -> None:
            try:
                done.succeed(effect())
            except BaseException as exc:  # xr-lint: disable=swallowed-error
                # Not swallowed: fail() re-raises through the charged event
                # at the caller's yield point.
                done.fail(exc)

        self.sim.timeout(cost_ns).add_callback(fire)
        return done

    # ------------------------------------------------------------------- PDs
    def alloc_pd(self) -> ProtectionDomain:
        return ProtectionDomain()

    # ------------------------------------------------------------------- MRs
    def reg_mr(self, pd: ProtectionDomain, addr: int, length: int,
               access: AccessFlags = AccessFlags.all_remote()) -> Event:
        """Register RDMA-enabled memory (pins pages; cost scales with size)."""
        def effect() -> MemoryRegion:
            mr = pd.register(addr, length, access)
            self.nic.mr_table.install(mr)
            self.mrs_registered += 1
            return mr
        return self._charged(self.params.mr_register_ns(length), effect)

    def reg_mr_batch(self, pd: ProtectionDomain,
                     regions: List[Tuple[int, int]],
                     access: AccessFlags = AccessFlags.all_remote()) -> Event:
        """Register many ``(addr, length)`` regions in one driver call.

        The per-call base cost (the driver round trip) is paid once for
        the whole batch; per-page pinning still sums — the lazy/batched
        registration path of the control plane."""
        def effect() -> List[MemoryRegion]:
            mrs = []
            for addr, length in regions:
                mr = pd.register(addr, length, access)
                self.nic.mr_table.install(mr)
                self.mrs_registered += 1
                mrs.append(mr)
            return mrs
        cost = self.params.mr_register_batch_ns(
            [length for _, length in regions])
        return self._charged(cost, effect)

    def reg_mr_odp(self, pd: ProtectionDomain, addr: int, length: int,
                   access: AccessFlags = AccessFlags.all_remote()) -> Event:
        """Register without pinning (on-demand paging, the NP-RDMA model).

        Registration is cheap — no pages are pinned — but accesses to
        non-resident pages later pay fault latency (charged by the
        no-pin MemCache at buffer hand-out)."""
        def effect() -> MemoryRegion:
            mr = pd.register(addr, length, access)
            self.nic.mr_table.install(mr)
            self.mrs_registered += 1
            return mr
        return self._charged(self.params.odp_register_ns, effect)

    def dereg_mr(self, pd: ProtectionDomain, mr: MemoryRegion) -> Event:
        def effect() -> None:
            pd.deregister(mr)
            self.nic.mr_table.remove(mr)
        return self._charged(self.params.mr_register_base_ns // 2, effect)

    # ------------------------------------------------------------------- CQs
    def create_cq(self, depth: int = 1024) -> CompletionQueue:
        return CompletionQueue(self.sim, depth)

    def create_srq(self, depth: int = 1024) -> SharedReceiveQueue:
        return SharedReceiveQueue(depth)

    # ------------------------------------------------------------------- QPs
    def create_qp(self, pd: ProtectionDomain, send_cq: CompletionQueue,
                  recv_cq: CompletionQueue,
                  sq_depth: Optional[int] = None,
                  rq_depth: Optional[int] = None,
                  srq: Optional[SharedReceiveQueue] = None) -> Event:
        """Allocate a QP (≈1 ms of firmware/driver work)."""
        def effect() -> QueuePair:
            qp = QueuePair(
                pd, send_cq, recv_cq,
                sq_depth=sq_depth or self.params.max_send_queue_depth,
                rq_depth=rq_depth or self.params.max_recv_queue_depth,
                srq=srq)
            self.nic.register_qp(qp)
            self.qps_created += 1
            return qp
        return self._charged(self.params.qp_create_ns, effect)

    def modify_qp(self, qp: QueuePair, state: QpState,
                  remote_host: Optional[int] = None,
                  remote_qpn: Optional[int] = None) -> Event:
        """One verbs state transition (each costs ``qp_modify_ns``)."""
        def effect() -> QueuePair:
            if state is QpState.RESET:
                qp.reset()
            else:
                qp.transition(state)
            if state is QpState.RTR:
                if remote_host is None or remote_qpn is None:
                    raise ValueError("RTR requires remote_host and remote_qpn")
                qp.set_peer(remote_host, remote_qpn)
            return qp
        cost = (self.params.qp_reset_ns if state is QpState.RESET
                else self.params.qp_modify_ns)
        return self._charged(cost, effect)

    def destroy_qp(self, qp: QueuePair) -> Event:
        def effect() -> None:
            self.nic.destroy_qp(qp)
        return self._charged(self.params.qp_reset_ns, effect)

    # -------------------------------------------------------------------- DC
    def create_dc_initiator(self, pd: ProtectionDomain,
                            send_cq: CompletionQueue):
        """A DC initiator (DCI): one send object, many targets (Sec. IX)."""
        from repro.rnic.dct import DcInitiator
        return DcInitiator(self.sim, self.params, self.nic, pd, send_cq)

    def create_dc_target(self, pd: ProtectionDomain,
                         recv_cq: CompletionQueue,
                         srq: SharedReceiveQueue):
        """A DC target (DCT); receives land in the mandatory SRQ."""
        from repro.rnic.dct import DcTarget
        target = DcTarget(self.nic, pd, recv_cq, srq)
        self.nic.register_dc_target(target)
        return target

    # ----------------------------------------------------------------- datap
    def post_send(self, qp: QueuePair, wr: WorkRequest) -> Event:
        return self._charged(
            self.params.host_post_overhead_ns,
            lambda: self.nic.post_send(qp, wr))

    def post_recv(self, qp: QueuePair, wr: WorkRequest) -> Event:
        return self._charged(
            self.params.host_post_overhead_ns,
            lambda: qp.post_recv(wr))

    def post_srq_recv(self, srq: SharedReceiveQueue,
                      wr: WorkRequest) -> Event:
        return self._charged(
            self.params.host_post_overhead_ns,
            lambda: srq.post(wr))

    def poll_cq(self, cq: CompletionQueue,
                max_entries: int = 16) -> List[Completion]:
        """Non-blocking poll (the caller's loop provides pacing)."""
        return cq.poll(max_entries)
