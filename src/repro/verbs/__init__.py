"""The verbs surface X-RDMA (and every baseline) is built on.

:class:`~repro.verbs.api.VerbsContext` mirrors the libibverbs call set the
paper's Sec. II-A walks through — the "complex ritual" of context, PD, MR,
CQ, QP, modify, post, poll.  :class:`~repro.verbs.cm.CmAgent` mirrors
librdmacm with its production-relevant property: establishment costs
milliseconds (Sec. III, Issue 3).
"""

from repro.verbs.api import VerbsContext
from repro.verbs.cm import CmAgent, CmConnection, CmListener, ConnectError

__all__ = ["CmAgent", "CmConnection", "CmListener", "ConnectError",
           "VerbsContext"]
