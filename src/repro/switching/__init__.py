"""Output-queued switches with ECN marking and PFC (RoCEv2 data plane)."""

from repro.switching.switch import Switch

__all__ = ["Switch"]
