"""The switch model.

An output-queued switch with:

* per-egress-port buffers with byte admission (overflow ⇒ drop, counted —
  with PFC working correctly, lossless-class drops stay at zero),
* RED-style ECN marking between ``ecn_kmin``/``ecn_kmax`` (what DCQCN's CNP
  loop feeds on),
* PFC: per-ingress-port byte accounting; crossing ``pfc_xoff`` sends a pause
  frame to the upstream transmitter, falling below ``pfc_xon`` resumes it.

Pause/resume frames travel out-of-band (they gate the upstream port at
packet boundaries), matching 802.1Qbb behaviour closely enough for the
congestion experiments (Fig. 10).

Per-switch state is deliberately O(ports): routing is a shared flyweight
:class:`~repro.topology.clos.RoutingTable` consulted by ``(role, index)``,
and the PFC ingress accounting lives in flat arrays sized at build rather
than defaultdicts.  Both keep the 1000-node emulation path's per-node
memory flat while leaving schedules byte-identical with the closure/dict
implementation they replaced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.net.device import Device
from repro.net.packet import Segment, SegmentKind
from repro.topology.link import EgressPort

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stats import NetStats
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams
    from repro.sim.rng import RngStream
    from repro.topology.clos import RoutingTable

#: Ingress port number used for segments injected by test harnesses.  Maps
#: onto the *trailing* element of the flat ingress arrays — Python's ``-1``
#: index — which :meth:`Switch.add_port` keeps reserved.
LOCAL_PORT = -1


class Switch(Device):
    """One switch; the topology wires ports and installs shared routing."""

    #: routing-table roles (what a switch *is* in the Clos tiers)
    ROLE_TOR = 0
    ROLE_LEAF = 1
    ROLE_SPINE = 2

    def __init__(self, sim: "Simulator", params: "SimParams",
                 stats: "NetStats", rng: "RngStream", name: str):
        self.sim = sim
        self.params = params
        self.stats = stats
        self.rng = rng
        self.name = name
        self.ports: List[EgressPort] = []
        #: in_port -> (upstream device, upstream's egress-port index)
        self.neighbors: Dict[int, Tuple[Device, int]] = {}
        #: shared flyweight routing (installed by the topology) + this
        #: switch's coordinate in it
        self.routing: Optional["RoutingTable"] = None
        self.routing_role: int = Switch.ROLE_TOR
        self.routing_index: int = 0
        #: test/bench hook: an explicit per-switch route function overrides
        #: the shared table when set
        self.route: Optional[Callable[[Segment], int]] = None
        # Flat PFC ingress accounting, index == ingress port; the final
        # element is the LOCAL_PORT (-1) slot for harness-injected traffic.
        self._ingress_bytes: List[int] = [0]
        self._paused_upstream: List[bool] = [False]
        self.pfc_enabled = True
        self.drops = 0
        self.marks = 0

    # -------------------------------------------------------------- topology
    def add_port(self, bandwidth_bps: Optional[float] = None) -> int:
        """Create one egress port; returns its index."""
        index = len(self.ports)
        port = EgressPort(
            self.sim, self.params, name=f"{self.name}.p{index}",
            bandwidth_bps=bandwidth_bps, on_dequeue=self._on_dequeue)
        self.ports.append(port)
        # Grow the flat ingress arrays in step, keeping the LOCAL_PORT
        # accumulator as the trailing element.
        self._ingress_bytes.insert(index, 0)
        self._paused_upstream.insert(index, False)
        return index

    def install_routing(self, routing: "RoutingTable", role: int,
                        index: int) -> None:
        """Adopt the fabric's shared routing table at ``(role, index)``."""
        self.routing = routing
        self.routing_role = role
        self.routing_index = index

    def register_neighbor(self, in_port: int, device: Device,
                          their_port: int) -> None:
        """Record who transmits into our ``in_port`` (PFC pause target)."""
        self.neighbors[in_port] = (device, their_port)

    # ------------------------------------------------------------- data path
    def receive(self, segment: Segment, in_port: int) -> None:
        """Forward one segment: route, admit, ECN-mark, PFC-account."""
        route = self.route
        if route is not None:
            out_index = route(segment)
        elif self.routing is not None:
            out_index = self.routing.route(self.routing_role,
                                           self.routing_index, segment)
        else:
            raise RuntimeError(f"switch {self.name!r} has no routing installed")
        segment.hops += 1
        port = self.ports[out_index]
        params = self.params
        size = segment.size
        pfc = self.pfc_enabled

        lossless = pfc and segment.priority == 0
        if (port.queued_bytes + size > params.switch_port_buffer_bytes
                and not lossless):
            # Lossy class (or PFC off): tail-drop at the nominal buffer.
            # The lossless class instead absorbs the transient into PFC
            # headroom — pause frames bound the overshoot.
            self.drops += 1
            self.stats.drops += 1
            return

        if segment.kind is SegmentKind.DATA and segment.ecn_capable:
            if self._should_mark(port.queued_bytes):
                segment.ecn_marked = True
                self.marks += 1
                self.stats.ecn_marks += 1

        segment.pfc_ingress = in_port
        segment.pfc_switch = self
        ingress = self._ingress_bytes[in_port] + size
        self._ingress_bytes[in_port] = ingress
        # Inlined _check_xoff fast path: the per-segment common case is
        # "below the threshold", one compare away.  PFC protects the
        # lossless class, so the pause frame names priority 0.
        if (pfc and in_port != LOCAL_PORT
                and ingress > params.pfc_xoff_bytes
                and not self._paused_upstream[in_port]):
            self._paused_upstream[in_port] = True
            self.stats.pause_frames += 1
            self._notify_upstream(in_port, pause=True)
        app = getattr(segment.payload, "app_payload", None)
        if app is not None:
            trace = getattr(app, "trace", None)
            if trace is not None:
                trace.mark(f"wire_hop{segment.hops}")
        port.enqueue(segment)

    def pause_port(self, port: int, priority: int, pause: bool) -> None:
        """A downstream device paused/resumed ``priority``-class traffic on
        the link our ``port`` feeds.

        The class is honoured: an 802.1Qbb pause frame gates only the named
        priority, so lossy traffic keeps flowing through a port whose
        lossless class is paused (head-of-line permitting — the port is a
        single FIFO, see :meth:`EgressPort.set_paused`).
        """
        self.ports[port].set_paused(pause, priority)

    # --------------------------------------------------------------- PFC/ECN
    def _should_mark(self, queue_bytes: int) -> bool:
        p = self.params
        if queue_bytes <= p.ecn_kmin_bytes:
            return False
        if queue_bytes >= p.ecn_kmax_bytes:
            return True
        span = p.ecn_kmax_bytes - p.ecn_kmin_bytes
        probability = p.ecn_pmax * (queue_bytes - p.ecn_kmin_bytes) / span
        return self.rng.bernoulli(probability)

    def _check_xon(self, in_port: int) -> None:
        if not self.pfc_enabled or in_port == LOCAL_PORT:
            return
        if (self._paused_upstream[in_port]
                and self._ingress_bytes[in_port] <= self.params.pfc_xon_bytes):
            self._paused_upstream[in_port] = False
            self.stats.resume_frames += 1
            self._notify_upstream(in_port, pause=False)

    def _notify_upstream(self, in_port: int, pause: bool) -> None:
        neighbor = self.neighbors.get(in_port)
        if neighbor is None:
            return
        device, their_port = neighbor
        # Pause frames are link-local: propagation delay only.
        self.sim.call_after(
            self.params.link_propagation_ns,
            lambda: device.pause_port(their_port, 0, pause))

    def _on_dequeue(self, segment: Segment) -> None:
        if segment.pfc_switch is not self:
            return
        in_port = segment.pfc_ingress
        self._ingress_bytes[in_port] -= segment.size
        self._check_xon(in_port)

    # ------------------------------------------------------------ inspection
    def queue_depth_bytes(self, port: int) -> int:
        """Bytes queued at one egress port."""
        return self.ports[port].queued_bytes

    def total_queued_bytes(self) -> int:
        """Bytes queued across all egress ports (buffer utilization)."""
        return sum(port.queued_bytes for port in self.ports)
