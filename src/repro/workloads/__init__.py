"""Workload generation: flow models and production-shaped traces."""

from repro.workloads.flows import (FlowSpec, elephant_size, mice_size,
                                   open_loop_sender, request_loop)
from repro.workloads.traces import burst_profile, diurnal_profile, rate_at

__all__ = ["FlowSpec", "burst_profile", "diurnal_profile", "elephant_size",
           "mice_size", "open_loop_sender", "rate_at", "request_loop"]
