"""Production-shaped load profiles (Figs. 3, 11, 12).

The paper's monitoring shows traffic alternating between saturated and
unsaturated (diurnal shape, Fig. 3) and short multi-x bursts under
promotion pressure (Fig. 12).  These helpers produce (time, rate) knots the
application drivers interpolate.
"""

from __future__ import annotations

import math
from typing import List, Tuple

Knot = Tuple[int, float]


def diurnal_profile(duration_ns: int, period_ns: int, low: float,
                    high: float, knots_per_period: int = 24) -> List[Knot]:
    """Sinusoidal day/night alternation between ``low`` and ``high``."""
    if duration_ns <= 0 or period_ns <= 0:
        raise ValueError("duration and period must be positive")
    if low > high:
        raise ValueError(f"low {low} > high {high}")
    step = max(1, period_ns // knots_per_period)
    knots = []
    t = 0
    while t <= duration_ns:
        phase = 2 * math.pi * (t % period_ns) / period_ns
        value = low + (high - low) * (0.5 - 0.5 * math.cos(phase))
        knots.append((t, value))
        t += step
    return knots


def burst_profile(duration_ns: int, base: float, burst: float,
                  burst_start_ns: int, burst_len_ns: int) -> List[Knot]:
    """Steady ``base`` rate with one rectangular burst to ``burst``
    (the Fig. 12 "throughput ×3 under pressure" shape)."""
    if not 0 <= burst_start_ns <= duration_ns:
        raise ValueError("burst must start within the trace")
    end = min(burst_start_ns + burst_len_ns, duration_ns)
    return [(0, base), (burst_start_ns, burst), (end, base),
            (duration_ns, base)]


def rate_at(knots: List[Knot], t_ns: int) -> float:
    """Step-interpolate the profile at ``t_ns``."""
    if not knots:
        raise ValueError("empty profile")
    current = knots[0][1]
    for knot_t, value in knots:
        if knot_t > t_ns:
            break
        current = value
    return current
