"""Flow models (Sec. VI-B: "customize flow models, e.g., elephant and mice
flows").

Mice are short, latency-sensitive messages (≤ a few KB); elephants are
bulk transfers (hundreds of KB to MBs) — the mix that drives incast and
head-of-line effects in the paper's production workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.xrdma.channel import ChannelBroken
from repro.xrdma.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngStream
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.context import XrdmaContext


def mice_size(rng: "RngStream") -> int:
    """Short message: 64 B – 4 KB, biased small (log-uniform)."""
    exponent = rng.uniform(6, 12)        # 2^6 .. 2^12
    return int(2 ** exponent)


def elephant_size(rng: "RngStream") -> int:
    """Bulk transfer: 256 KB – 4 MB, heavy-tailed."""
    size = rng.pareto(shape=1.5, scale=256 * 1024)
    return min(int(size), 4 * 1024 * 1024)


@dataclass
class FlowSpec:
    """A unidirectional traffic description between two contexts.

    ``mean_gap_ns`` selects the pacing regime — the distinction the
    serving subsystem is built on, pinned by
    ``tests/workloads/test_workloads.py``:

    * ``0`` (**closed-pipe**): messages are enqueued back to back (1 ns
      apart); the *transport* paces the flow via its seq-ack window and
      flow-control backpressure.  This is the incast benchmarks' maximal
      -pressure mode.
    * ``> 0`` (**open loop**): exponential inter-arrival gaps drawn
      solely from the rng stream.  Send times are a pure function of
      ``(seed, spec)`` — they must never depend on acks, completions, or
      how congested the fabric is, or the offered load would quietly
      throttle itself exactly when the measurement matters most.
    """

    src: int
    dst: int
    #: draws a message size (rng -> bytes); None = use ``fixed_size``
    size_fn: Optional[Callable[["RngStream"], int]] = None
    fixed_size: int = 4096
    #: mean inter-arrival gap; 0 = closed-pipe (see class docstring)
    mean_gap_ns: int = 0
    count: Optional[int] = None          #: messages to send (None = endless)
    duration_ns: Optional[int] = None    #: stop after this long
    kind: MessageKind = MessageKind.ONEWAY

    def draw_size(self, rng: "RngStream") -> int:
        if self.size_fn is None:
            return self.fixed_size
        return self.size_fn(rng)


def open_loop_sender(ctx: "XrdmaContext", channel: "XrdmaChannel",
                     spec: FlowSpec, rng: "RngStream",
                     sent_log: Optional[List] = None):
    """Process generator: send per ``spec`` with Poisson-ish gaps.

    Open loop: does not wait for acks, so bursts genuinely overrun the
    receiver the way production incast does.  With ``mean_gap_ns > 0``
    the enqueue times depend only on the rng stream (never on completion
    times) — the regression test compares send timestamps across fast
    and congested fabrics to keep it that way.
    """
    sim = ctx.sim
    started = sim.now
    sent = 0
    sent_bytes = 0
    while True:
        if spec.count is not None and sent >= spec.count:
            return sent, sent_bytes
        if spec.duration_ns is not None \
                and sim.now - started >= spec.duration_ns:
            return sent, sent_bytes
        size = spec.draw_size(rng)
        try:
            msg = ctx.send_msg(channel, size, kind=spec.kind)
        except ChannelBroken:   # channel died mid-run
            return sent, sent_bytes
        sent += 1
        sent_bytes += size
        if sent_log is not None:
            sent_log.append((sim.now, size, msg))
        gap = int(rng.exponential(spec.mean_gap_ns)) if spec.mean_gap_ns \
            else 0
        yield sim.timeout(max(gap, 1))


def request_loop(ctx: "XrdmaContext", channel: "XrdmaChannel",
                 size: int, count: int, response_size: int = 64,
                 latencies: Optional[List[int]] = None):
    """Process generator: closed-loop RPC ping (latency measurement)."""
    sim = ctx.sim
    for _ in range(count):
        t0 = sim.now
        request = ctx.send_request(channel, size)
        yield request.response
        if latencies is not None:
            latencies.append(sim.now - t0)
    return count
