"""XR-Perf: the benchmark and stress driver (Sec. VI-B).

Beyond plain benchmarks, XR-Perf runs *customizable flow models* —
latency ping-pongs, bandwidth streams, N→1 incast, and elephant/mice mixes
— and reports results together with the fabric's crucial indexes, which is
how the flow-control experiments (Fig. 10) are driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.stats import LatencyHistogram, jitter_index, mean
from repro.sim.timeunits import MILLIS, SECONDS
from repro.workloads.flows import (FlowSpec, elephant_size, mice_size,
                                   open_loop_sender, request_loop)
from repro.xrdma.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.context import XrdmaContext

PERF_PORT = 9980


@dataclass
class PerfResult:
    """One XR-Perf run's outcome."""

    name: str
    duration_ns: int = 0
    messages: int = 0
    bytes_moved: int = 0
    latencies_ns: List[int] = field(default_factory=list)
    crucial: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_latency_us(self) -> float:
        return mean(self.latencies_ns) / 1000 if self.latencies_ns else 0.0

    @property
    def goodput_gbps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes_moved * 8 / self.duration_ns

    @property
    def jitter(self) -> float:
        return jitter_index(self.latencies_ns)

    def summary(self) -> str:
        return (f"{self.name}: msgs={self.messages} "
                f"goodput={self.goodput_gbps:.2f}Gbps "
                f"lat_mean={self.mean_latency_us:.2f}us "
                f"jitter={self.jitter:.3f} "
                f"cnp={self.crucial.get('cnps_sent', 0)} "
                f"pause={self.crucial.get('pause_frames', 0)}")


class XrPerf:
    """Drives workloads between contexts it creates (or is handed)."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self._contexts: Dict[int, "XrdmaContext"] = {}
        # Per-instance, not class-level: a class counter would survive
        # across drivers in one process, giving the Nth XrPerf different
        # RNG stream names than a fresh one under the same root seed.
        self._sender_seq = 0

    def context(self, host_id: int, config=None) -> "XrdmaContext":
        ctx = self._contexts.get(host_id)
        if ctx is None:
            ctx = self.cluster.xrdma_context(host_id, config=config,
                                             name=f"xrperf-h{host_id}")
            ctx.listen(PERF_PORT)
            self._contexts[host_id] = ctx
        return ctx

    def _crucial_snapshot(self) -> Dict[str, int]:
        return self.cluster.stats.snapshot()

    @staticmethod
    def _crucial_delta(before: Dict[str, int],
                       after: Dict[str, int]) -> Dict[str, int]:
        return {key: after[key] - before[key] for key in after}

    # ------------------------------------------------------------- scenarios
    def run_latency(self, src: int, dst: int, size: int,
                    iterations: int = 50) -> PerfResult:
        """Closed-loop RPC latency (one-way = RTT/2 recorded)."""
        client = self.context(src)
        server = self.context(dst)
        self._install_echo(server)
        result = PerfResult(name=f"latency-{size}B")
        before = self._crucial_snapshot()
        t0 = self.sim.now

        def scenario():
            channel = yield from client.connect(dst, PERF_PORT)
            rtts: List[int] = []
            yield from request_loop(client, channel, size, iterations,
                                    latencies=rtts)
            result.latencies_ns = [rtt // 2 for rtt in rtts]
            yield from client.close_channel(channel)

        proc = self.sim.spawn(scenario())
        self.sim.run_until_event(proc, limit=self.sim.now + 600 * SECONDS)
        result.duration_ns = self.sim.now - t0
        result.messages = iterations
        result.bytes_moved = iterations * size
        result.crucial = self._crucial_delta(before, self._crucial_snapshot())
        return result

    def run_incast(self, sources: List[int], sink: int, size: int,
                   messages_per_source: int, mean_gap_ns: int = 0,
                   config=None) -> PerfResult:
        """N→1 incast of open-loop senders (the Fig. 10 scenario)."""
        sink_ctx = self.context(sink, config=config)
        self._install_sink(sink_ctx)
        result = PerfResult(name=f"incast-{len(sources)}to1-{size}B")
        before = self._crucial_snapshot()
        t0 = self.sim.now
        procs = []
        for src in sources:
            ctx = self.context(src, config=config)
            spec = FlowSpec(src=src, dst=sink, fixed_size=size,
                            mean_gap_ns=mean_gap_ns,
                            count=messages_per_source)
            procs.append(self.sim.spawn(
                self._incast_sender(ctx, sink, spec),
                name=f"xrperf:incast{src}"))
        done = self.sim.all_of(procs)
        self.sim.run_until_event(done, limit=self.sim.now + 600 * SECONDS)
        result.duration_ns = self.sim.now - t0
        # Let control-plane tails (acks, CQEs) drain before reading counters.
        self.sim.run(until=self.sim.now + 20 * MILLIS)
        # Goodput counts *application* bytes only — retransmissions are
        # waste, not work (they show up in result.crucial instead).
        result.messages = sum((p.value or (0, 0))[0] for p in procs)
        result.bytes_moved = sum((p.value or (0, 0))[1] for p in procs)
        result.crucial = self._crucial_delta(before, self._crucial_snapshot())
        return result

    def _incast_sender(self, ctx, sink, spec):
        channel = yield from ctx.connect(sink, PERF_PORT)
        self._sender_seq += 1
        rng = self.cluster.rng.stream(
            f"xrperf:{spec.src}->{spec.dst}#{self._sender_seq}")
        sent, sent_bytes = yield from open_loop_sender(ctx, channel, spec,
                                                       rng)
        # Wait for everything to be consumed before declaring done.
        from repro.xrdma.channel import ChannelState
        while channel.state is ChannelState.READY and (
                channel.window.in_flight > 0 or channel.pending_send):
            yield self.sim.timeout(100_000)
        return sent, sent_bytes

    def run_mixed(self, pairs: List, duration_ns: int,
                  elephant_ratio: float = 0.1) -> PerfResult:
        """Elephant/mice mix across ``pairs`` of (src, dst)."""
        result = PerfResult(name="mixed-elephant-mice")
        before = self._crucial_snapshot()
        t0 = self.sim.now
        procs = []
        for index, (src, dst) in enumerate(pairs):
            ctx = self.context(src)
            self._install_sink(self.context(dst))
            rng = self.cluster.rng.stream(f"xrperf:mix{index}")
            is_elephant = rng.uniform() < elephant_ratio
            spec = FlowSpec(
                src=src, dst=dst,
                size_fn=elephant_size if is_elephant else mice_size,
                mean_gap_ns=(2 * MILLIS if is_elephant else 50_000),
                duration_ns=duration_ns)
            procs.append(self.sim.spawn(self._incast_sender(ctx, dst, spec)))
        done = self.sim.all_of(procs)
        self.sim.run_until_event(done, limit=self.sim.now + 600 * SECONDS)
        result.duration_ns = self.sim.now - t0
        result.messages = sum((p.value or (0, 0))[0] for p in procs)
        result.bytes_moved = sum((p.value or (0, 0))[1] for p in procs)
        result.crucial = self._crucial_delta(before, self._crucial_snapshot())
        return result

    # ------------------------------------------------------------- plumbing
    def _install_echo(self, ctx: "XrdmaContext") -> None:
        if getattr(ctx, "_xrperf_echo", False):
            return
        ctx._xrperf_echo = True

        def loop():
            while True:
                msg = yield ctx.incoming.get()
                if msg.is_request:
                    ctx.send_response(msg, 64)

        self.sim.spawn(loop(), name=f"xrperf:echo{ctx.nic.host_id}")

    def _install_sink(self, ctx: "XrdmaContext") -> None:
        if getattr(ctx, "_xrperf_sink", False):
            return
        ctx._xrperf_sink = True

        def loop():
            while True:
                msg = yield ctx.incoming.get()
                if msg.is_request:
                    ctx.send_response(msg, 64)
                # ONEWAY messages are consumed by the act of delivery.

        self.sim.spawn(loop(), name=f"xrperf:sink{ctx.nic.host_id}")
