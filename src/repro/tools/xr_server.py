"""XR-Server: the standing diagnostic server (Sec. IV-A's fifth utility).

The counterpart XR-Ping and XR-Perf talk to when no application is
deployed yet: it answers echo requests, absorbs sink traffic, and serves
its own statistics on request — useful for qualifying a fabric before
rollout (the "20 potential issues found before deployment" workflow).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.config import XrdmaConfig
    from repro.xrdma.context import XrdmaContext

SERVER_PORT = 9970


class XrServer:
    """One diagnostic server instance on a host."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 service_port: int = SERVER_PORT,
                 config: Optional["XrdmaConfig"] = None):
        self.cluster = cluster
        self.host_id = host_id
        self.service_port = service_port
        self.ctx: "XrdmaContext" = cluster.xrdma_context(
            host_id, config=config, name=f"xrserver{host_id}")
        self.echoes = 0
        self.sunk_msgs = 0
        self.sunk_bytes = 0
        self.stat_requests = 0
        self.ctx.listen(service_port)
        cluster.sim.spawn(self._serve(), name=f"xrserver{host_id}:loop")

    def _serve(self):
        while True:
            msg = yield self.ctx.incoming.get()
            if not msg.is_request:
                self.sunk_msgs += 1
                self.sunk_bytes += msg.payload_size
                continue
            op = msg.payload.get("op") if isinstance(msg.payload, dict) \
                else "echo"
            if op == "stat":
                self.stat_requests += 1
                self.ctx.send_response(msg, 256, payload=self.snapshot())
            elif op == "sink":
                self.sunk_msgs += 1
                self.sunk_bytes += msg.payload_size
                self.ctx.send_response(msg, 64, payload={"ok": True})
            else:
                self.echoes += 1
                self.ctx.send_response(msg, msg.payload_size,
                                       payload=msg.payload)

    def snapshot(self) -> dict:
        snap = self.ctx.stat_snapshot()
        snap.update({
            "echoes": self.echoes,
            "sunk_msgs": self.sunk_msgs,
            "sunk_bytes": self.sunk_bytes,
        })
        return snap
