"""xr-lint CLI: run the project's static-analysis rules over source trees.

Usage::

    python -m repro.tools.xr_lint                 # src tests benchmarks examples
    python -m repro.tools.xr_lint src/repro/xrdma
    python -m repro.tools.xr_lint --format json src
    python -m repro.tools.xr_lint --format gh --json findings.json src
    python -m repro.tools.xr_lint --list-rules
    python -m repro.tools.xr_lint --select memcache-leak,qp-leak src

Exit status: 0 clean, 1 findings, 2 usage/parse errors (including
nonexistent paths) — the same convention the self-check test and the CI
job rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint import (LintRunner, all_rules, render_gh,
                                 render_json, render_text)

#: default trees, matching the tier-1 self-check gate
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

_RENDERERS = {"text": render_text, "json": render_json, "gh": render_gh}


def _split_csv(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.xr_lint",
        description="Project-specific static analysis: determinism, "
                    "resource pairing, sim hygiene, yield-point races.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json", "gh"),
                        default="text",
                        help="report format; 'gh' emits GitHub Actions "
                             "::error annotations (default: text)")
    parser.add_argument("--json", metavar="FILE", dest="json_file",
                        help="additionally write the JSON report to FILE "
                             "(CI artifact), whatever --format says")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run exclusively")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule names to skip")
    parser.add_argument("--check-suppressions", dest="check_suppressions",
                        action="store_true", default=True,
                        help="report stale `# xr-lint: disable=` comments "
                             "that suppress nothing (default: on)")
    parser.add_argument("--no-check-suppressions", dest="check_suppressions",
                        action="store_false",
                        help="skip the stale-suppression audit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def list_rules() -> str:
    lines = ["xr-lint rule catalogue "
             "(suppress: # xr-lint: disable=<name>):"]
    for cls in all_rules():
        lines.append(f"  {cls.code}  {cls.name:<26} {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        for raw in missing:
            print(f"xr-lint: error: {raw}: no such file or directory",
                  file=sys.stderr)
        return 2
    try:
        runner = LintRunner(select=_split_csv(args.select),
                            ignore=_split_csv(args.ignore),
                            check_suppressions=args.check_suppressions)
    except KeyError as exc:
        print(f"xr-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    findings = runner.run_paths(args.paths)
    if args.json_file:
        try:
            Path(args.json_file).write_text(
                render_json(findings, runner.errors) + "\n",
                encoding="utf-8")
        except OSError as exc:
            print(f"xr-lint: error: cannot write {args.json_file}: {exc}",
                  file=sys.stderr)
            return 2
    print(_RENDERERS[args.format](findings, runner.errors))
    if runner.errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
