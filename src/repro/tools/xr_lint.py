"""xr-lint CLI: run the project's static-analysis rules over source trees.

Usage::

    python -m repro.tools.xr_lint                 # src tests benchmarks examples
    python -m repro.tools.xr_lint src/repro/xrdma
    python -m repro.tools.xr_lint --format json src
    python -m repro.tools.xr_lint --list-rules
    python -m repro.tools.xr_lint --select memcache-leak,qp-leak src

Exit status: 0 clean, 1 findings, 2 usage/parse errors — the same
convention the self-check test and the CI job rely on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.lint import (LintRunner, all_rules, render_json,
                                 render_text)

#: default trees, matching the tier-1 self-check gate
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _split_csv(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.xr_lint",
        description="Project-specific static analysis: determinism, "
                    "resource pairing, sim hygiene.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run exclusively")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule names to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def list_rules() -> str:
    lines = ["xr-lint rule catalogue "
             "(suppress: # xr-lint: disable=<name>):"]
    for cls in all_rules():
        lines.append(f"  {cls.code}  {cls.name:<16} {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        runner = LintRunner(select=_split_csv(args.select),
                            ignore=_split_csv(args.ignore))
    except KeyError as exc:
        print(f"xr-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    findings = runner.run_paths(args.paths)
    render = render_json if args.format == "json" else render_text
    print(render(findings, runner.errors))
    if runner.errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
