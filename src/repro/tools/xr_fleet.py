"""XR-Fleet CLI: run, inspect, and aggregate experiment sweeps.

::

    python -m repro.tools.xr_fleet run --spec ablation-grid --jobs 4
    python -m repro.tools.xr_fleet run --spec all --quick --jobs 2 \\
        --out fleet-out --json
    python -m repro.tools.xr_fleet status --out fleet-out
    python -m repro.tools.xr_fleet aggregate --out fleet-out --json

Verbs:

* ``run`` — expand the chosen spec sets, execute them on the supervised
  pool, write ``runs.jsonl`` + ``aggregate.json`` + ``manifest.json``
  under ``--out`` (default ``fleet-out/``).  ``--shard K/N`` runs only
  this machine's stable share of the plan.  Exit 0 if every run ended
  ``ok``, 1 if any run failed/crashed/timed out, 130 on interrupt.
* ``status`` — progress + retry/failure accounting of a (possibly
  running or interrupted) sweep directory.
* ``aggregate`` — (re)fold ``runs.jsonl`` into ``aggregate.json`` and
  print the tables; with ``--json``, print the aggregate itself.

The aggregate is byte-identical for any ``--jobs`` value — see
DESIGN.md ("XR-Fleet") for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fleet.aggregate import aggregate_records, aggregate_tables
from repro.fleet.experiments import spec_names, specs_for
from repro.fleet.planner import plan, shard_filter, shard_histogram
from repro.fleet.pool import FleetPool
from repro.fleet.spec import ExperimentSpec, RunUnit
from repro.fleet.store import ResultStore

DEFAULT_OUT = "fleet-out"


def _parse_shard(value: str) -> Any:
    try:
        shard, _, total = value.partition("/")
        return int(shard), int(total)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--shard wants K/N (e.g. 0/4), got {value!r}")


def _rebuild_units(store: ResultStore) -> List[RunUnit]:
    """Re-expand the persisted plan so status/aggregate see planned-but-
    missing runs (cancelled sweeps) as well as recorded ones."""
    payload = store.load_plan()
    specs = [ExperimentSpec(
        name=entry["name"], scenario=entry["scenario"],
        grid=entry.get("grid", {}), seeds=entry.get("seeds", [0]),
        timeout_s=entry.get("timeout_s", 120.0),
        max_retries=entry.get("max_retries", 2),
        max_events=entry.get("max_events"),
        description=entry.get("description", ""),
    ) for entry in payload.get("specs", [])]
    units = plan(specs)
    wanted = set(payload.get("units", []))
    return [unit for unit in units if unit.run_id in wanted]


def _attempt_counts(records: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in records:
        run_id = record.get("run_id", "")
        counts[run_id] = counts.get(run_id, 0) + 1
    return counts


def _write_aggregate(store: ResultStore,
                     units: List[RunUnit]) -> Dict[str, Any]:
    records = store.load_records()
    aggregate = aggregate_records(units, store.terminal_records(),
                                  _attempt_counts(records))
    store.write_aggregate(aggregate)
    return aggregate


# ------------------------------------------------------------------- verbs
def cmd_run(args: argparse.Namespace) -> int:
    try:
        specs = specs_for(args.spec or ["all"], quick=args.quick)
    except KeyError as exc:
        print(f"xr-fleet: {exc.args[0]}", file=sys.stderr)
        return 2
    units = plan(specs)
    if args.shard is not None:
        shard, total = args.shard
        units = shard_filter(units, shard, total)
    if not units:
        print("xr-fleet: nothing to run (empty shard?)", file=sys.stderr)
        return 2
    store = ResultStore(Path(args.out))
    store.begin(specs, units)
    done = 0

    def progress(record: Dict[str, Any]) -> None:
        nonlocal done
        done += 1
        if not args.json:
            status = record["status"]
            mark = "." if status == "ok" else "!"
            print(f"  [{done:>4}] {mark} {record['run_id']:<56} {status}"
                  + (f" ({record['reason']})" if record["reason"] else ""))

    pool = FleetPool(jobs=args.jobs, backoff_s=args.backoff)
    if not args.json:
        print(f"xr-fleet: {len(units)} runs, {len(specs)} experiments, "
              f"jobs={args.jobs}")
    try:
        summary = pool.run(units, store)
    finally:
        # Even a crashed sweep leaves an aggregate over what finished.
        store.close()
        aggregate = _write_aggregate(store, units)
    manifest = {
        "jobs": args.jobs,
        "quick": args.quick,
        "shard": (f"{args.shard[0]}/{args.shard[1]}"
                  if args.shard else None),
        "specs": sorted(spec.name for spec in specs),
        "runs_planned": len(units),
        "summary": summary.as_dict(),
        "totals": aggregate["totals"],
    }
    store.write_manifest(manifest)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
    else:
        print(aggregate_tables(aggregate))
        print(f"xr-fleet: wrote {store.aggregate_path} "
              f"(wall {summary.wall_s:.1f}s, retries {summary.retries}, "
              f"respawns {summary.workers_respawned})")
    if summary.interrupted:
        return 130
    totals = aggregate["totals"]
    clean = totals["ok"] == totals["runs"]
    return 0 if clean else 1


def cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.out))
    try:
        units = _rebuild_units(store)
    except (OSError, ValueError) as exc:
        print(f"xr-fleet: {args.out}: not a sweep directory ({exc})",
              file=sys.stderr)
        return 2
    records = store.load_records()
    terminal = store.terminal_records()
    attempts = _attempt_counts(records)
    by_status: Dict[str, int] = {}
    for record in terminal.values():
        status = record.get("status", "?")
        by_status[status] = by_status.get(status, 0) + 1
    pending = [unit.run_id for unit in units
               if unit.run_id not in terminal]
    payload = {
        "planned": len(units),
        "terminal": len(terminal),
        "pending": len(pending),
        "attempts": sum(attempts.values()),
        "retried_runs": sum(1 for n in attempts.values() if n > 1),
        "by_status": dict(sorted(by_status.items())),
        "shards": {str(n): shard_histogram(units, n) for n in (2, 4)},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"xr-fleet status: {args.out}")
    print(f"  planned {payload['planned']}, terminal {payload['terminal']}, "
          f"pending {payload['pending']}")
    print(f"  attempts {payload['attempts']} "
          f"(runs retried: {payload['retried_runs']})")
    for status, count in payload["by_status"].items():
        print(f"    {status:<10} {count}")
    if pending and len(pending) <= 10:
        for run_id in pending:
            print(f"    pending: {run_id}")
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.out))
    try:
        units = _rebuild_units(store)
    except (OSError, ValueError) as exc:
        print(f"xr-fleet: {args.out}: not a sweep directory ({exc})",
              file=sys.stderr)
        return 2
    aggregate = _write_aggregate(store, units)
    if args.json:
        sys.stdout.write(json.dumps(aggregate, indent=2, sort_keys=True)
                         + "\n")
    else:
        print(aggregate_tables(aggregate))
        print(f"xr-fleet: wrote {store.aggregate_path}")
    return 0


# -------------------------------------------------------------------- main
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xr_fleet",
        description="X-RDMA fleet: parallel experiment orchestration")
    sub = parser.add_subparsers(dest="verb", required=True)

    run_p = sub.add_parser("run", help="execute a sweep")
    run_p.add_argument("--spec", action="append", metavar="NAME",
                       help=f"spec set(s) to run: {', '.join(spec_names())} "
                            f"or 'all' (default)")
    run_p.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="worker processes (default 2)")
    run_p.add_argument("--quick", action="store_true",
                       help="trimmed grids / single seed (CI smoke scale)")
    run_p.add_argument("--out", default=DEFAULT_OUT, metavar="DIR",
                       help=f"sweep directory (default {DEFAULT_OUT}/)")
    run_p.add_argument("--shard", type=_parse_shard, metavar="K/N",
                       help="run only shard K of N (stable partition)")
    run_p.add_argument("--backoff", type=float, default=0.25,
                       metavar="SECONDS",
                       help="base retry backoff (default 0.25)")
    run_p.add_argument("--json", action="store_true",
                       help="print the manifest as JSON instead of tables")
    run_p.set_defaults(fn=cmd_run)

    status_p = sub.add_parser("status", help="inspect a sweep directory")
    status_p.add_argument("--out", default=DEFAULT_OUT, metavar="DIR")
    status_p.add_argument("--json", action="store_true")
    status_p.set_defaults(fn=cmd_status)

    agg_p = sub.add_parser("aggregate",
                           help="refold runs.jsonl into aggregate.json")
    agg_p.add_argument("--out", default=DEFAULT_OUT, metavar="DIR")
    agg_p.add_argument("--json", action="store_true",
                       help="print the aggregate as JSON")
    agg_p.set_defaults(fn=cmd_aggregate)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":
    sys.exit(main())
