"""XR-Stat: per-connection statistics, netstat-style (Sec. VI-B).

Provides the raw data for troubleshooting and performance analysis: one row
per channel plus context-level resource numbers and the fabric-wide crucial
indexes (PFC status, queue-drop counters, buffer utilization).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.context import XrdmaContext


class XrStat:
    """Snapshot-based reporting over any number of contexts."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.contexts: List["XrdmaContext"] = []

    def attach(self, ctx: "XrdmaContext") -> None:
        self.contexts.append(ctx)

    # ------------------------------------------------------------------ rows
    def channel_rows(self, ctx: "XrdmaContext") -> List[Dict[str, Any]]:
        rows = []
        for channel in ctx.channels.values():
            rows.append({
                "channel": channel.channel_id,
                "local": ctx.nic.host_id,
                "remote": channel.remote_host,
                "state": channel.state.name,
                "in_flight": channel.window.in_flight,
                "window": channel.window.depth,
                "tx_msgs": channel.stats["tx_msgs"],
                "rx_msgs": channel.stats["rx_msgs"],
                "tx_bytes": channel.stats["tx_bytes"],
                "rx_bytes": channel.stats["rx_bytes"],
                "queued": len(channel.pending_send),
                "wr_queued": channel.flow.queued,
                "keepalives": channel.stats["keepalives_sent"],
                "acks": channel.stats["acks_sent"],
                "nops": channel.stats["nops_sent"],
            })
        return rows

    def context_row(self, ctx: "XrdmaContext") -> Dict[str, Any]:
        return ctx.stat_snapshot()

    def crucial_indexes(self) -> Dict[str, Any]:
        """Fabric health: the numbers the paper says must be watched."""
        stats = self.cluster.stats
        buffer_utilization = {}
        for tor in self.cluster.topology.tors:
            total = sum(port.queued_bytes for port in tor.ports)
            buffer_utilization[tor.name] = total
        return {
            "pfc_pause_frames": stats.pause_frames,
            "pfc_resume_frames": stats.resume_frames,
            "queue_drops": stats.drops,
            "ecn_marks": stats.ecn_marks,
            "cnps": stats.cnps_sent,
            "rnr_naks": stats.rnr_naks,
            "retransmissions": stats.retransmissions,
            "buffer_utilization_bytes": buffer_utilization,
        }

    # ---------------------------------------------------------------- report
    def format(self) -> str:
        """Human-readable report across all attached contexts."""
        lines = []
        header = (f"{'CH':>4} {'L':>3} {'R':>3} {'STATE':<7} "
                  f"{'INFL':>5} {'TXM':>7} {'RXM':>7} "
                  f"{'TXB':>11} {'RXB':>11} {'QUE':>4}")
        for ctx in self.contexts:
            lines.append(f"== {ctx.name} (host {ctx.nic.host_id}) ==")
            lines.append(header)
            for row in self.channel_rows(ctx):
                lines.append(
                    f"{row['channel']:>4} {row['local']:>3} {row['remote']:>3} "
                    f"{row['state']:<7} {row['in_flight']:>5} "
                    f"{row['tx_msgs']:>7} {row['rx_msgs']:>7} "
                    f"{row['tx_bytes']:>11} {row['rx_bytes']:>11} "
                    f"{row['queued']:>4}")
            snapshot = self.context_row(ctx)
            lines.append(
                f"  mem occupied={snapshot['mem_occupied']} "
                f"in_use={snapshot['mem_in_use']} mrs={snapshot['mr_count']} "
                f"qp_cache={snapshot['qp_cache_size']}")
        crucial = self.crucial_indexes()
        lines.append(
            f"net: pause={crucial['pfc_pause_frames']} "
            f"drops={crucial['queue_drops']} cnp={crucial['cnps']} "
            f"rnr={crucial['rnr_naks']} retx={crucial['retransmissions']}")
        return "\n".join(lines)
