"""XR-Trace CLI: analyze a span-trace artifact (Sec. VI-A / VII-D).

::

    python -m repro.tools.xr_trace fleet-out/traces.jsonl
    python -m repro.tools.xr_trace traces.jsonl --slowest 10
    python -m repro.tools.xr_trace traces.jsonl --json

Reads the JSONL written by :func:`repro.analysis.tracing.export_jsonl`
or a fleet sweep's ``traces.jsonl`` (same record lines, stamped with
``run_id``; no meta line) and reports:

* **summary** — record counts, incomplete traces, negative-network clamp
  events, suppressed (retransmit) marks;
* **per-segment breakdown** — p50/p90/p99/max and share of total traced
  time for every span stage;
* **slowest-N traces** — full span decomposition of each, worst first;
* **critical-path attribution** — which stage dominates each trace, the
  histogram that pointed Sec. VII-D's jitter hunt at the host allocator
  rather than the fabric.

All output is deterministically ordered (ties broken by stage name /
trace id), so ``--json`` output under a fixed seed is golden-testable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.stats import nearest_rank

__all__ = ["main", "analyze", "load_trace_file"]


def _percentile(ordered: List[int], p: float) -> int:
    """Nearest-rank percentile of an already-sorted list (shared impl)."""
    if not ordered:
        return 0
    return int(nearest_rank(ordered, p / 100))


def load_trace_file(path: str) -> Tuple[Dict[str, Any],
                                        List[Dict[str, Any]]]:
    """Parse one trace artifact into (meta, records).

    Tolerates the meta line being absent (fleet ``traces.jsonl``) and a
    torn tail line (a killed run's partial write).  Records seen twice
    for one trace (sender and receiver view in a hand-merged file) are
    deduplicated, sender view preferred.
    """
    meta: Dict[str, Any] = {}
    by_key: Dict[Tuple[str, int], Dict[str, Any]] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                break           # torn tail — keep what parsed
            if not isinstance(payload, dict):
                continue
            if "meta" in payload and "trace_id" not in payload:
                meta.update(payload["meta"])
                continue
            if "trace_id" not in payload:
                continue
            key = (str(payload.get("run_id", "")),
                   int(payload["trace_id"]))
            existing = by_key.get(key)
            if existing is None or (existing.get("view") != "sender"
                                    and payload.get("view") == "sender"):
                by_key[key] = payload
    records = [by_key[key] for key in sorted(by_key)]
    return meta, records


def analyze(meta: Dict[str, Any], records: List[Dict[str, Any]],
            slowest: int = 5) -> Dict[str, Any]:
    """Fold trace records into the report payload (the ``--json`` output)."""
    completed = [record for record in records if record.get("complete")]
    spans_by_stage: Dict[str, List[int]] = {}
    dominated_by: Dict[str, int] = {}
    grand_total = 0
    for record in completed:
        worst_stage, worst_ns = "", -1
        for stage, duration in record.get("spans", []):
            spans_by_stage.setdefault(stage, []).append(int(duration))
            grand_total += int(duration)
            # Ties go to the later stage, matching TraceRecord.dominant_span
            # (max with (duration, stage) key over the span list).
            if (duration, stage) > (worst_ns, worst_stage):
                worst_stage, worst_ns = stage, duration
        if worst_stage:
            dominated_by[worst_stage] = dominated_by.get(worst_stage, 0) + 1

    segments: Dict[str, Dict[str, Any]] = {}
    for stage in sorted(spans_by_stage):
        values = sorted(spans_by_stage[stage])
        total = sum(values)
        segments[stage] = {
            "count": len(values),
            "p50_ns": _percentile(values, 50),
            "p90_ns": _percentile(values, 90),
            "p99_ns": _percentile(values, 99),
            "max_ns": values[-1],
            "total_ns": total,
            "share": round(total / grand_total, 4) if grand_total else 0.0,
        }

    ranked = sorted(
        completed,
        key=lambda record: (-int(record.get("total_ns", 0)),
                            int(record["trace_id"]),
                            str(record.get("run_id", ""))))
    worst = [{
        "trace_id": record["trace_id"],
        "run_id": record.get("run_id", ""),
        "src_host": record.get("src_host"),
        "dst_host": record.get("dst_host"),
        "kind": record.get("kind", ""),
        "payload_size": record.get("payload_size", 0),
        "total_ns": record.get("total_ns", 0),
        "network_ns": record.get("network_ns", 0),
        "residual_ns": record.get("residual_ns", 0),
        "spans": record.get("spans", []),
        "dominant": max(record.get("spans", []) or [["", 0]],
                        key=lambda item: (item[1], item[0]))[0],
    } for record in ranked[:slowest]]

    residual_violations = sum(
        1 for record in completed if record.get("residual_ns", 0) != 0)
    setup_traces = sum(1 for record in records
                       if record.get("view") == "setup")
    return {
        "summary": {
            "records": len(records),
            "completed": len(completed),
            "incomplete": len(records) - len(completed),
            "setup_traces": setup_traces,
            "residual_violations": residual_violations,
            "negative_network_clamped": int(
                meta.get("negative_network_clamped",
                         sum(1 for record in records
                             if record.get("network_ns", 0) < 0))),
            "suppressed_marks": int(meta.get("suppressed_marks", 0)),
        },
        "segments": segments,
        "slowest": worst,
        "critical_path": {stage: dominated_by[stage]
                          for stage in sorted(dominated_by)},
    }


# ---------------------------------------------------------------- rendering
def _fmt_ns(value: Any) -> str:
    return f"{value / 1000:.1f}us" if value >= 10_000 else f"{value}ns"


def _render(report: Dict[str, Any]) -> str:
    lines: List[str] = []
    summary = report["summary"]
    lines.append("xr-trace summary")
    lines.append(f"  traces      {summary['records']} "
                 f"({summary['completed']} complete, "
                 f"{summary['incomplete']} incomplete, "
                 f"{summary['setup_traces']} setup)")
    lines.append(f"  residual!=0 {summary['residual_violations']}")
    lines.append(f"  neg-network clamped {summary['negative_network_clamped']}"
                 f"   suppressed marks {summary['suppressed_marks']}")
    segments = report["segments"]
    if segments:
        lines.append("")
        lines.append(f"  {'segment':<18} {'count':>6} {'p50':>9} {'p90':>9} "
                     f"{'p99':>9} {'max':>9} {'share':>7}")
        for stage, row in segments.items():
            lines.append(
                f"  {stage:<18} {row['count']:>6} "
                f"{_fmt_ns(row['p50_ns']):>9} {_fmt_ns(row['p90_ns']):>9} "
                f"{_fmt_ns(row['p99_ns']):>9} {_fmt_ns(row['max_ns']):>9} "
                f"{row['share'] * 100:>6.1f}%")
    critical = report["critical_path"]
    if critical:
        lines.append("")
        lines.append("  critical-path attribution (dominant segment per trace)")
        peak = max(critical.values())
        for stage in sorted(critical, key=lambda s: (-critical[s], s)):
            count = critical[stage]
            bar = "#" * max(1, round(count * 24 / peak))
            lines.append(f"    {stage:<18} {count:>5}  {bar}")
    worst = report["slowest"]
    if worst:
        lines.append("")
        lines.append(f"  slowest {len(worst)} traces")
        for entry in worst:
            where = (f" [{entry['run_id']}]" if entry["run_id"] else "")
            lines.append(
                f"    #{entry['trace_id']}{where} {entry['kind']} "
                f"{entry['payload_size']}B "
                f"h{entry['src_host']}->h{entry['dst_host']} "
                f"total {_fmt_ns(entry['total_ns'])} "
                f"(dominant: {entry['dominant']})")
            breakdown = ", ".join(f"{stage} {_fmt_ns(duration)}"
                                  for stage, duration in entry["spans"])
            lines.append(f"      {breakdown}")
    return "\n".join(lines)


# -------------------------------------------------------------------- main
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xr_trace",
        description="XR-Trace: span decomposition / critical-path analysis")
    parser.add_argument("trace_file",
                        help="JSONL trace artifact (export_jsonl output or "
                             "a fleet sweep's traces.jsonl)")
    parser.add_argument("--slowest", type=int, default=5, metavar="N",
                        help="how many worst traces to detail (default 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    args = parser.parse_args(argv)
    try:
        meta, records = load_trace_file(args.trace_file)
    except OSError as exc:
        print(f"xr-trace: {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    report = analyze(meta, records, slowest=max(0, args.slowest))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
