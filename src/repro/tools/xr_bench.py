"""XR-Bench: the engine performance harness (events/sec trajectory).

Every benchmark in ``benchmarks/`` is an explicit scale-down because the
pure-Python event loop is the bottleneck; this tool is how we measure the
loop itself so optimizations have numbers and future PRs have a trajectory
to regress against.  Four microbenches cover the distinct hot paths:

* ``timer-churn``        — bare engine: Timeout allocation, heap ops,
                           process resume.  No fabric, no middleware.
* ``pingpong``           — closed-loop RPC over one channel: the context
                           poll loop, CQ delivery, seq-ack bookkeeping.
* ``incast-segment-storm`` — N→1 incast of large (rendezvous) messages:
                           segment-level queue dynamics, PFC/ECN hooks,
                           EgressPort transmit — the Fig. 10 hot path.
* ``memcache-churn``     — MemCache alloc/free under fragmentation: the
                           free-list data structure.

Each bench reports fired simulation events per wall-clock second
(``sim._sequence`` counts every scheduled event; a drained run fires all
of them) plus bench-specific throughput.  Results are deterministic in
*event counts* (fixed seeds) and machine-dependent only in wall time.

CLI::

    python -m repro.tools.xr_bench                 # full suite
    python -m repro.tools.xr_bench --quick         # CI smoke scale
    python -m repro.tools.xr_bench --json out.json # persist results
    python -m repro.tools.xr_bench --quick --baseline BENCH_PR3.json
                                                   # fail on >25% regression

``--baseline`` accepts either a file written by ``--json`` or the
committed ``BENCH_PR3.json`` trajectory file (it picks the section
matching the current mode).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster import build_cluster
from repro.sim.engine import Simulator
from repro.tools.xr_perf import XrPerf
from repro.xrdma.memcache import MemCache


def _wall() -> float:
    """Host wall clock for measuring *our own* speed.

    This is the one place wall time is legitimate: nothing simulated ever
    sees it, it only divides event counts.
    """
    return time.perf_counter()  # xr-lint: disable=wall-clock


_CAL_ITERS = 500_000


def calibration_score(repeats: int = 3) -> float:
    """Machine-speed proxy: iterations/sec of a fixed pure-Python loop.

    Absolute events/sec numbers are meaningless across machines (or even
    across minutes on a shared VM), so every results file carries this
    score and baseline comparisons scale by the ratio of scores.  Best-of
    is used for the same reason as in :func:`run_suite`: contention only
    ever lowers the score.
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = _wall()
        acc = 0
        for i in range(_CAL_ITERS):
            acc += i & 7
        elapsed = _wall() - t0
        if elapsed > 0:
            best = max(best, _CAL_ITERS / elapsed)
    return best


@dataclass
class BenchResult:
    """One microbench outcome: simulated work per host second."""

    name: str
    events: int                  #: simulation events fired
    wall_s: float                #: host seconds for the measured region
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec),
        }
        payload.update(self.extra)
        return payload

    def summary(self) -> str:
        extras = " ".join(f"{key}={value}" for key, value in
                          sorted(self.extra.items()))
        return (f"{self.name:24s} {self.events:>9d} events "
                f"{self.wall_s:8.3f}s  {self.events_per_sec:>10,.0f} ev/s"
                + (f"  [{extras}]" if extras else ""))


# --------------------------------------------------------------- benches
def bench_timer_churn(quick: bool) -> BenchResult:
    """Bare engine: many processes churning timeouts, nothing else."""
    n_procs = 50 if quick else 200
    n_rounds = 60 if quick else 300
    sim = Simulator()

    def churner(index: int):
        # Deterministic pseudo-random delays without an RNG dependency.
        for round_no in range(n_rounds):
            yield sim.timeout((index * 7919 + round_no * 104729) % 997 + 1)

    for index in range(n_procs):
        sim.spawn(churner(index))
    t0 = _wall()
    sim.run()
    wall = _wall() - t0
    return BenchResult("timer-churn", sim._sequence, wall,
                       {"procs": n_procs, "rounds": n_rounds})


def bench_pingpong(quick: bool) -> BenchResult:
    """Closed-loop RPC latency: context poll loop + CQ + window."""
    iterations = 80 if quick else 400
    cluster = build_cluster(2, seed=3)
    perf = XrPerf(cluster)
    t0 = _wall()
    result = perf.run_latency(0, 1, size=256, iterations=iterations)
    wall = _wall() - t0
    return BenchResult("pingpong", cluster.sim._sequence, wall,
                       {"iterations": iterations,
                        "mean_latency_us": round(result.mean_latency_us, 2)})


def bench_incast_storm(quick: bool) -> BenchResult:
    """N→1 incast of rendezvous-sized messages: the segment hot path.

    Dense on purpose (short send gaps, deep port queues): a storm keeps
    every egress port busy and the event population high, which is
    exactly the regime where heap behaviour and per-segment overhead
    dominate — the Fig. 10 congestion scenario, not a trickle.
    """
    sources = list(range(3 if quick else 7))
    sink = sources[-1] + 1
    messages = 12 if quick else 48
    cluster = build_cluster(sink + 1, seed=7)
    perf = XrPerf(cluster)
    t0 = _wall()
    result = perf.run_incast(sources, sink, size=64 * 1024,
                             messages_per_source=messages,
                             mean_gap_ns=5_000)
    wall = _wall() - t0
    return BenchResult("incast-segment-storm", cluster.sim._sequence, wall,
                       {"sources": len(sources), "messages": result.messages,
                        "bytes_moved": result.bytes_moved})


def bench_memcache_churn(quick: bool) -> BenchResult:
    """MemCache alloc/free at production-scale fragmentation.

    Thousands of live buffers in mixed sizes — the regime the paper's
    middleware actually runs in (one cache serving every channel of a
    context) and where the free-list data structure is the bottleneck:
    small buffers shred the arenas into holes that every large
    allocation must skip past.
    """
    n_ops = 6_000 if quick else 30_000
    live_target = 600 if quick else 2_500
    cluster = build_cluster(1, seed=5)
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd)
    sizes = [64, 128, 256, 512, 64 * 1024]
    allocs = 0

    def churn():
        nonlocal allocs
        live: List[Any] = []
        state = 12345
        for _ in range(n_ops):
            state = (state * 1103515245 + 12721) % (1 << 31)  # LCG, no RNG dep
            if live and (len(live) > live_target or state % 100 < 40):
                cache.free(live.pop(state % len(live)))
            else:
                buffer = yield from cache.alloc(sizes[state % len(sizes)])
                allocs += 1
                live.append(buffer)
        for buffer in live:
            cache.free(buffer)

    t0 = _wall()
    proc = cluster.sim.spawn(churn())
    cluster.sim.run_until_event(proc)
    wall = _wall() - t0
    return BenchResult("memcache-churn", cluster.sim._sequence, wall,
                       {"allocs": allocs,
                        "ops": n_ops,
                        "ops_per_sec": round(n_ops / wall) if wall else 0,
                        "arenas_peak": cache.grow_count})


BENCHES: Dict[str, Callable[[bool], BenchResult]] = {
    "timer-churn": bench_timer_churn,
    "pingpong": bench_pingpong,
    "incast-segment-storm": bench_incast_storm,
    "memcache-churn": bench_memcache_churn,
}


# ------------------------------------------------------------- harness
def run_suite(quick: bool = False,
              only: Optional[List[str]] = None,
              repeats: int = 1) -> Dict[str, BenchResult]:
    """Run the selected microbenches; keeps each bench's best of ``repeats``
    (wall-time noise only shrinks events/sec, never inflates it)."""
    names = only or list(BENCHES)
    results: Dict[str, BenchResult] = {}
    for name in names:
        if name not in BENCHES:
            raise SystemExit(f"unknown bench {name!r}; "
                             f"choose from {', '.join(BENCHES)}")
        best: Optional[BenchResult] = None
        for _ in range(max(1, repeats)):
            result = BENCHES[name](quick)
            if best is None or result.events_per_sec > best.events_per_sec:
                best = result
        assert best is not None
        results[name] = best
        print(best.summary())
    return results


class BaselineError(Exception):
    """A ``--baseline`` file that cannot be compared against.

    Raised *before* the suite runs: a CI job pointing at a renamed
    trajectory file or the wrong mode should fail in milliseconds with a
    usage error (exit 2), not burn minutes benchmarking and then silently
    skip the one check it existed for.
    """


def _baseline_section(payload: Dict[str, Any],
                      mode: str) -> Optional[Dict[str, Any]]:
    """Find comparable numbers in a results or trajectory file."""
    if payload.get("mode") == mode and "benches" in payload:
        return payload["benches"]
    section = payload.get(mode)
    if isinstance(section, dict):
        after = section.get("after", section)
        if isinstance(after, dict):
            return after
    return None


def load_baseline(baseline_path: str,
                  mode: str) -> Dict[str, Any]:
    """Read and validate a baseline file for ``mode``.

    Returns the full payload (the comparison re-derives the section);
    raises :class:`BaselineError` with a one-line reason if the file is
    missing, unparsable, or has no section for this mode.
    """
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BaselineError(
            f"cannot read baseline {baseline_path}: "
            f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"baseline {baseline_path} is not valid JSON "
            f"(line {exc.lineno}: {exc.msg})") from exc
    if not isinstance(payload, dict) \
            or _baseline_section(payload, mode) is None:
        have = sorted(payload) if isinstance(payload, dict) else type(
            payload).__name__
        raise BaselineError(
            f"baseline {baseline_path} has no {mode!r} section "
            f"(top-level keys: {have}); run the matching mode or point "
            f"--baseline at a file written by --json")
    return payload


def compare_to_baseline(results: Dict[str, BenchResult],
                        payload: Dict[str, Any], mode: str,
                        max_regression: float) -> int:
    """Return the number of benches regressing more than the budget.

    If the baseline file carries a ``calibration`` score, the reference
    numbers are rescaled by this machine's score first — otherwise a
    faster or slower runner would fail (or mask) every comparison.
    """
    baseline = _baseline_section(payload, mode)
    assert baseline is not None     # load_baseline validated this
    scale = 1.0
    cal_base = payload.get("calibration")
    if cal_base:
        cal_now = calibration_score()
        scale = cal_now / cal_base
        print(f"xr-bench: calibration {cal_now:,.0f}/s vs baseline "
              f"{cal_base:,.0f}/s — scaling references by {scale:.2f}x")
    failures = 0
    for name, result in results.items():
        reference = baseline.get(name, {}).get("events_per_sec")
        if not reference:
            continue
        reference *= scale
        ratio = result.events_per_sec / reference
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSION"
            failures += 1
        print(f"  {name:24s} {result.events_per_sec:>10,.0f} ev/s "
              f"vs baseline {reference:>10,.0f}  ({ratio:5.2f}x) {verdict}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xr_bench", description="X-RDMA engine microbenchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (seconds, not minutes)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help=f"run one bench ({', '.join(BENCHES)})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per bench; best events/sec kept")
    parser.add_argument("--json", metavar="PATH",
                        help="write results to PATH as JSON")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare against a results/trajectory file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed events/sec drop vs baseline "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    baseline_payload: Optional[Dict[str, Any]] = None
    if args.baseline:
        # Validate up front: a bad baseline is a usage error, not a
        # post-suite surprise.
        try:
            baseline_payload = load_baseline(args.baseline, mode)
        except BaselineError as exc:
            print(f"xr-bench: {exc}", file=sys.stderr)
            return 2

    print(f"xr-bench [{mode}]")
    results = run_suite(quick=args.quick, only=args.only,
                        repeats=args.repeats)

    if args.json:
        payload = {
            "mode": mode,
            "calibration": round(calibration_score()),
            "benches": {name: result.as_dict()
                        for name, result in results.items()},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"xr-bench: wrote {args.json}")

    if baseline_payload is not None:
        failures = compare_to_baseline(results, baseline_payload, mode,
                                       args.max_regression)
        if failures:
            print(f"xr-bench: {failures} bench(es) regressed more than "
                  f"{args.max_regression:.0%}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
