"""XR-SLO CLI: render per-tenant windowed SLO tables from a serving sweep.

::

    python -m repro.tools.xr_slo fleet-out/
    python -m repro.tools.xr_slo fleet-out/ --windows <run_id>
    python -m repro.tools.xr_slo fleet-out/ --markdown
    python -m repro.tools.xr_slo fleet-out/windows.jsonl --json

Reads the ``windows.jsonl`` a ``--spec serving`` sweep leaves next to
``aggregate.json`` (or the file itself) and reports, per run and tenant:
stable-window counts, offered vs achieved rates, the worst stable-window
p99 and the SLO attainment fraction.  ``--windows`` details one run's
full per-window table; ``--markdown`` emits the summary as a GitHub
table (what EXPERIMENTS.md embeds).

Only the latest attempt of each run contributes (retried runs re-emit
their window rows).  All output is deterministically ordered by
``(run_id, tenant, window)``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["main", "load_window_rows", "tenant_tables", "summarize"]

WINDOW_COLUMNS = ("window", "start_ms", "stable", "offered", "completed",
                  "offered_rps", "achieved_rps", "p50_us", "p99_us",
                  "max_us", "slo_ok")


def load_window_rows(path: str) -> List[Dict[str, Any]]:
    """Parse a windows.jsonl (torn-tail tolerant, like every store read)."""
    rows: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                break           # torn tail — keep what parsed
            if isinstance(payload, dict) and "window" in payload:
                rows.append(payload)
    return rows


def tenant_tables(rows: List[Dict[str, Any]]
                  ) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
    """Group rows by ``(run_id, tenant)``, latest attempt only."""
    latest: Dict[Tuple[str, str], int] = {}
    for row in rows:
        key = (str(row.get("run_id", "")), str(row.get("tenant", "")))
        attempt = int(row.get("attempt", 0))
        if attempt > latest.get(key, -1):
            latest[key] = attempt
    tables: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for row in rows:
        key = (str(row.get("run_id", "")), str(row.get("tenant", "")))
        if int(row.get("attempt", 0)) != latest[key]:
            continue
        tables.setdefault(key, []).append(row)
    for table in tables.values():
        table.sort(key=lambda row: int(row["window"]))
    return tables


def summarize(table: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One run+tenant's verdict line from its window rows.

    Judged windows are the stable ones that saw traffic; idle stable
    windows are vacuously fine and excluded from attainment (matching
    :meth:`repro.serving.windows.WindowedRecorder.summary`).
    """
    stable = [row for row in table if row.get("stable")]
    judged = [row for row in stable
              if row.get("offered", 0) or row.get("completed", 0)]
    ok = sum(1 for row in judged if row.get("slo_ok"))
    return {
        "windows": len(table),
        "windows_stable": len(stable),
        "offered": sum(int(row.get("offered", 0)) for row in stable),
        "completed": sum(int(row.get("completed", 0)) for row in stable),
        "offered_rps": (max(float(row.get("offered_rps", 0.0))
                            for row in stable) if stable else 0.0),
        "achieved_rps": (max(float(row.get("achieved_rps", 0.0))
                             for row in stable) if stable else 0.0),
        "worst_p99_us": (max(float(row.get("p99_us", 0.0))
                             for row in judged) if judged else 0.0),
        "slo_attainment": round(ok / len(judged), 4) if judged else 0.0,
        "slo_ok": int(bool(judged) and ok == len(judged)),
    }


# ---------------------------------------------------------------- rendering
def _summary_rows(tables: Dict[Tuple[str, str], List[Dict[str, Any]]]
                  ) -> List[Tuple[str, str, Dict[str, Any]]]:
    return [(run_id, tenant, summarize(tables[(run_id, tenant)]))
            for run_id, tenant in sorted(tables)]


def _render_text(tables: Dict[Tuple[str, str], List[Dict[str, Any]]]) -> str:
    lines = ["xr-slo summary (stable windows)"]
    lines.append(f"  {'run':<44} {'tenant':<8} {'win':>5} {'offered':>8} "
                 f"{'achieved':>9} {'worst p99':>10} {'attain':>7} {'ok':>3}")
    for run_id, tenant, summary in _summary_rows(tables):
        lines.append(
            f"  {run_id:<44} {tenant:<8} "
            f"{summary['windows_stable']:>5} "
            f"{summary['offered_rps']:>8.0f} "
            f"{summary['achieved_rps']:>9.0f} "
            f"{summary['worst_p99_us']:>8.1f}us "
            f"{summary['slo_attainment'] * 100:>6.1f}% "
            f"{'y' if summary['slo_ok'] else 'n':>3}")
    return "\n".join(lines)


def _render_markdown(tables: Dict[Tuple[str, str],
                                  List[Dict[str, Any]]]) -> str:
    lines = ["| run | tenant | stable windows | offered rps | achieved rps "
             "| worst p99 (us) | SLO attainment | SLO |",
             "|---|---|---:|---:|---:|---:|---:|:---:|"]
    for run_id, tenant, summary in _summary_rows(tables):
        lines.append(
            f"| `{run_id}` | {tenant} | {summary['windows_stable']} "
            f"| {summary['offered_rps']:.0f} "
            f"| {summary['achieved_rps']:.0f} "
            f"| {summary['worst_p99_us']:.1f} "
            f"| {summary['slo_attainment'] * 100:.1f}% "
            f"| {'pass' if summary['slo_ok'] else 'FAIL'} |")
    return "\n".join(lines)


def _render_windows(tables: Dict[Tuple[str, str], List[Dict[str, Any]]],
                    run_id: str) -> str:
    selected = {key: table for key, table in tables.items()
                if key[0] == run_id}
    if not selected:
        return f"xr-slo: no window rows for run {run_id!r}"
    lines: List[str] = []
    for key in sorted(selected):
        _, tenant = key
        lines.append(f"run {run_id} tenant {tenant}")
        lines.append("  " + " ".join(f"{col:>12}" for col in WINDOW_COLUMNS))
        for row in selected[key]:
            lines.append("  " + " ".join(
                f"{row.get(col, ''):>12}" for col in WINDOW_COLUMNS))
        lines.append("")
    return "\n".join(lines).rstrip()


# -------------------------------------------------------------------- main
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xr_slo",
        description="XR-SLO: per-tenant windowed SLO tables from a "
                    "serving sweep")
    parser.add_argument("path",
                        help="sweep directory (containing windows.jsonl) "
                             "or a windows.jsonl file")
    parser.add_argument("--windows", metavar="RUN_ID",
                        help="print the full per-window table for one run")
    parser.add_argument("--markdown", action="store_true",
                        help="emit the summary as a GitHub-style table")
    parser.add_argument("--json", action="store_true",
                        help="emit summaries (and tables) as JSON")
    args = parser.parse_args(argv)

    path = Path(args.path)
    if path.is_dir():
        path = path / "windows.jsonl"
    try:
        rows = load_window_rows(str(path))
    except OSError as exc:
        print(f"xr-slo: {path}: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print(f"xr-slo: {path}: no window rows (not a serving sweep?)",
              file=sys.stderr)
        return 1
    tables = tenant_tables(rows)
    if args.json:
        payload = {
            "summaries": [
                {"run_id": run_id, "tenant": tenant, **summary}
                for run_id, tenant, summary in _summary_rows(tables)],
        }
        if args.windows:
            payload["windows"] = [
                row for key in sorted(tables) if key[0] == args.windows
                for row in tables[key]]
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.windows:
        print(_render_windows(tables, args.windows))
    elif args.markdown:
        print(_render_markdown(tables))
    else:
        print(_render_text(tables))
    return 0


if __name__ == "__main__":
    sys.exit(main())
