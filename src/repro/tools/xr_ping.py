"""XR-Ping: RDMA-native full-mesh ping (Sec. VI-B).

The original ``ping`` exercises the kernel stack, not the RDMA path; rping
is "too simple and buggy".  XR-Ping runs real X-RDMA request/response
probes between every host pair and aggregates a connection matrix at the
centralized monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.timeunits import MILLIS, SECONDS
from repro.verbs.cm import ConnectError
from repro.xrdma.channel import ChannelBroken

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.context import XrdmaContext

#: service port XR-Ping claims on every participating context
PING_PORT = 9990


class XrPing:
    """Full-mesh connectivity prober."""

    def __init__(self, cluster: "Cluster",
                 contexts: List["XrdmaContext"],
                 probe_timeout_ns: int = 50 * MILLIS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.contexts = {ctx.nic.host_id: ctx for ctx in contexts}
        self.probe_timeout_ns = probe_timeout_ns
        #: (src, dst) -> rtt_ns, or None for unreachable
        self.matrix: Dict[Tuple[int, int], Optional[int]] = {}
        for ctx in contexts:
            if PING_PORT not in ctx.cm.listeners:
                ctx.listen(PING_PORT)
            self.sim.spawn(self._responder(ctx),
                           name=f"xrping:srv{ctx.nic.host_id}")

    def _responder(self, ctx: "XrdmaContext"):
        """Echo server: answer every ping request immediately."""
        while True:
            msg = yield ctx.incoming.get()
            if msg.is_request and msg.payload == "xr-ping":
                ctx.send_response(msg, 64, payload="xr-pong")
            else:
                # Not ours: push back for the application.
                ctx.deliver(msg)

    # ------------------------------------------------------------- probing
    def probe(self, src: int, dst: int):
        """Generator: one ping; records and returns rtt_ns or None."""
        ctx = self.contexts[src]
        try:
            channel = yield from ctx.connect(
                dst, PING_PORT,
                timeout_ns=max(self.probe_timeout_ns, 20 * MILLIS))
        except (ConnectError, ChannelBroken):    # unreachable host
            self.matrix[(src, dst)] = None
            return None
        t0 = self.sim.now
        try:
            request = ctx.send_request(channel, 64, payload="xr-ping")
            result = yield self.sim.any_of(
                [request.response, self.sim.timeout(self.probe_timeout_ns)])
            if request.response in result:
                rtt = self.sim.now - t0
            else:
                rtt = None
        except ChannelBroken:
            rtt = None
        self.matrix[(src, dst)] = rtt
        yield from ctx.close_channel(channel)
        return rtt

    def run_mesh(self):
        """Generator: probe every ordered pair; returns the matrix."""
        hosts = sorted(self.contexts)
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    yield from self.probe(src, dst)
        return self.matrix

    def start_pingmesh(self, interval_ns: int):
        """Continuous pingmesh (the Guo et al. system the paper cites):
        re-probes the full mesh on a cadence and accumulates per-pair RTT
        history in :attr:`history`.  Returns the spawned process."""
        self.history: Dict[Tuple[int, int], List[Tuple[int, Optional[int]]]] \
            = {}

        def loop():
            while True:
                yield from self.run_mesh()
                now = self.sim.now
                for pair, rtt in self.matrix.items():
                    self.history.setdefault(pair, []).append((now, rtt))
                yield self.sim.timeout(interval_ns)

        return self.sim.spawn(loop(), name="xrping:mesh")

    def pair_timeline(self, src: int, dst: int):
        """RTT history for one pair from the continuous pingmesh."""
        return getattr(self, "history", {}).get((src, dst), [])

    # ------------------------------------------------------------ reporting
    def unreachable_pairs(self) -> List[Tuple[int, int]]:
        return [pair for pair, rtt in self.matrix.items() if rtt is None]

    def format_matrix(self) -> str:
        hosts = sorted(self.contexts)
        lines = ["     " + "".join(f"{h:>9}" for h in hosts)]
        for src in hosts:
            cells = []
            for dst in hosts:
                if src == dst:
                    cells.append(f"{'-':>9}")
                    continue
                rtt = self.matrix.get((src, dst))
                cells.append(f"{'FAIL':>9}" if rtt is None
                             else f"{rtt / 1000:>7.1f}us")
            lines.append(f"{src:>4} " + "".join(cells))
        return "\n".join(lines)
