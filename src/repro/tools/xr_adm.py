"""XR-Adm: online configuration distribution (Sec. VI-D).

In production an idle admin thread per X-RDMA process receives parameter
updates pushed by XR-Adm.  Here the tool fans ``set_flag`` out to every
registered context and reports per-context success/failure, preserving the
online/offline distinction of Table III.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.xrdma.config import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.xrdma.context import XrdmaContext


class XrAdm:
    """Cluster-wide configuration administrator."""

    def __init__(self) -> None:
        self.contexts: List["XrdmaContext"] = []
        self.history: List[Dict[str, Any]] = []

    def register(self, ctx: "XrdmaContext") -> None:
        self.contexts.append(ctx)

    # --------------------------------------------------------------- actions
    def set(self, name: str, value: Any) -> Dict[str, Any]:
        """Push one parameter everywhere; returns {ctx_name: 'ok'|error}."""
        results: Dict[str, Any] = {}
        for ctx in self.contexts:
            try:
                ctx.set_flag(name, value)
                results[ctx.name] = "ok"
            except ConfigError as error:
                results[ctx.name] = str(error)
        self.history.append({"param": name, "value": value,
                             "results": dict(results)})
        return results

    def get(self, name: str) -> Dict[str, Any]:
        """Read one parameter from every context."""
        return {ctx.name: getattr(ctx.config, name) for ctx in self.contexts}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full configuration dump per context."""
        return {ctx.name: ctx.config.snapshot() for ctx in self.contexts}

    def divergent_params(self) -> List[str]:
        """Parameters whose values differ across contexts (drift check)."""
        if len(self.contexts) < 2:
            return []
        snapshots = [ctx.config.snapshot() for ctx in self.contexts]
        divergent = []
        for key in snapshots[0]:
            if len({repr(snapshot[key]) for snapshot in snapshots}) > 1:
                divergent.append(key)
        return divergent
