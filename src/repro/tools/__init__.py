"""The XR-* utilities (Sec. IV-A / VI-B).

* :class:`~repro.tools.xr_stat.XrStat` — per-channel statistics (netstat
  for RDMA) plus the fabric's crucial indexes.
* :class:`~repro.tools.xr_ping.XrPing` — RDMA-native full-mesh ping with a
  connection matrix.
* :class:`~repro.tools.xr_perf.XrPerf` — benchmark/stress driver with
  customizable flow models (elephant/mice, incast).
* :class:`~repro.tools.xr_adm.XrAdm` — online configuration distribution.
* :class:`~repro.tools.xr_server.XrServer` — the standing diagnostic
  server (echo/sink/stat endpoints) used to qualify fabrics pre-rollout.
"""

from repro.tools.xr_adm import XrAdm
from repro.tools.xr_perf import PerfResult, XrPerf
from repro.tools.xr_ping import XrPing
from repro.tools.xr_server import XrServer
from repro.tools.xr_stat import XrStat

__all__ = ["PerfResult", "XrAdm", "XrPerf", "XrPing", "XrServer", "XrStat"]
