"""Reproduction of *X-RDMA: Effective RDMA Middleware in Large-scale
Production Environments* (Ma et al., IEEE CLUSTER 2019).

Start at :func:`repro.cluster.build_cluster`; the middleware's public API
is :mod:`repro.xrdma`.  DESIGN.md maps every paper mechanism to a module,
EXPERIMENTS.md records paper-vs-measured for every table and figure.
"""

__version__ = "1.0.0"
