"""Calibrated constants for the simulated substrate.

One :class:`SimParams` instance is shared by every subsystem in a cluster.
Defaults are calibrated so that the simulated ``ibv_rc_pingpong`` baseline,
rdma_cm establishment and TCP establishment reproduce the magnitudes the
paper reports (Sec. III, Sec. VII):

* 64 B verbs ping-pong one-way latency ≈ 5.3 µs,
* rdma_cm connection establishment ≈ 4 ms (≈ 100 µs for TCP),
* QP create+modify ≈ 1.5 ms of that (recovered by the QP cache),
* 25 Gbps access links (dual-port ConnectX4-Lx ⇒ 50 Gbps per host in
  aggregate; benches use one port unless stated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.timeunits import MICROS, MILLIS


@dataclass
class SimParams:
    """All latency/bandwidth/threshold constants, in ns and bytes."""

    # ----------------------------------------------------------------- links
    link_bandwidth_bps: float = 25e9        #: access & fabric link speed
    link_propagation_ns: int = 350          #: per-hop wire propagation
    mtu_bytes: int = 4096                   #: segment (simulation quantum) size
    header_bytes: int = 58                  #: RoCEv2 header overhead / segment

    # -------------------------------------------------------------- switches
    switch_forward_ns: int = 750            #: per-switch pipeline latency
    switch_port_buffer_bytes: int = 512 * 1024  #: per egress port
    ecn_kmin_bytes: int = 64 * 1024         #: ECN marking starts here
    ecn_kmax_bytes: int = 256 * 1024        #: marking probability reaches pmax
    ecn_pmax: float = 0.8                   #: max marking probability
    pfc_xoff_bytes: int = 384 * 1024        #: ingress-side pause threshold
    pfc_xon_bytes: int = 256 * 1024         #: resume threshold
    pfc_pause_quanta_ns: int = 65_536       #: duration of one pause frame

    # ------------------------------------------------------------------ RNIC
    nic_wqe_fetch_ns: int = 600             #: doorbell → WQE fetched
    nic_segment_process_ns: int = 150       #: per-segment engine occupancy
    nic_dma_ns: int = 1250                  #: PCIe DMA setup per transfer
    nic_dma_per_byte_ns: float = 0.015      #: PCIe payload streaming cost
    nic_cqe_ns: int = 450                   #: CQE generation cost
    nic_ack_delay_ns: int = 400             #: hardware ACK turnaround
    nic_qp_cache_entries: int = 1024        #: on-NIC QP-context SRAM entries
    nic_qp_cache_miss_ns: int = 320         #: context fetch from host memory
    rc_retransmit_timeout_ns: int = 4 * MILLIS  #: ibv timeout-class value
    rc_rnr_retry_delay_ns: int = 120 * MICROS
    rc_max_retries: int = 7
    max_send_queue_depth: int = 128         #: default SQ depth (WQEs)
    max_recv_queue_depth: int = 128         #: default RQ depth (WQEs)

    # ------------------------------------------------------------------ host
    host_post_overhead_ns: int = 300        #: verbs post_send/post_recv path
    host_poll_overhead_ns: int = 150        #: one poll_cq call
    host_memcpy_per_byte_ns: float = 0.03   #: bounce-buffer copies
    mr_register_base_ns: int = 30 * MICROS  #: pin + translate setup
    mr_register_per_page_ns: int = 220      #: per 4 KB page
    host_wakeup_ns: int = 4 * MICROS        #: epoll wakeup (event mode)

    # -------------------------------------------- on-demand paging (no-pin)
    #: ODP registration: no pinning, so no per-page cost — just the driver
    #: call programming the NIC to fault (NP-RDMA / ODP model).
    odp_register_ns: int = 12 * MICROS
    #: One page-fault event: NIC interrupt + driver fault handler entry.
    odp_page_fault_base_ns: int = 16 * MICROS
    #: Per 4 KB page faulted in (pin + translation-table update).
    odp_page_fault_per_page_ns: int = 500

    # ------------------------------------------------ connection management
    cm_resolve_ns: int = 600 * MICROS       #: rdma_cm address+route resolve
    cm_handshake_rtts: int = 3              #: REQ/REP/RTU exchanges
    qp_create_ns: int = 900 * MICROS        #: ibv_create_qp (alloc + firmware)
    qp_modify_ns: int = 200 * MICROS        #: each state transition (×3)
    qp_reset_ns: int = 60 * MICROS          #: modify to RESET (QP-cache path)
    tcp_connect_ns: int = 100 * MICROS      #: kernel TCP 3-way handshake

    # ---------------------------------------------------------------- DCQCN
    dcqcn_enabled: bool = True
    dcqcn_alpha_g: float = 0.00390625       #: 1/256, alpha EWMA gain
    dcqcn_alpha_update_ns: int = 55 * MICROS
    dcqcn_rate_increase_ns: int = 300 * MICROS  #: timer for recovery stages
    dcqcn_min_rate_bps: float = 100e6
    dcqcn_cnp_interval_ns: int = 50 * MICROS    #: min gap between CNPs per QP
    dcqcn_hyper_increase_stages: int = 5

    # ------------------------------------------------------------------ TCP
    tcp_per_msg_overhead_ns: int = 3 * MICROS   #: syscall + stack traversal
    tcp_per_byte_ns: float = 0.35               #: copies + segmentation

    # ------------------------------------------------------- derived helpers
    def serialization_ns(self, payload_bytes: int) -> int:
        """Wire time for ``payload_bytes`` (+ per-segment headers) on a link."""
        wire_bytes = payload_bytes + self.header_bytes
        return int(round(wire_bytes * 8 / self.link_bandwidth_bps * 1e9))

    def dma_ns(self, payload_bytes: int) -> int:
        """PCIe transfer time for one DMA of ``payload_bytes``."""
        return self.nic_dma_ns + int(round(
            payload_bytes * self.nic_dma_per_byte_ns))

    def mr_register_ns(self, length_bytes: int) -> int:
        """Cost of registering a memory region of ``length_bytes``."""
        pages = max(1, (length_bytes + 4095) // 4096)
        return self.mr_register_base_ns + pages * self.mr_register_per_page_ns

    def mr_register_batch_ns(self, lengths: "list[int]") -> int:
        """Cost of one batched registration call: the per-call base (the
        driver round trip) is paid once; per-page pinning still sums."""
        if not lengths:
            return 0
        pages = sum(max(1, (length + 4095) // 4096) for length in lengths)
        return self.mr_register_base_ns + pages * self.mr_register_per_page_ns

    def odp_page_fault_ns(self, pages: int) -> int:
        """Cost of faulting ``pages`` residency in (no-pin mode)."""
        return (self.odp_page_fault_base_ns
                + pages * self.odp_page_fault_per_page_ns)

    def cm_connect_ns(self) -> int:
        """End-to-end rdma_cm establishment cost, excluding QP creation."""
        rtt = 2 * (2 * self.link_propagation_ns + self.switch_forward_ns)
        return self.cm_resolve_ns + self.cm_handshake_rtts * (
            rtt + 300 * MICROS)

    def segments_of(self, length: int) -> int:
        """Number of MTU segments a ``length``-byte payload occupies."""
        if length <= 0:
            return 1
        return (length + self.mtu_bytes - 1) // self.mtu_bytes


#: A second, slower parameterization used by failure-injection tests to make
#: congestion effects easier to provoke at tiny scale.
def congested_params() -> SimParams:
    """Params with shallow buffers so small benches hit ECN/PFC quickly."""
    return SimParams(
        switch_port_buffer_bytes=128 * 1024,
        ecn_kmin_bytes=16 * 1024,
        ecn_kmax_bytes=64 * 1024,
        pfc_xoff_bytes=96 * 1024,
        pfc_xon_bytes=64 * 1024,
    )
