"""Time-unit helpers.

All simulated time in this project is an integer count of nanoseconds.  These
constants and converters keep call sites legible (``5 * MICROS`` rather than
``5000``).
"""

from __future__ import annotations

#: One nanosecond (the base tick).
NANOS = 1
#: Nanoseconds per microsecond.
MICROS = 1_000
#: Nanoseconds per millisecond.
MILLIS = 1_000_000
#: Nanoseconds per second.
SECONDS = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * MICROS))


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * MILLIS))


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * SECONDS))


def ns_to_us(value: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return value / MICROS


def ns_to_ms(value: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return value / MILLIS


def ns_to_seconds(value: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return value / SECONDS
