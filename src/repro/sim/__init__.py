"""Discrete-event simulation engine underlying the X-RDMA reproduction.

The engine is a classic event-queue / generator-coroutine design (similar in
spirit to simpy, written from scratch for this project so the whole substrate
is self-contained).  Simulated time is measured in integer **nanoseconds**.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.process.Process` — a running coroutine; created via
  :meth:`Simulator.spawn`.
* Awaitables yielded by processes: :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.AnyOf`,
  :class:`~repro.sim.events.AllOf`.
* :class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Resource`
  — blocking FIFO channel and counted resource.
* :class:`~repro.sim.rng.RngStream` — named, seeded random streams.
* :class:`~repro.sim.params.SimParams` — calibrated latency/bandwidth
  constants shared by the whole substrate.
"""

from repro.sim.engine import (GuardExceeded, Simulator, SimulationError,
                              TieAudit)
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.params import SimParams
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry, RngStream
from repro.sim.timeunits import MICROS, MILLIS, NANOS, SECONDS, ns_to_us, us

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "GuardExceeded",
    "Interrupt",
    "MICROS",
    "MILLIS",
    "NANOS",
    "Process",
    "Resource",
    "RngRegistry",
    "RngStream",
    "SECONDS",
    "SimParams",
    "SimulationError",
    "Simulator",
    "Store",
    "TieAudit",
    "Timeout",
    "ns_to_us",
    "us",
]
