"""Generator-coroutine processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
instances.  Yielding suspends the process until the event fires; the event's
value is sent back into the generator (or its exception thrown in).

A :class:`Process` is itself an :class:`Event` that fires when the generator
returns, so processes can wait for each other (fork/join) simply by yielding
the child process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt, _NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine inside the simulation.

    Create via :meth:`Simulator.spawn`.  The process-as-event fires with the
    generator's return value, or fails with its uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current instant.  The start event
        # is anonymous (naming it would cost an f-string per spawn) and
        # born triggered, so succeed()'s pending-state checks are skipped.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        sim._sequence += 1      # inlined zero-delay _schedule
        sim._nowq.append((sim._now, _NORMAL, sim._sequence, start))
        self._waiting_on = start

    def _default_name(self) -> str:
        return getattr(self._generator, "__name__", "process")

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a no-op.  The event the process
        was waiting on keeps running; the process may re-wait on it.
        """
        if not self.alive:
            return
        interrupt = Event(self.sim, name=f"{self.name}:interrupt")
        interrupt._ok = False
        interrupt._value = Interrupt(cause)
        # Detach from whatever we were waiting on so that a later firing of
        # that event does not resume us twice.
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.sim._schedule(interrupt, 0, urgent=True)
        interrupt.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        # The hottest callback in the simulator: every yield in every
        # process funnels through here, so it reads private slots
        # (``_ok``/``_value``) instead of the validating properties and
        # registers itself on the target without the add_callback frame.
        sim = self.sim
        # ``_waiting_on`` is left stale here on purpose: the fired event's
        # callbacks are already None, so interrupt()'s detach is a no-op
        # on it, and every exit path below either re-points it or ends
        # the process.  Clearing it would be a dead store per yield.
        sim._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # xr-lint: disable=swallowed-error
            # Intentionally broad: this is the process-death trap.  The
            # failure is not swallowed — fail() re-surfaces it through the
            # process-as-event (and step() raises if nobody observes it).
            self.fail(exc)
            return
        finally:
            sim._active_process = None
        # Duck-typed fast path: reading ``callbacks`` replaces an
        # isinstance check on every yield; anything that is not an Event
        # lands in the except branch and gets the full diagnostic.
        try:
            callbacks = target.callbacks
        except AttributeError:
            self._generator.close()
            self.fail(TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"))
            return
        self._waiting_on = target
        if callbacks is not None:
            callbacks.append(self._resume)
        else:                       # already fired: resume immediately
            self._resume(target)
