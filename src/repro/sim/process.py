"""Generator-coroutine processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
instances.  Yielding suspends the process until the event fires; the event's
value is sent back into the generator (or its exception thrown in).

A :class:`Process` is itself an :class:`Event` that fires when the generator
returns, so processes can wait for each other (fork/join) simply by yielding
the child process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine inside the simulation.

    Create via :meth:`Simulator.spawn`.  The process-as-event fires with the
    generator's return value, or fails with its uncaught exception.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current instant.
        start = Event(sim, name=f"{self.name}:start")
        start.succeed(None)
        start.add_callback(self._resume)
        self._waiting_on = start

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a no-op.  The event the process
        was waiting on keeps running; the process may re-wait on it.
        """
        if not self.alive:
            return
        interrupt = Event(self.sim, name=f"{self.name}:interrupt")
        interrupt._ok = False
        interrupt._value = Interrupt(cause)
        # Detach from whatever we were waiting on so that a later firing of
        # that event does not resume us twice.
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.sim._schedule(interrupt, 0, urgent=True)
        interrupt.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # xr-lint: disable=swallowed-error
            # Intentionally broad: this is the process-death trap.  The
            # failure is not swallowed — fail() re-surfaces it through the
            # process-as-event (and step() raises if nobody observes it).
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
