"""The discrete-event simulation loop.

A binary heap keyed by ``(time, priority, sequence)`` orders events.  The
sequence number makes the order of simultaneous events deterministic
(insertion order), which the reproducibility guarantees of this project rely
on.

Zero-delay normal-priority events — wakes, ``succeed()`` completions,
process bootstraps; roughly a third of all traffic — bypass the heap into
a FIFO *now-queue*.  This is safe because such entries are appended in
increasing sequence order at non-decreasing times, so the deque is always
sorted by the same ``(time, priority, sequence)`` key as the heap; the
fire loops pop whichever of heap-top/deque-head is smaller (plain tuple
comparison — both stores hold identical 4-tuples).  The total order is
therefore *exactly* the one a single heap would produce — the
digest-equivalence suite pins this — while a wake costs an append+popleft
instead of two O(log n) sift operations.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

from repro.sim.events import (AllOf, AnyOf, Event, SimulationError, Timeout,
                              _NORMAL, _URGENT)
from repro.sim.process import Process, ProcessGenerator

__all__ = ["GuardExceeded", "SimulationError", "Simulator", "TieAudit"]

# Heap priorities (re-exported from events, where the inlined trigger
# paths live): interrupts preempt normal events at the same instant.


class GuardExceeded(SimulationError):
    """A runaway-run guard tripped (event budget or wall-clock deadline).

    Raised *between* events — the heap and the now-queue are left intact,
    so a supervisor can inspect or even resume the simulation.  Fleet
    workers (``repro.fleet``) rely on this to turn a pathological
    scenario into a recorded failure instead of a hung worker process.
    """


def _host_clock() -> float:
    """Monotonic host seconds, used only by the runaway-run guards.

    Nothing simulated ever observes this value: a tripped deadline aborts
    the run with :class:`GuardExceeded`, it never steers behaviour.
    """
    return time.monotonic()  # xr-lint: disable=wall-clock


class _GuardState:
    """Budget shared by guarded fire loops (see :meth:`Simulator.set_guards`).

    ``charge()`` is called once per loop iteration *before* the next event
    is popped, so a raise leaves every pending event in place.  The wall
    clock is only sampled every 256 events — a guarded run pays one integer
    test per event and a clock read per quarter-kilobatch.
    """

    __slots__ = ("remaining", "deadline", "_tick")

    def __init__(self, max_events: Optional[int],
                 wall_timeout_s: Optional[float]) -> None:
        self.remaining: Optional[int] = max_events
        self.deadline: Optional[float] = (
            None if wall_timeout_s is None
            else _host_clock() + wall_timeout_s)
        self._tick = 0

    def charge(self) -> None:
        remaining = self.remaining
        if remaining is not None:
            if remaining <= 0:
                raise GuardExceeded(
                    "guard: max_events budget exhausted "
                    "(runaway simulation?)")
            self.remaining = remaining - 1
        if self.deadline is not None:
            self._tick += 1
            if (self._tick & 255) == 0 and _host_clock() > self.deadline:
                raise GuardExceeded(
                    "guard: wall-clock deadline exceeded "
                    "(runaway simulation?)")


class TieAudit:
    """Debug-mode observer of the heap's ``(time, priority)`` tie-breaks.

    Ties are *normal* — many events fire at the same instant — and the
    sequence number resolves them in insertion order, which is what the
    determinism guarantee rests on.  The auditor makes that story
    measurable end to end:

    * ``ties`` / ``tie_groups`` / ``max_group`` quantify how much of a run
      rides on the tie-break (how fragile the schedule would be without it);
    * ``anomalies`` counts pops where a tie resolved *out of* insertion
      order — always 0 unless a refactor breaks the heap key;
    * ``digest()`` is a SHA-256 over the fired-event schedule, so two runs
      with one root seed can be compared bit-for-bit.

    The digest covers ``(time, priority, event type)`` — deliberately not
    event *names*: names embed process-lifetime entity ids (connection,
    message, QP counters), so including them would make the digest depend
    on how many simulations ran earlier in the same interpreter rather
    than on the schedule itself.
    """

    def __init__(self) -> None:
        self.pops = 0            #: events fired while auditing
        self.ties = 0            #: pops sharing (time, priority) with prior
        self.tie_groups = 0      #: runs of >=2 tied pops
        self.max_group = 1       #: largest tied run
        self.anomalies = 0       #: ties resolved against insertion order
        self._last_key: Optional[Tuple[int, int]] = None
        self._last_seq = -1
        self._group = 1
        self._hash = hashlib.sha256()

    def observe(self, when: int, priority: int, seq: int,
                event: Event) -> None:
        self.pops += 1
        self._hash.update(
            f"{when}:{priority}:{type(event).__name__}\n".encode())
        key = (when, priority)
        if key == self._last_key:
            self.ties += 1
            self._group += 1
            if self._group == 2:
                self.tie_groups += 1
            self.max_group = max(self.max_group, self._group)
            if seq <= self._last_seq:
                self.anomalies += 1
        else:
            self._group = 1
        self._last_key = key
        self._last_seq = seq

    def digest(self) -> str:
        """Hex digest of the schedule so far (order- and time-sensitive)."""
        return self._hash.hexdigest()

    def summary(self) -> str:
        return (f"tie-audit: pops={self.pops} ties={self.ties} "
                f"groups={self.tie_groups} max_group={self.max_group} "
                f"anomalies={self.anomalies}")


class Simulator:
    """Owns simulated time and the pending-event heap.

    Typical use::

        sim = Simulator()

        def pinger():
            yield sim.timeout(5)
            return "pong"

        proc = sim.spawn(pinger())
        sim.run()
        assert proc.value == "pong"
    """

    # ``_sequence``/``_now``/``_heap``/``_nowq`` are the most-read
    # attributes in the program (every schedule and every fire touches
    # them); slots keep them out of a dict lookup.
    __slots__ = ("_now", "_heap", "_nowq", "_sequence", "_active_process",
                 "tie_audit", "_guards")

    def __init__(self, debug_ties: bool = False) -> None:
        self._now: int = 0
        self._heap: List[Tuple[int, int, int, Event]] = []
        #: zero-delay normal-priority events, FIFO == (time, prio, seq)
        #: order by construction (see module docstring)
        self._nowq: Deque[Tuple[int, int, int, Event]] = deque()
        self._sequence: int = 0
        self._active_process: Optional[Process] = None
        self.tie_audit: Optional[TieAudit] = TieAudit() if debug_ties \
            else None
        self._guards: Optional[_GuardState] = None

    def set_guards(self, max_events: Optional[int] = None,
                   wall_timeout_s: Optional[float] = None) -> None:
        """Arm persistent runaway-run guards; ``set_guards()`` disarms.

        The budgets span *all* subsequent :meth:`run` /
        :meth:`run_until_event` calls on this simulator: ``max_events``
        bounds the total number of events fired, ``wall_timeout_s``
        starts a host wall-clock countdown now.  Exceeding either raises
        :class:`GuardExceeded` with every pending event still queued.
        Unguarded simulators pay nothing — the fire loops pick the
        guard-free fast path once per call.
        """
        if max_events is None and wall_timeout_s is None:
            self._guards = None
        else:
            self._guards = _GuardState(max_events, wall_timeout_s)

    def enable_tie_audit(self) -> TieAudit:
        """Turn the tie-break auditor on (idempotent); returns it.

        Enable before running anything — the digest only covers events
        fired while the auditor is active.
        """
        if self.tie_audit is None:
            self.tie_audit = TieAudit()
        return self.tie_audit

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self, name: str = "") -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def call_at(self, when: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (≥ now)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = Timeout(self, when - self._now)
        ev.callbacks.append(lambda _ev: fn())   # fresh timeout: list exists
        return ev

    def call_after(self, delay: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` ns."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn())   # fresh timeout: list exists
        return ev

    # ------------------------------------------------------------- execution
    def _schedule(self, event: Event, delay: int = 0,
                  urgent: bool = False) -> None:
        """Insert a triggered event into the heap (engine-internal)."""
        self._sequence += 1
        delay = int(delay)
        if delay == 0 and not urgent:
            self._nowq.append((self._now, _NORMAL, self._sequence, event))
        else:
            priority = _URGENT if urgent else _NORMAL
            heapq.heappush(self._heap,
                           (self._now + delay, priority, self._sequence, event))

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if none are pending."""
        heap, nowq = self._heap, self._nowq
        if nowq and (not heap or nowq[0] < heap[0]):
            return nowq[0][0]
        return heap[0][0] if heap else None

    def step(self) -> None:
        """Fire the single next event."""
        heap, nowq = self._heap, self._nowq
        if nowq and (not heap or nowq[0] < heap[0]):
            when, priority, seq, event = nowq.popleft()
        elif heap:
            when, priority, seq, event = heapq.heappop(heap)
        else:
            raise SimulationError("step() on an empty event heap")
        if self.tie_audit is not None:
            self.tie_audit.observe(when, priority, seq, event)
        self._now = when
        had_observers = bool(event.callbacks)
        event._fire()
        if not event._ok and not had_observers and not event.defused:
            raise SimulationError(
                f"unhandled failure in {event.name!r}: {event.value!r}"
            ) from event.value

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            wall_timeout_s: Optional[float] = None) -> int:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which the run stopped.

        ``max_events`` / ``wall_timeout_s`` arm one-shot runaway guards
        for this call only (see :meth:`set_guards` for persistent ones);
        tripping either raises :class:`GuardExceeded` with all pending
        events intact.

        The loop body is :meth:`step` inlined by hand: this is the hottest
        loop in the project and the method call, the re-checked empty-heap
        guard, and the repeated attribute loads are measurable.  Any change
        here must be mirrored in :meth:`step`/:meth:`run_until_event` and
        the ``_guarded`` variants, and keep TieAudit digests byte-identical.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        guards = self._guards
        if max_events is not None or wall_timeout_s is not None:
            guards = _GuardState(max_events, wall_timeout_s)
        if guards is not None:
            return self._run_guarded(until, guards)
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        # Hoisted: the auditor must be enabled before running (documented on
        # enable_tie_audit), so one load outside the loop is equivalent —
        # and when it is off (every production run) the whole audit branch
        # drops out of the loop body.
        audit = self.tie_audit
        heappush = heapq.heappush
        bound = float("inf") if until is None else until
        while heap or nowq:
            if nowq and (not heap or nowq[0] < heap[0]):
                # Now-queue entries can never trip the ``until`` bound:
                # they were appended at a past-or-present instant and
                # ``_now`` never exceeds ``until`` inside this loop.
                when, priority, seq, event = nowq.popleft()
            else:
                when, priority, seq, event = heappop(heap)
                if when > bound:
                    # Pops are time-monotone, so checking after the pop is
                    # equivalent to peeking first — and skips a heap[0][0]
                    # index chain on every iteration.  Restore the event.
                    heappush(heap, (when, priority, seq, event))
                    self._now = until
                    return self._now
            if audit is not None:
                audit.observe(when, priority, seq, event)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                # One waiter is the overwhelmingly common case (a process
                # resume or a delivery hook); skip the iterator for it.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
            elif not event._ok and not event.defused:
                raise SimulationError(
                    f"unhandled failure in {event.name!r}: {event.value!r}"
                ) from event.value
        if until is not None:
            self._now = until
        return self._now

    def _run_guarded(self, until: Optional[int],
                     guards: _GuardState) -> int:
        """:meth:`run` with a per-iteration guard charge.

        A separate loop (rather than a branch in :meth:`run`) so the
        unguarded hot path stays byte-for-byte what PR 3 benchmarked.
        ``guards.charge()`` runs *before* the pop: a raise loses nothing.
        """
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        audit = self.tie_audit
        heappush = heapq.heappush
        bound = float("inf") if until is None else until
        while heap or nowq:
            guards.charge()
            if nowq and (not heap or nowq[0] < heap[0]):
                when, priority, seq, event = nowq.popleft()
            else:
                when, priority, seq, event = heappop(heap)
                if when > bound:
                    heappush(heap, (when, priority, seq, event))
                    assert until is not None
                    self._now = until
                    return self._now
            if audit is not None:
                audit.observe(when, priority, seq, event)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
            elif not event._ok and not event.defused:
                raise SimulationError(
                    f"unhandled failure in {event.name!r}: {event.value!r}"
                ) from event.value
        if until is not None:
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[int] = None,
                        max_events: Optional[int] = None,
                        wall_timeout_s: Optional[float] = None) -> Any:
        """Run until ``event`` fires; returns its value or raises its error.

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`.  ``max_events`` / ``wall_timeout_s``
        arm one-shot runaway guards (:class:`GuardExceeded`), merging
        with any persistent :meth:`set_guards` budget.  (Same
        hand-inlined fire loop as :meth:`run` — see the note there.)
        """
        guards = self._guards
        if max_events is not None or wall_timeout_s is not None:
            guards = _GuardState(max_events, wall_timeout_s)
        if guards is not None:
            return self._run_until_event_guarded(event, limit, guards)
        if event.callbacks is not None:
            # Mark the event observed so a failure is delivered here rather
            # than raised as an unhandled error inside step().
            event.callbacks.append(lambda _ev: None)
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        audit = self.tie_audit
        # One comparison per pop instead of two: an unset limit becomes an
        # unreachable bound.
        bound = float("inf") if limit is None else limit
        while event.callbacks is not None:      # i.e. not yet processed
            if nowq and (not heap or nowq[0] < heap[0]):
                # Now-queue entries cannot exceed ``limit`` (see run()).
                when, priority, seq, fired = nowq.popleft()
            elif heap:
                when, priority, seq, fired = heappop(heap)
                if when > bound:
                    # Post-pop check (pops are time-monotone — see run()).
                    heapq.heappush(heap, (when, priority, seq, fired))
                    raise SimulationError(
                        f"time limit {limit} exceeded waiting for {event.name!r}")
            else:
                raise SimulationError(
                    f"deadlock: no pending events but {event.name!r} never fired")
            if audit is not None:
                audit.observe(when, priority, seq, fired)
            self._now = when
            callbacks = fired.callbacks
            fired.callbacks = None
            if callbacks:
                # Single-waiter fast path — see run().
                if len(callbacks) == 1:
                    callbacks[0](fired)
                else:
                    for callback in callbacks:
                        callback(fired)
            elif not fired._ok and not fired.defused:
                raise SimulationError(
                    f"unhandled failure in {fired.name!r}: {fired.value!r}"
                ) from fired.value
        if not event._ok:
            raise event._value
        return event._value

    def _run_until_event_guarded(self, event: Event, limit: Optional[int],
                                 guards: _GuardState) -> Any:
        """:meth:`run_until_event` with a per-iteration guard charge
        (mirror of :meth:`_run_guarded` — keep the loops in lockstep)."""
        if event.callbacks is not None:
            event.callbacks.append(lambda _ev: None)
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        audit = self.tie_audit
        bound = float("inf") if limit is None else limit
        while event.callbacks is not None:      # i.e. not yet processed
            guards.charge()
            if nowq and (not heap or nowq[0] < heap[0]):
                when, priority, seq, fired = nowq.popleft()
            elif heap:
                when, priority, seq, fired = heappop(heap)
                if when > bound:
                    heapq.heappush(heap, (when, priority, seq, fired))
                    raise SimulationError(
                        f"time limit {limit} exceeded waiting for "
                        f"{event.name!r}")
            else:
                raise SimulationError(
                    f"deadlock: no pending events but {event.name!r} "
                    f"never fired")
            if audit is not None:
                audit.observe(when, priority, seq, fired)
            self._now = when
            callbacks = fired.callbacks
            fired.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    callbacks[0](fired)
                else:
                    for callback in callbacks:
                        callback(fired)
            elif not fired._ok and not fired.defused:
                raise SimulationError(
                    f"unhandled failure in {fired.name!r}: {fired.value!r}"
                ) from fired.value
        if not event._ok:
            raise event._value
        return event._value
