"""The discrete-event simulation loop.

A binary heap keyed by ``(time, priority, sequence)`` orders events.  The
sequence number makes the order of simultaneous events deterministic
(insertion order), which the reproducibility guarantees of this project rely
on.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

# Heap priorities: interrupts preempt normal events at the same instant.
_URGENT = 0
_NORMAL = 1


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process with no observer."""


class TieAudit:
    """Debug-mode observer of the heap's ``(time, priority)`` tie-breaks.

    Ties are *normal* — many events fire at the same instant — and the
    sequence number resolves them in insertion order, which is what the
    determinism guarantee rests on.  The auditor makes that story
    measurable end to end:

    * ``ties`` / ``tie_groups`` / ``max_group`` quantify how much of a run
      rides on the tie-break (how fragile the schedule would be without it);
    * ``anomalies`` counts pops where a tie resolved *out of* insertion
      order — always 0 unless a refactor breaks the heap key;
    * ``digest()`` is a SHA-256 over the fired-event schedule, so two runs
      with one root seed can be compared bit-for-bit.

    The digest covers ``(time, priority, event type)`` — deliberately not
    event *names*: names embed process-lifetime entity ids (connection,
    message, QP counters), so including them would make the digest depend
    on how many simulations ran earlier in the same interpreter rather
    than on the schedule itself.
    """

    def __init__(self) -> None:
        self.pops = 0            #: events fired while auditing
        self.ties = 0            #: pops sharing (time, priority) with prior
        self.tie_groups = 0      #: runs of >=2 tied pops
        self.max_group = 1       #: largest tied run
        self.anomalies = 0       #: ties resolved against insertion order
        self._last_key: Optional[Tuple[int, int]] = None
        self._last_seq = -1
        self._group = 1
        self._hash = hashlib.sha256()

    def observe(self, when: int, priority: int, seq: int,
                event: Event) -> None:
        self.pops += 1
        self._hash.update(
            f"{when}:{priority}:{type(event).__name__}\n".encode())
        key = (when, priority)
        if key == self._last_key:
            self.ties += 1
            self._group += 1
            if self._group == 2:
                self.tie_groups += 1
            self.max_group = max(self.max_group, self._group)
            if seq <= self._last_seq:
                self.anomalies += 1
        else:
            self._group = 1
        self._last_key = key
        self._last_seq = seq

    def digest(self) -> str:
        """Hex digest of the schedule so far (order- and time-sensitive)."""
        return self._hash.hexdigest()

    def summary(self) -> str:
        return (f"tie-audit: pops={self.pops} ties={self.ties} "
                f"groups={self.tie_groups} max_group={self.max_group} "
                f"anomalies={self.anomalies}")


class Simulator:
    """Owns simulated time and the pending-event heap.

    Typical use::

        sim = Simulator()

        def pinger():
            yield sim.timeout(5)
            return "pong"

        proc = sim.spawn(pinger())
        sim.run()
        assert proc.value == "pong"
    """

    def __init__(self, debug_ties: bool = False) -> None:
        self._now: int = 0
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._sequence: int = 0
        self._active_process: Optional[Process] = None
        self.tie_audit: Optional[TieAudit] = TieAudit() if debug_ties \
            else None

    def enable_tie_audit(self) -> TieAudit:
        """Turn the tie-break auditor on (idempotent); returns it.

        Enable before running anything — the digest only covers events
        fired while the auditor is active.
        """
        if self.tie_audit is None:
            self.tie_audit = TieAudit()
        return self.tie_audit

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self, name: str = "") -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def call_at(self, when: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (≥ now)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _ev: fn())
        return ev

    def call_after(self, delay: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` ns."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn())
        return ev

    # ------------------------------------------------------------- execution
    def _schedule(self, event: Event, delay: int = 0,
                  urgent: bool = False) -> None:
        """Insert a triggered event into the heap (engine-internal)."""
        self._sequence += 1
        when = self._now + int(delay)
        priority = _URGENT if urgent else _NORMAL
        heapq.heappush(self._heap, (when, priority, self._sequence, event))

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Fire the single next event."""
        when, priority, seq, event = heapq.heappop(self._heap)
        if self.tie_audit is not None:
            self.tie_audit.observe(when, priority, seq, event)
        self._now = when
        had_observers = bool(event.callbacks)
        event._fire()
        if (not event._ok and not had_observers
                and not getattr(event, "defused", False)):
            raise SimulationError(
                f"unhandled failure in {event.name!r}: {event.value!r}"
            ) from event.value

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which the run stopped.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` fires; returns its value or raises its error.

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`.
        """
        if not event.processed:
            # Mark the event observed so a failure is delivered here rather
            # than raised as an unhandled error inside step().
            event.add_callback(lambda _ev: None)
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: no pending events but {event.name!r} never fired")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for {event.name!r}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
