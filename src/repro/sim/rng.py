"""Named, seeded random-number streams.

Every stochastic decision in the substrate (ECMP hashing jitter, workload
inter-arrival times, fault injection) draws from a named stream derived from
a single root seed.  Two runs with the same root seed and the same stream
names therefore produce identical event sequences, independent of the order
in which subsystems are constructed.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Sequence

import numpy as np


class RngStream:
    """A thin, intention-revealing wrapper over ``numpy.random.Generator``."""

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.seed = seed
        self._gen = np.random.default_rng(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def pareto(self, shape: float, scale: float) -> float:
        """Pareto-distributed value with minimum ``scale`` (heavy tail)."""
        return float(scale * (1.0 + self._gen.pareto(shape)))

    def normal(self, mean: float, std: float) -> float:
        return float(self._gen.normal(mean, std))

    def choice(self, seq: Sequence[Any]) -> Any:
        return seq[self.randint(0, len(seq))]

    def shuffle(self, seq: list) -> None:
        self._gen.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        return bool(self._gen.uniform() < p)


class RngRegistry:
    """Derives reproducible per-name streams from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Get (or create) the stream for ``name``.

        The stream's seed is a stable hash of ``(root_seed, name)``, so
        construction order does not matter.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode()).digest()
        seed = int.from_bytes(digest[:8], "little")
        stream = RngStream(name, seed)
        self._streams[name] = stream
        return stream
