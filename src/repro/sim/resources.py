"""Blocking resources: FIFO stores and counted resources.

These are the coordination primitives the substrate is built from — NIC work
queues, switch buffers and host-side request queues are all Stores or
Resources under the hood.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class StoreFull(RuntimeError):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class _PutEvent(Event):
    """A pending put: the event plus the item it is trying to deposit.

    ``Event`` is slotted, so the item rides in a declared slot instead of
    an ad-hoc attribute.
    """

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any, name: str = "") -> None:
        super().__init__(sim, name=name)
        self.item = item


class Store:
    """An unbounded-or-bounded FIFO channel of arbitrary items.

    ``put`` and ``get`` return events; processes yield them to block until
    the operation completes.  Non-blocking variants (`put_nowait`,
    `get_nowait`) exist for engine-internal fast paths.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[_PutEvent] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been accepted."""
        ev = _PutEvent(self.sim, item, name=f"{self.name}:put")
        if self._getters and not self.items:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif not self.full:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append(ev)
        return ev

    def put_nowait(self, item: Any) -> None:
        """Append immediately; raises :class:`StoreFull` at capacity."""
        if self._getters and not self.items:
            self._getters.popleft().succeed(item)
            return
        if self.full:
            raise StoreFull(self.name)
        self.items.append(item)

    def get(self) -> Event:
        """Event that fires with the oldest item once one is available."""
        ev = Event(self.sim, name=f"{self.name}:get")
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Pop the oldest item; raises IndexError when empty."""
        item = self.items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed(None)


class Resource:
    """A counted resource (semaphore) with FIFO granting."""

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Event firing once a unit of the resource is held."""
        ev = Event(self.sim, name=f"{self.name}:acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit straight over: in_use stays constant.
            self._waiters.popleft().succeed(None)
        else:
            self.in_use -= 1
