"""Awaitable events for the simulation engine.

A process (generator) suspends by yielding an :class:`Event` (or a subclass).
The engine resumes the process when the event *fires* — either successfully,
delivering a value, or with a failure, raising the stored exception inside
the process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

# Sentinel distinguishing "no value yet" from a delivered ``None``.
_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (scheduled to fire, value decided), and *processed* (its
    callbacks have run).  ``succeed``/``fail`` decide the value; the engine
    invokes callbacks when the event's scheduled time arrives.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name or type(self).__name__
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event has fired)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The delivered value (or stored exception).  Valid once triggered."""
        if self._value is _PENDING:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with a failure; waiters see ``exception`` raised."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already fired."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        """Engine hook: run and clear callbacks."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self._ok = True
        self._value = value
        sim._schedule(self, int(delay))


class _Condition(Event):
    """Base for AnyOf / AllOf composition over a set of events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self.events
            if event.processed and event.ok
        }


class AnyOf(_Condition):
    """Fires when any child event fires (or fails on the first failure)."""

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Fires when every child event has fired successfully."""

    def _satisfied(self) -> bool:
        return self._done == len(self.events)
