"""Awaitable events for the simulation engine.

A process (generator) suspends by yielding an :class:`Event` (or a subclass).
The engine resumes the process when the event *fires* — either successfully,
delivering a value, or with a failure, raising the stored exception inside
the process.

Events are the single hottest allocation in the simulator (every timeout,
wake-up, and process bootstrap is one), so the classes here carry
``__slots__`` and compute their display names lazily: the name only
matters in error messages and debug output, never on the fire path.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

# Sentinel distinguishing "no value yet" from a delivered ``None``.
_PENDING = object()

# Heap priorities, defined here so the trigger paths below can push onto
# the heap without a round-trip through ``Simulator._schedule``.  The
# engine imports these — they are the single source of truth.
_URGENT = 0
_NORMAL = 1


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process with no observer.

    Lives here (not in ``engine``) because the event layer raises it too;
    ``repro.sim.engine`` re-exports it, which is the canonical import site.
    """


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (scheduled to fire, value decided), and *processed* (its
    callbacks have run).  ``succeed``/``fail`` decide the value; the engine
    invokes callbacks when the event's scheduled time arrives.

    Setting :attr:`defused` on a *failed* event tells the engine the
    failure is expected and observed out-of-band, so ``step()`` must not
    escalate it to :class:`SimulationError`.
    """

    __slots__ = ("sim", "_name", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self._name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.defused = False

    @property
    def name(self) -> str:
        """Display name, computed lazily (only error paths ever need it)."""
        return self._name or self._default_name()

    def _default_name(self) -> str:
        return type(self).__name__

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event has fired)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The delivered value (or stored exception).  Valid once triggered."""
        if self._value is _PENDING:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._value is not _PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Simulator._schedule — succeed() is on the wake/completion
        # hot path and the extra frame is measurable.  Zero delay (the
        # common case) takes the FIFO now-queue, not the heap.
        sim = self.sim
        sim._sequence += 1
        delay = int(delay)
        if delay == 0:
            sim._nowq.append((sim._now, _NORMAL, sim._sequence, self))
        else:
            _heappush(sim._heap,
                      (sim._now + delay, _NORMAL, sim._sequence, self))
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with a failure; waiters see ``exception`` raised."""
        if self._value is not _PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._sequence += 1
        delay = int(delay)
        if delay == 0:
            sim._nowq.append((sim._now, _NORMAL, sim._sequence, self))
        else:
            _heappush(sim._heap,
                      (sim._now + delay, _NORMAL, sim._sequence, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already fired."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        """Engine hook: run and clear callbacks."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("_delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__: timeouts are the hottest allocation in
        # the whole simulator and are born already-triggered, so the
        # pending-state dance of succeed() is pure overhead here.  The
        # ``defused`` slot is deliberately left unset: every reader is
        # guarded by ``not _ok`` and a timeout can never fail.
        self.sim = sim
        self._name = ""
        self.callbacks = []
        self._ok = True
        self._value = value
        self._delay = delay
        # Inlined Simulator._schedule (see succeed()); int() mirrors the
        # engine's coercion so a float delay cannot leak into heap keys.
        sim._sequence += 1
        delay = int(delay)
        if delay == 0:
            sim._nowq.append((sim._now, _NORMAL, sim._sequence, self))
        else:
            _heappush(sim._heap,
                      (sim._now + delay, _NORMAL, sim._sequence, self))

    def _rearm(self, delay: int, value: Any = None) -> "Timeout":
        """Reschedule a *fired* timeout, recycling the object.

        Strictly an allocation-avoidance hook for single-owner hot loops
        (port serialization, NIC occupancy, wire delivery): the caller
        guarantees the timeout has been processed, that nothing else holds
        a reference, and that ``delay`` is an exact ``int`` (every call
        site passes cached/derived ints, so ``__init__``'s coercion is
        skipped).  The schedule produced is byte-identical to constructing
        a fresh ``Timeout`` — same type, time, priority, and sequence
        number — so TieAudit digests cannot tell the difference.
        """
        self.callbacks = []
        self._ok = True
        self._value = value
        self._delay = delay
        sim = self.sim
        sim._sequence += 1
        if delay == 0:
            sim._nowq.append((sim._now, _NORMAL, sim._sequence, self))
        else:
            _heappush(sim._heap,
                      (sim._now + delay, _NORMAL, sim._sequence, self))
        return self

    def _default_name(self) -> str:
        return f"timeout({self._delay})"


class _Condition(Event):
    """Base for AnyOf / AllOf composition over a set of events."""

    __slots__ = ("events", "_done", "late_failures")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        #: (event name, repr(exception)) for defused children that failed
        #: after this condition had already triggered.
        self.late_failures: List[Tuple[str, str]] = []
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                # The condition fired without us, so no waiter will ever
                # see this failure through the condition's value.  Our
                # registered callback counts as an observer, which would
                # defuse what step() should have raised — so either
                # honour an explicit defusal (recording why) or escalate.
                if event.defused:
                    self.late_failures.append(
                        (event.name, repr(event.value)))
                    return
                raise SimulationError(
                    f"child event {event.name!r} failed after condition "
                    f"{self.name!r} had already triggered: {event.value!r}"
                ) from event.value
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self.events
            if event.processed and event.ok
        }


class AnyOf(_Condition):
    """Fires when any child event fires (or fails on the first failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Fires when every child event has fired successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done == len(self.events)
