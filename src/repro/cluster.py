"""Cluster assembly: fabric + RNIC hosts, ready for middleware and apps.

This is the top-level entry point examples and benchmarks build on::

    from repro.cluster import build_cluster

    cluster = build_cluster(n_hosts=4)
    host = cluster.host(0)            # .nic / .verbs / .cm / .memory
    ctx = cluster.xrdma_context(0)    # an X-RDMA context on host 0

For cluster-scale emulation the fabric and the attached host set are
decoupled: ``build_cluster(n_hosts=1024, attach_hosts=range(16))`` sizes
the Clos for 1024 host slots but instantiates RNIC stacks for only the
named ids — the rest of the load is carried by flow-aggregate channels
(:mod:`repro.net.aggregate`), keeping per-worker memory proportional to
the simulated rack, not the cluster.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.memory import HostMemory
from repro.net import NetStats
from repro.rnic import Rnic
from repro.sim import RngRegistry, SimParams, Simulator
from repro.topology import ClosTopology
from repro.verbs import CmAgent, VerbsContext


@dataclass
class Host:
    """One simulated machine: NIC + verbs + CM + host memory."""

    host_id: int
    nic: Rnic
    verbs: VerbsContext
    cm: CmAgent
    memory: HostMemory


@dataclass
class Cluster:
    """A running fabric with attached hosts.

    ``hosts`` lists attached hosts in attach order; under sparse
    attachment (``attach_hosts``) host ids are not list positions, so
    lookups go through :meth:`host`.
    """

    sim: Simulator
    params: SimParams
    stats: NetStats
    rng: RngRegistry
    topology: ClosTopology
    hosts: List[Host] = field(default_factory=list)
    _by_id: Dict[int, Host] = field(default_factory=dict)

    def add_host(self, host: Host) -> None:
        """Record an attached host (keeps the id index in step)."""
        self.hosts.append(host)
        self._by_id[host.host_id] = host

    def host(self, host_id: int) -> Host:
        """The Host record (nic/verbs/cm/memory) for ``host_id``."""
        try:
            return self._by_id[host_id]
        except KeyError:
            raise KeyError(
                f"host {host_id} has no attached RNIC stack (cluster "
                f"attached {len(self.hosts)} of "
                f"{self.topology.n_hosts} host slots)") from None

    def xrdma_context(self, host_id: int, config=None, name: str = ""):
        """Convenience: an X-RDMA context bound to ``host_id``."""
        from repro.xrdma import XrdmaContext
        host = self.host(host_id)
        return XrdmaContext(self.sim, host.verbs, host.cm, config=config,
                            name=name or f"xr-h{host_id}")

    def tcp_agent(self, host_id: int):
        """Convenience: a TCP stack on ``host_id`` (baselines, Mock)."""
        from repro.baselines.tcpstack import TcpAgent
        host = self.host(host_id)
        return TcpAgent(self.sim, self.params, host.nic)


def build_cluster(n_hosts: int = 4, params: Optional[SimParams] = None,
                  seed: int = 0, nic_ports: int = 1,
                  attach_hosts: Optional[Iterable[int]] = None,
                  **dims) -> Cluster:
    """Create a Clos fabric with ``n_hosts`` RNIC-equipped hosts attached.

    Fabric dimensions default to fitting ``n_hosts`` with ≤16 hosts per
    ToR, sized **per pod**: with ``n_pods > 1`` the host id space spans
    every pod, so cross-pod traffic actually exercises the spine tier.
    (Dimensions used to default as if single-pod, which packed all hosts
    into pod 0 and left the spines idle.)  Pass explicit Clos dimensions
    via ``dims`` to override; impossible combinations — total slot
    capacity below ``n_hosts`` — raise ``ValueError``.

    ``attach_hosts`` selects which host ids get full RNIC stacks; the
    default attaches all of ``range(n_hosts)``.  Unattached slots still
    route (flow-aggregate background channels address them by id).
    """
    sim = Simulator()
    params = params or SimParams()
    stats = NetStats()
    rng = RngRegistry(seed)
    dims.setdefault("n_pods", 1)
    dims.setdefault("leaves_per_pod", 2)
    n_pods = dims["n_pods"]
    if n_pods < 1:
        raise ValueError(f"n_pods must be >= 1, got {n_pods}")
    hosts_per_pod = -(-n_hosts // n_pods)
    dims.setdefault("tors_per_pod", max(1, (hosts_per_pod + 15) // 16))
    dims.setdefault("hosts_per_tor",
                    -(-hosts_per_pod // dims["tors_per_pod"]))
    dims.setdefault("n_spines", 1)
    capacity = n_pods * dims["tors_per_pod"] * dims["hosts_per_tor"]
    if capacity < n_hosts:
        raise ValueError(
            f"Clos dimensions {dims} hold {capacity} host slots, fewer "
            f"than n_hosts={n_hosts}")
    topology = ClosTopology(sim, params, stats, rng, **dims)
    cluster = Cluster(sim=sim, params=params, stats=stats, rng=rng,
                      topology=topology)
    if attach_hosts is None:
        attach_ids: List[int] = list(range(n_hosts))
    else:
        attach_ids = sorted(set(attach_hosts))
        bad = [h for h in attach_ids if not 0 <= h < n_hosts]
        if bad:
            raise ValueError(
                f"attach_hosts ids {bad} outside [0, {n_hosts})")
    for host_id in attach_ids:
        memory = HostMemory()
        nic = Rnic(sim, params, stats, host_id)
        nic.plug_into(topology, ports=nic_ports)
        verbs = VerbsContext(sim, params, nic, memory)
        cm = CmAgent(sim, params, verbs, nic)
        cluster.add_host(Host(host_id=host_id, nic=nic, verbs=verbs,
                              cm=cm, memory=memory))
    return cluster


# --------------------------------------------------------------- footprint
def _port_footprint(port) -> int:
    total = sys.getsizeof(port)
    total += sys.getsizeof(port.queue)
    total += sys.getsizeof(port._ser_cache)
    return total


def _switch_footprint(switch) -> int:
    total = sys.getsizeof(switch) + sys.getsizeof(switch.__dict__)
    total += sys.getsizeof(switch.ports)
    total += sys.getsizeof(switch.neighbors)
    total += sys.getsizeof(switch._ingress_bytes)
    total += sys.getsizeof(switch._paused_upstream)
    for port in switch.ports:
        total += _port_footprint(port)
    return total


def fabric_footprint(cluster: Cluster) -> Dict[str, float]:
    """Deterministic byte estimate of the fabric's per-node model state.

    Sums ``sys.getsizeof`` over every switch (ports, queues, the flat PFC
    ingress arrays) plus the shared routing table and host-slot array, and
    divides by *emulated* host slots.  The point of the flyweight routing
    refactor is that this quotient stays flat as the cluster grows; the
    cluster-scale scenarios publish it as ``fabric_bytes_per_node``.
    ``sys.getsizeof`` is a fixed function of the object layout, so the
    numbers are identical across fleet workers (jobs-invariant).
    """
    topo = cluster.topology
    switches = topo.tors + topo.leaves + topo.spines
    fabric_bytes = sys.getsizeof(topo._slots)
    fabric_bytes += sys.getsizeof(topo.routing)
    for switch in switches:
        fabric_bytes += _switch_footprint(switch)
    n_nodes = topo.n_hosts
    return {
        "fabric_bytes": float(fabric_bytes),
        "fabric_switches": float(len(switches)),
        "emulated_hosts": float(n_nodes),
        "attached_hosts": float(len(cluster.hosts)),
        "fabric_bytes_per_node": round(fabric_bytes / n_nodes, 2),
    }
