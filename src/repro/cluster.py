"""Cluster assembly: fabric + RNIC hosts, ready for middleware and apps.

This is the top-level entry point examples and benchmarks build on::

    from repro.cluster import build_cluster

    cluster = build_cluster(n_hosts=4)
    host = cluster.host(0)            # .nic / .verbs / .cm / .memory
    ctx = cluster.xrdma_context(0)    # an X-RDMA context on host 0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory import HostMemory
from repro.net import NetStats
from repro.rnic import Rnic
from repro.sim import RngRegistry, SimParams, Simulator
from repro.topology import ClosTopology
from repro.verbs import CmAgent, VerbsContext


@dataclass
class Host:
    """One simulated machine: NIC + verbs + CM + host memory."""

    host_id: int
    nic: Rnic
    verbs: VerbsContext
    cm: CmAgent
    memory: HostMemory


@dataclass
class Cluster:
    """A running fabric with attached hosts."""

    sim: Simulator
    params: SimParams
    stats: NetStats
    rng: RngRegistry
    topology: ClosTopology
    hosts: List[Host] = field(default_factory=list)

    def host(self, host_id: int) -> Host:
        """The Host record (nic/verbs/cm/memory) for ``host_id``."""
        return self.hosts[host_id]

    def xrdma_context(self, host_id: int, config=None, name: str = ""):
        """Convenience: an X-RDMA context bound to ``host_id``."""
        from repro.xrdma import XrdmaContext
        host = self.host(host_id)
        return XrdmaContext(self.sim, host.verbs, host.cm, config=config,
                            name=name or f"xr-h{host_id}")

    def tcp_agent(self, host_id: int):
        """Convenience: a TCP stack on ``host_id`` (baselines, Mock)."""
        from repro.baselines.tcpstack import TcpAgent
        host = self.host(host_id)
        return TcpAgent(self.sim, self.params, host.nic)


def build_cluster(n_hosts: int = 4, params: Optional[SimParams] = None,
                  seed: int = 0, nic_ports: int = 1, **dims) -> Cluster:
    """Create a Clos fabric with ``n_hosts`` RNIC-equipped hosts attached.

    Fabric dimensions default to a single pod sized to fit ``n_hosts``
    (≤16 hosts per ToR); pass explicit Clos dimensions via ``dims`` for
    multi-pod studies.
    """
    sim = Simulator()
    params = params or SimParams()
    stats = NetStats()
    rng = RngRegistry(seed)
    dims.setdefault("n_pods", 1)
    dims.setdefault("leaves_per_pod", 2)
    dims.setdefault("tors_per_pod", max(1, (n_hosts + 15) // 16))
    dims.setdefault("hosts_per_tor", -(-n_hosts // dims["tors_per_pod"]))
    dims.setdefault("n_spines", 1)
    topology = ClosTopology(sim, params, stats, rng, **dims)
    cluster = Cluster(sim=sim, params=params, stats=stats, rng=rng,
                      topology=topology)
    for host_id in range(n_hosts):
        memory = HostMemory()
        nic = Rnic(sim, params, stats, host_id)
        nic.plug_into(topology, ports=nic_ports)
        verbs = VerbsContext(sim, params, nic, memory)
        cm = CmAgent(sim, params, verbs, nic)
        cluster.hosts.append(Host(host_id=host_id, nic=nic, verbs=verbs,
                                  cm=cm, memory=memory))
    return cluster
