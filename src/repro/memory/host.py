"""Per-host memory: a simulated address space for RDMA-able buffers.

Addresses are plain integers; there is no byte content — correctness
properties (MR bounds, rkey checks, buffer reuse) are expressed over
address ranges.

Three allocation modes model the Sec. VII-F experience report:

* ``ANONYMOUS`` — ordinary pages; cheap, never fails under fragmentation.
* ``CONTIGUOUS`` — physically contiguous; cache-friendlier (a small per-op
  bonus the RNIC model honours) but fails once fragmentation is high and
  triggers expensive reclaim.
* ``HUGEPAGE`` — reserved pool; fast, fixed capacity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Optional

from repro.sim.timeunits import MICROS

_PAGE = 4096


class AllocMode(Enum):
    ANONYMOUS = auto()
    CONTIGUOUS = auto()
    HUGEPAGE = auto()


class OutOfMemory(RuntimeError):
    """Allocation failed (contiguous exhaustion or hugepage pool empty)."""


@dataclass
class Allocation:
    addr: int
    length: int
    mode: AllocMode


class HostMemory:
    """Bump allocator with free-byte accounting and a fragmentation model.

    ``fragmentation`` grows with allocator churn; contiguous allocations
    larger than the largest pseudo-contiguous run fail, and each failure
    charges a reclaim penalty (the paper's "memory recycling in kernel"
    slowdown).
    """

    def __init__(self, capacity_bytes: int = 64 << 30,
                 hugepage_pool_bytes: int = 2 << 30):
        self.capacity = capacity_bytes
        self.hugepage_pool = hugepage_pool_bytes
        self.hugepage_used = 0
        self.used = 0
        self.fragmentation = 0.0        #: 0 (pristine) .. 1 (fully fragmented)
        self.reclaim_events = 0
        self._next_addr = itertools.count(0x1000_0000, _PAGE)
        self._allocations: Dict[int, Allocation] = {}
        self._churn_bytes = 0

    # ------------------------------------------------------------ allocation
    def alloc(self, length: int,
              mode: AllocMode = AllocMode.ANONYMOUS) -> Allocation:
        if length <= 0:
            raise ValueError(f"allocation length must be positive: {length}")
        length = self._round_up(length)
        if self.used + length > self.capacity:
            raise OutOfMemory(
                f"host memory exhausted ({self.used}+{length} > {self.capacity})")
        if mode is AllocMode.HUGEPAGE:
            if self.hugepage_used + length > self.hugepage_pool:
                raise OutOfMemory("hugepage pool exhausted")
            self.hugepage_used += length
        elif mode is AllocMode.CONTIGUOUS:
            if length > self.largest_contiguous_run():
                self.reclaim_events += 1
                raise OutOfMemory(
                    f"no contiguous run of {length} bytes "
                    f"(fragmentation={self.fragmentation:.2f})")
        addr = self._place(length)
        allocation = Allocation(addr=addr, length=length, mode=mode)
        self._allocations[addr] = allocation
        self.used += length
        return allocation

    def free(self, addr: int) -> None:
        allocation = self._allocations.pop(addr, None)
        if allocation is None:
            raise KeyError(f"free of unknown address {addr:#x}")
        self.used -= allocation.length
        if allocation.mode is AllocMode.HUGEPAGE:
            self.hugepage_used -= allocation.length
        # Churn drives fragmentation up, slowly saturating.
        self._churn_bytes += allocation.length
        self.fragmentation = min(
            0.95, self._churn_bytes / (self.capacity * 2))

    def owner_of(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, if any."""
        for allocation in self._allocations.values():
            if allocation.addr <= addr < allocation.addr + allocation.length:
                return allocation
        return None

    # ----------------------------------------------------------------- costs
    def alloc_cost_ns(self, length: int, mode: AllocMode) -> int:
        """Latency of the allocation syscall path."""
        pages = max(1, length // _PAGE)
        if mode is AllocMode.HUGEPAGE:
            return 2 * MICROS + pages // 512
        if mode is AllocMode.CONTIGUOUS:
            # Compaction work rises with fragmentation.
            base = 5 * MICROS + pages * 40
            return int(base * (1.0 + 10.0 * self.fragmentation))
        return 1 * MICROS + pages * 25

    def largest_contiguous_run(self) -> int:
        """Largest physically contiguous allocation that would succeed.

        Contiguous runs shrink much faster than free space does — a
        lightly fragmented heap already has no large runs left, which is
        why the paper warns against physically contiguous allocations.
        """
        free = self.capacity - self.used
        return int(free * (1.0 - self.fragmentation) ** 10)

    # -------------------------------------------------------------- internals
    @staticmethod
    def _round_up(length: int) -> int:
        return (length + _PAGE - 1) // _PAGE * _PAGE

    def _place(self, length: int) -> int:
        addr = next(self._next_addr)
        # Reserve the range by advancing the bump pointer past it.
        while next(self._next_addr) < addr + length:
            pass
        return addr
