"""Host memory model: allocation modes and fragmentation accounting."""

from repro.memory.host import AllocMode, HostMemory, OutOfMemory

__all__ = ["AllocMode", "HostMemory", "OutOfMemory"]
