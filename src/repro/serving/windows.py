"""Stable-window SLO measurement (XR-Serve).

Open-loop measurement is only honest when it is *windowed*: a run-long
percentile hides the minutes where the system fell behind, and the ramp
at both ends of a run contaminates whatever it touches.  The engine here
follows the queueing-middleware methodology the roadmap names:

* simulated time is cut into fixed windows of ``window_ns``;
* every *offered* request is counted in the window of its arrival, every
  *completion* (and its latency) in the window it completed in — the
  offered-vs-achieved gap per window is the backlog signal;
* the first ``warmup_windows`` and last ``cooldown_windows`` windows are
  excluded from verdicts ("stable windows");
* per-window percentiles are nearest-rank over the window's raw latency
  values via :func:`repro.fleet.aggregate.percentile` — the *same*
  routine the fleet aggregate uses, so a window p99 and an aggregate p99
  are the same statistic;
* an :class:`SloTarget` turns stable windows into a verdict: the
  fraction of stable windows whose target-percentile latency met the
  bound (``slo_attainment``), and a pass only when every one did.

Everything recorded is simulation-time integers, so the whole window
table — and its SHA-256 :meth:`WindowedRecorder.digest` — is a pure
function of the run's seed.  Fleet records ship the table as the
``windows.jsonl`` artifact; :mod:`repro.tools.xr_slo` renders it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.fleet.aggregate import percentile
from repro.sim.timeunits import SECONDS

__all__ = ["SloTarget", "WindowedRecorder"]


@dataclass(frozen=True)
class SloTarget:
    """A latency service-level objective: ``percentile`` <= ``latency_us``.

    ``min_achieved_rps`` optionally adds a throughput floor — a window
    that met its latency bound while completing almost nothing (because
    everything was still queued) is not a healthy window.
    """

    percentile: float = 99.0
    latency_us: float = 1000.0
    min_achieved_rps: float = 0.0

    def window_ok(self, p_us: float, achieved_rps: float) -> bool:
        if p_us > self.latency_us:
            return False
        return achieved_rps >= self.min_achieved_rps


class WindowedRecorder:
    """Per-tenant windowed offered/achieved/latency accounting.

    One recorder per tenant; the tenant driver calls :meth:`on_offered`
    at every arrival and :meth:`on_completed` at every response, and the
    harness calls :meth:`close` once with the configured horizon so the
    window count is fixed by the *plan*, not by how far completions
    straggled (stragglers land in cooldown windows, which is exactly
    what cooldown windows are for).
    """

    def __init__(self, window_ns: int, warmup_windows: int = 1,
                 cooldown_windows: int = 1) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if warmup_windows < 0 or cooldown_windows < 0:
            raise ValueError("warmup/cooldown window counts must be >= 0")
        self.window_ns = window_ns
        self.warmup_windows = warmup_windows
        self.cooldown_windows = cooldown_windows
        self.offered: Dict[int, int] = {}
        self.completed: Dict[int, int] = {}
        self.latencies: Dict[int, List[int]] = {}
        self.errors = 0
        self.total_offered = 0
        self.total_completed = 0
        self._horizon_ns: Optional[int] = None

    # -------------------------------------------------------------- recording
    def _index(self, now_ns: int) -> int:
        return now_ns // self.window_ns

    def on_offered(self, now_ns: int) -> None:
        index = self._index(now_ns)
        self.offered[index] = self.offered.get(index, 0) + 1
        self.total_offered += 1

    def on_completed(self, now_ns: int, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        index = self._index(now_ns)
        self.completed[index] = self.completed.get(index, 0) + 1
        self.latencies.setdefault(index, []).append(latency_ns)
        self.total_completed += 1

    def on_error(self) -> None:
        self.errors += 1

    def close(self, horizon_ns: int) -> None:
        """Fix the window count to the configured run horizon."""
        if horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
        self._horizon_ns = horizon_ns

    # ------------------------------------------------------------- inspection
    @property
    def n_windows(self) -> int:
        """Planned windows when closed, else last observed window + 1."""
        if self._horizon_ns is not None:
            return -(-self._horizon_ns // self.window_ns)
        observed = list(self.offered) + list(self.completed)
        return max(observed) + 1 if observed else 0

    def stable_indices(self) -> List[int]:
        """Window indices that count toward the SLO verdict."""
        total = self.n_windows
        first = self.warmup_windows
        last = total - self.cooldown_windows
        return list(range(first, max(first, last)))

    def _window_row(self, index: int, stable: bool,
                    slo: Optional[SloTarget]) -> Dict[str, Any]:
        window_s = self.window_ns / SECONDS
        offered = self.offered.get(index, 0)
        completed = self.completed.get(index, 0)
        values = sorted(self.latencies.get(index, []))
        achieved_rps = completed / window_s
        row: Dict[str, Any] = {
            "window": index,
            "start_ms": round(index * self.window_ns / 1e6, 3),
            "stable": stable,
            "offered": offered,
            "completed": completed,
            "offered_rps": round(offered / window_s, 1),
            "achieved_rps": round(achieved_rps, 1),
            "p50_us": 0.0,
            "p99_us": 0.0,
            "max_us": 0.0,
        }
        if values:
            row["p50_us"] = round(percentile(values, 0.50) / 1000, 2)
            row["p99_us"] = round(percentile(values, 0.99) / 1000, 2)
            row["max_us"] = round(values[-1] / 1000, 2)
        if slo is not None:
            if not offered and not values:
                row["slo_ok"] = True        # nothing asked, nothing owed
            else:
                p_us = (percentile(values, slo.percentile / 100) / 1000
                        if values else float("inf"))
                row["slo_ok"] = bool(values) and slo.window_ok(p_us,
                                                               achieved_rps)
        return row

    def rows(self, slo: Optional[SloTarget] = None) -> List[Dict[str, Any]]:
        """The full per-window table (stragglers past the horizon kept —
        they show up as extra, non-stable windows)."""
        stable = set(self.stable_indices())
        observed = set(self.offered) | set(self.completed)
        indices = sorted(set(range(self.n_windows)) | observed)
        return [self._window_row(index, index in stable, slo)
                for index in indices]

    # --------------------------------------------------------------- verdicts
    def summary(self, slo: SloTarget) -> Dict[str, Any]:
        """Flat metrics over the *stable* windows (fleet-record ready)."""
        stable = self.stable_indices()
        pooled: List[int] = []
        offered = completed = 0
        slo_ok_windows = 0
        judged = 0
        for index in stable:
            window_offered = self.offered.get(index, 0)
            offered += window_offered
            completed += self.completed.get(index, 0)
            values = sorted(self.latencies.get(index, []))
            pooled.extend(values)
            if not window_offered and not values:
                continue                # idle window: nothing asked
            judged += 1
            if values:
                p_us = percentile(values, slo.percentile / 100) / 1000
                window_s = self.window_ns / SECONDS
                if slo.window_ok(p_us, len(values) / window_s):
                    slo_ok_windows += 1
        stable_s = len(stable) * self.window_ns / SECONDS
        pooled.sort()
        summary: Dict[str, Any] = {
            "windows": self.n_windows,
            "windows_stable": len(stable),
            "offered": offered,
            "completed": completed,
            "errors": self.errors,
            "offered_rps": round(offered / stable_s, 1) if stable_s else 0.0,
            "achieved_rps": (round(completed / stable_s, 1)
                             if stable_s else 0.0),
            "p50_us": (round(percentile(pooled, 0.50) / 1000, 2)
                       if pooled else 0.0),
            "p99_us": (round(percentile(pooled, 0.99) / 1000, 2)
                       if pooled else 0.0),
            "slo_target_us": slo.latency_us,
            "slo_percentile": slo.percentile,
            "slo_attainment": (round(slo_ok_windows / judged, 4)
                               if judged else 0.0),
            "slo_ok": int(judged > 0 and slo_ok_windows == judged),
            "window_digest": self.digest(),
        }
        return summary

    def digest(self) -> str:
        """SHA-256 over the complete window content.

        Covers counts *and* every raw latency value per window, in
        canonical order — two runs agree on this hex iff their window
        histograms are identical.
        """
        hasher = hashlib.sha256()
        observed = sorted(set(self.offered) | set(self.completed))
        for index in observed:
            values = ",".join(str(v)
                              for v in sorted(self.latencies.get(index, [])))
            hasher.update(f"{index}:{self.offered.get(index, 0)}:"
                          f"{self.completed.get(index, 0)}:{values}\n"
                          .encode("utf-8"))
        return hasher.hexdigest()
