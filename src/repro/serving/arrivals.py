"""Open-loop arrival processes (XR-Serve).

An arrival process answers one question — *when does the next request
arrive?* — and must answer it independently of how the system is coping
(that independence is what "open loop" means; the regression tests in
``tests/workloads`` pin the same property for ``open_loop_sender``).

Every process draws exclusively from the :class:`~repro.sim.rng.RngStream`
it was constructed with, and its gap sequence depends only on the stream
and on the arrival times themselves (never on completions or queue
state), so a tenant's whole arrival schedule is a pure function of
``(root seed, stream name)`` — the property the window-digest checks in
:mod:`repro.serving.windows` rest on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim.timeunits import SECONDS
from repro.workloads.traces import Knot, rate_at

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngStream

__all__ = ["ArrivalProcess", "PoissonArrivals", "MmppArrivals",
           "DiurnalArrivals", "make_arrivals"]


def _gap_from_rate(rng: "RngStream", rate_per_s: float) -> int:
    """One exponential inter-arrival gap at ``rate_per_s`` (ns, >= 1)."""
    return max(1, int(rng.exponential(SECONDS / rate_per_s)))


class ArrivalProcess:
    """Base class: a deterministic generator of inter-arrival gaps."""

    def __init__(self, rng: "RngStream") -> None:
        self.rng = rng
        self.arrivals = 0

    def next_gap_ns(self, now_ns: int) -> int:
        """Gap from ``now_ns`` to the next arrival (subclass hook)."""
        raise NotImplementedError

    def schedule(self, duration_ns: int,
                 start_ns: int = 0) -> List[int]:
        """Materialize every arrival time in ``[start, start+duration)``.

        Consumes the stream exactly the way the live driver does, so a
        fresh process over a same-named stream reproduces the driver's
        schedule — what the determinism tests compare against.
        """
        times: List[int] = []
        now = start_ns
        while True:
            now += self.next_gap_ns(now)
            if now >= start_ns + duration_ns:
                return times
            times.append(now)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate."""

    def __init__(self, rng: "RngStream", rate_per_s: float) -> None:
        super().__init__(rng)
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s

    def next_gap_ns(self, now_ns: int) -> int:
        self.arrivals += 1
        return _gap_from_rate(self.rng, self.rate_per_s)


class MmppArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty on-off load).

    The process alternates between a *base* state and a *burst* state;
    dwell times in each are exponential.  During a burst the arrival rate
    multiplies — the Fig. 12 "throughput x3 under promotion pressure"
    shape, but as an open-loop offered load.  State flips are driven by
    arrival times only, so the schedule stays completion-independent.
    """

    def __init__(self, rng: "RngStream", rate_per_s: float,
                 burst_rate_per_s: float, mean_base_ns: int,
                 mean_burst_ns: int) -> None:
        super().__init__(rng)
        if rate_per_s <= 0 or burst_rate_per_s <= 0:
            raise ValueError("both rates must be positive")
        if mean_base_ns <= 0 or mean_burst_ns <= 0:
            raise ValueError("both dwell times must be positive")
        self.rate_per_s = rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_base_ns = mean_base_ns
        self.mean_burst_ns = mean_burst_ns
        self.bursting = False
        self.state_flips = 0
        #: sim time at which the current state's dwell expires
        self._state_until = -1

    def _dwell_ns(self) -> int:
        mean = self.mean_burst_ns if self.bursting else self.mean_base_ns
        return max(1, int(self.rng.exponential(mean)))

    def next_gap_ns(self, now_ns: int) -> int:
        if self._state_until < 0:       # first draw anchors the state clock
            self._state_until = now_ns + self._dwell_ns()
        while now_ns >= self._state_until:
            self.bursting = not self.bursting
            self.state_flips += 1
            self._state_until += self._dwell_ns()
        rate = self.burst_rate_per_s if self.bursting else self.rate_per_s
        self.arrivals += 1
        return _gap_from_rate(self.rng, rate)


class DiurnalArrivals(ArrivalProcess):
    """Arrivals whose mean rate follows a (time, rate) knot envelope.

    The envelope is the :func:`repro.workloads.traces.diurnal_profile`
    shape (Fig. 3's saturated/unsaturated alternation); the instantaneous
    rate is step-interpolated at the *current arrival time*, which keeps
    the schedule a pure function of the stream.
    """

    def __init__(self, rng: "RngStream", knots: List[Knot]) -> None:
        super().__init__(rng)
        if not knots:
            raise ValueError("empty rate envelope")
        if any(rate <= 0 for _, rate in knots):
            raise ValueError("envelope rates must be positive")
        self.knots = list(knots)

    def next_gap_ns(self, now_ns: int) -> int:
        self.arrivals += 1
        return _gap_from_rate(self.rng, rate_at(self.knots, now_ns))


def make_arrivals(kind: str, rng: "RngStream", rate_per_s: float,
                  duration_ns: int = SECONDS,
                  burst_factor: float = 4.0) -> ArrivalProcess:
    """Build an arrival process from flat scenario parameters.

    ``kind`` is one of ``poisson`` / ``mmpp`` / ``diurnal`` — scalar
    strings, so fleet grids can sweep it.  ``mmpp`` bursts at
    ``burst_factor`` x the base rate with dwell times sized so several
    on-off cycles fit into ``duration_ns``; ``diurnal`` swings the rate
    between half and ``burst_factor``/2 x the base over two periods.
    """
    if kind == "poisson":
        return PoissonArrivals(rng, rate_per_s)
    if kind == "mmpp":
        return MmppArrivals(rng, rate_per_s, rate_per_s * burst_factor,
                            mean_base_ns=max(1, duration_ns // 8),
                            mean_burst_ns=max(1, duration_ns // 16))
    if kind == "diurnal":
        from repro.workloads.traces import diurnal_profile
        knots = diurnal_profile(duration_ns, max(2, duration_ns // 2),
                                low=rate_per_s / 2,
                                high=rate_per_s * burst_factor / 2)
        return DiurnalArrivals(rng, knots)
    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"choose poisson, mmpp or diurnal")
