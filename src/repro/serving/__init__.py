"""XR-Serve: multi-tenant open-loop serving on top of the X-RDMA stack.

The rest of the repro measures *closed-loop* workloads: a sender issues
the next message only after the previous one completed, so offered load
adapts itself to whatever the system can absorb and tail latency is
flattered by construction.  Production serving is the opposite regime —
requests arrive on their own schedule (open loop), tenants with very
different traffic shapes share one fabric, and what matters is whether
each tenant's latency SLO holds *per measurement window* under the load
actually offered.

This package supplies that layer:

* :mod:`repro.serving.arrivals` — deterministic open-loop arrival
  processes (Poisson, bursty MMPP on-off, diurnal rate envelopes), every
  draw from a named :class:`~repro.sim.rng.RngStream` so schedules are
  digest-reproducible;
* :mod:`repro.serving.windows` — the stable-window measurement engine:
  per-window latency/throughput stats with warmup/cooldown exclusion,
  offered-vs-achieved load tracking, and SLO percentile verdicts;
* :mod:`repro.serving.tenant` — the :class:`Tenant` abstraction (traffic
  classes, channel-selection policies) and the harness that runs many
  tenants against shared serving endpoints.

The fleet side (``--spec serving``, scenarios, the ``windows.jsonl``
artifact) lives in :mod:`repro.fleet.serving`; the reporting CLI is
:mod:`repro.tools.xr_slo`.
"""

from repro.serving.arrivals import (ArrivalProcess, DiurnalArrivals,
                                    MmppArrivals, PoissonArrivals,
                                    make_arrivals)
from repro.serving.tenant import (BULK_CLASS, RPC_CLASS, ServingHarness,
                                  Tenant, TenantSpec, TrafficClass)
from repro.serving.windows import SloTarget, WindowedRecorder

__all__ = ["ArrivalProcess", "BULK_CLASS", "DiurnalArrivals",
           "MmppArrivals", "PoissonArrivals", "RPC_CLASS", "ServingHarness",
           "SloTarget", "Tenant", "TenantSpec", "TrafficClass",
           "WindowedRecorder", "make_arrivals"]
