"""Tenants and the multi-tenant serving harness (XR-Serve).

A :class:`Tenant` is one customer of the shared fabric: an open-loop
arrival process, a mix of traffic classes (small eager RPCs, large
rendezvous transfers), one X-RDMA context per source host, and a channel
-selection policy.  Tenants never wait for each other — every request is
fired on the arrival schedule and its completion is observed by a
detached waiter, so a struggling server shows up as an offered-vs-
achieved gap and a latency tail, never as a quietly throttled workload.

Channel-selection policies (the Queueing-middleware axis):

* ``round-robin`` — every request cycles over all of the tenant's
  channels, so elephants and mice interleave on every queue;
* ``sharded`` — channels are partitioned per traffic class (class *i*
  takes channels ``i, i+k, i+2k, ...``), so bulk transfers cannot
  head-of-line-block the latency-sensitive class at the middleware
  queue.

:class:`ServingHarness` wires tenants against shared serving endpoints,
runs the whole open-loop phase, bounds the completion drain, and closes
each tenant's :class:`~repro.serving.windows.WindowedRecorder` at the
configured horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from repro.fleet.aggregate import percentile
from repro.serving.arrivals import make_arrivals
from repro.serving.windows import SloTarget, WindowedRecorder
from repro.sim.process import ProcessGenerator
from repro.sim.timeunits import MILLIS, SECONDS
from repro.workloads.flows import mice_size
from repro.xrdma.channel import ChannelBroken, ChannelState, XrdmaChannel
from repro.xrdma.config import XrdmaConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.monitor import Monitor
    from repro.cluster import Cluster
    from repro.sim.rng import RngStream
    from repro.xrdma.context import XrdmaContext
    from repro.xrdma.message import XrdmaMessage

__all__ = ["TrafficClass", "RPC_CLASS", "BULK_CLASS", "TenantSpec",
           "Tenant", "ServingHarness"]


@dataclass(frozen=True)
class TrafficClass:
    """One request shape inside a tenant's mix.

    ``weight`` is the relative pick probability at each arrival.  Sizes
    come from ``size_fn`` when set (a ``rng -> bytes`` callable, same
    contract as :class:`repro.workloads.flows.FlowSpec`), else
    ``fixed_bytes``.  Requests above the context's ``small_msg_size``
    take the rendezvous path — that is what makes a class "large", not
    anything in this dataclass.
    """

    name: str
    weight: float = 1.0
    size_fn: Optional[Callable[["RngStream"], int]] = None
    fixed_bytes: int = 2048
    response_bytes: int = 64

    def draw_bytes(self, rng: "RngStream") -> int:
        if self.size_fn is not None:
            return int(self.size_fn(rng))
        return self.fixed_bytes


def _bulk_size(rng: "RngStream") -> int:
    """Rendezvous-sized transfer: 64 KB – 512 KB, log-uniform."""
    return int(2 ** rng.uniform(16, 19))


#: Latency-sensitive class: mice-sized eager RPCs (64 B – 4 KB).
RPC_CLASS = TrafficClass(name="rpc", weight=1.0, size_fn=mice_size)
#: Throughput class: large rendezvous transfers (64 KB – 512 KB).
BULK_CLASS = TrafficClass(name="bulk", weight=1.0, size_fn=_bulk_size)


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant.

    ``hosts`` lists the source hosts (several = the tenant fans in to
    the server — the incast shape); ``rate_per_s`` is the open-loop
    arrival rate *per source host*.  ``arrival`` is one of ``poisson`` /
    ``mmpp`` / ``diurnal`` (see :func:`repro.serving.arrivals
    .make_arrivals`).
    """

    name: str
    hosts: Tuple[int, ...]
    server_host: int
    rate_per_s: float = 10_000.0
    arrival: str = "poisson"
    burst_factor: float = 4.0
    classes: Tuple[TrafficClass, ...] = (RPC_CLASS,)
    n_channels: int = 2
    policy: str = "round-robin"
    slo: SloTarget = SloTarget()

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError(f"tenant {self.name}: no source hosts")
        if self.server_host in self.hosts:
            raise ValueError(f"tenant {self.name}: server host "
                             f"{self.server_host} is also a source")
        if not self.classes:
            raise ValueError(f"tenant {self.name}: no traffic classes")
        if self.n_channels < 1:
            raise ValueError(f"tenant {self.name}: n_channels must be >= 1")
        if self.policy not in ("round-robin", "sharded"):
            raise ValueError(f"tenant {self.name}: unknown policy "
                             f"{self.policy!r}")
        total = sum(cls.weight for cls in self.classes)
        if total <= 0:
            raise ValueError(f"tenant {self.name}: class weights sum to 0")


class Tenant:
    """A running tenant: contexts, channels, drivers and its recorder."""

    def __init__(self, spec: TenantSpec, harness: "ServingHarness",
                 config: Optional[XrdmaConfig] = None) -> None:
        self.spec = spec
        self.harness = harness
        cluster = harness.cluster
        self.contexts: List["XrdmaContext"] = [
            cluster.xrdma_context(host, config=config,
                                  name=f"serve-{spec.name}-h{host}")
            for host in spec.hosts]
        self.recorder = WindowedRecorder(
            harness.window_ns, warmup_windows=harness.warmup_windows,
            cooldown_windows=harness.cooldown_windows)
        self.outstanding = 0
        self.sent_by_class: Dict[str, int] = {
            cls.name: 0 for cls in spec.classes}
        #: completed latencies split by class — the pooled window p99
        #: mixes mice and elephants, and the policy comparison (does
        #: sharding protect the RPC class?) needs them apart
        self.class_latencies: Dict[str, List[int]] = {
            cls.name: [] for cls in spec.classes}
        self._channels: Dict[int, List[XrdmaChannel]] = {}
        self._rr: Dict[int, int] = {}
        self._rngs: List["RngStream"] = [
            cluster.rng.stream(f"serving.{spec.name}.h{host}")
            for host in spec.hosts]

    # ------------------------------------------------------------ mechanics
    def _pick_class(self, rng: "RngStream") -> int:
        classes = self.spec.classes
        if len(classes) == 1:
            return 0
        total = sum(cls.weight for cls in classes)
        draw = rng.uniform(0.0, total)
        acc = 0.0
        for index, cls in enumerate(classes):
            acc += cls.weight
            if draw < acc:
                return index
        return len(classes) - 1

    def _select_channel(self, host_index: int,
                        class_index: int) -> XrdmaChannel:
        channels = self._channels[host_index]
        n_classes = len(self.spec.classes)
        if self.spec.policy == "sharded" and n_classes > 1:
            shard = channels[class_index % len(channels)::n_classes]
            if not shard:               # fewer channels than classes
                shard = channels
        else:
            shard = channels
        turn = self._rr.get(host_index, 0)
        self._rr[host_index] = turn + 1
        return shard[turn % len(shard)]

    def _driver(self, host_index: int) -> ProcessGenerator:
        """Open-loop source on one host: connect, then fire on schedule."""
        ctx = self.contexts[host_index]
        sim = ctx.sim
        rng = self._rngs[host_index]
        spec = self.spec
        arrivals = make_arrivals(spec.arrival, rng, spec.rate_per_s,
                                 duration_ns=self.harness.duration_ns,
                                 burst_factor=spec.burst_factor)
        # Concurrent channel establishment — serial cold setups are
        # several ms each and would eat whole warmup windows.
        channels: List[Optional[XrdmaChannel]] = [None] * spec.n_channels

        def connect_one(slot: int) -> ProcessGenerator:
            channels[slot] = yield from ctx.connect(spec.server_host,
                                                    self.harness.port)

        connects = [sim.spawn(connect_one(slot),
                              name=f"serve-{spec.name}-conn{slot}")
                    for slot in range(spec.n_channels)]
        for proc in connects:
            yield proc
        self._channels[host_index] = [channel for channel in channels
                                      if channel is not None]
        if not self._channels[host_index]:
            return
        start = self.harness.start_ns
        end = start + self.harness.duration_ns
        while True:
            gap = arrivals.next_gap_ns(sim.now)
            yield sim.timeout(gap)
            if sim.now >= end:
                return
            class_index = self._pick_class(rng)
            cls = spec.classes[class_index]
            size = cls.draw_bytes(rng)
            channel = self._select_channel(host_index, class_index)
            self.recorder.on_offered(sim.now - start)
            try:
                msg = ctx.send_request(channel, size,
                                       payload=cls.response_bytes)
            except ChannelBroken:
                self.recorder.on_error()
                continue
            self.sent_by_class[cls.name] += 1
            self.outstanding += 1
            sim.spawn(self._await_response(ctx, msg, cls.name),
                      name=f"serve-{spec.name}-wait")

    def _await_response(self, ctx: "XrdmaContext", msg: "XrdmaMessage",
                        class_name: str) -> ProcessGenerator:
        try:
            yield msg.response
        except ChannelBroken:
            self.outstanding -= 1
            self.recorder.on_error()
            return
        self.outstanding -= 1
        now = ctx.sim.now
        latency = now - msg.created_at
        self.class_latencies[class_name].append(latency)
        self.recorder.on_completed(now - self.harness.start_ns, latency)

    def shutdown(self) -> ProcessGenerator:
        """Generator: orderly close of every channel still open."""
        for host_index, channels in sorted(self._channels.items()):
            ctx = self.contexts[host_index]
            for channel in channels:
                if channel.state is ChannelState.READY:
                    yield from ctx.close_channel(channel)

    # ------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, Any]:
        out = self.recorder.summary(self.spec.slo)
        out["outstanding"] = self.outstanding
        for cls in self.spec.classes:
            out[f"sent_{cls.name}"] = self.sent_by_class[cls.name]
            values = sorted(self.class_latencies[cls.name])
            if values:
                out[f"p50_{cls.name}_us"] = round(
                    percentile(values, 0.50) / 1000, 2)
                out[f"p99_{cls.name}_us"] = round(
                    percentile(values, 0.99) / 1000, 2)
        return out

    def window_rows(self) -> List[Dict[str, Any]]:
        rows = []
        for row in self.recorder.rows(self.spec.slo):
            stamped = {"tenant": self.spec.name}
            stamped.update(row)
            rows.append(stamped)
        return rows


class ServingHarness:
    """Runs many tenants against shared serving endpoints on one cluster.

    The harness owns the serving side: one X-RDMA context per distinct
    ``server_host``, with an acceptor that answers every REQUEST with a
    response of the size the request asked for (the ``payload`` field —
    the per-class ``response_bytes``).
    """

    def __init__(self, cluster: "Cluster", duration_ns: int,
                 window_ns: int, warmup_windows: int = 1,
                 cooldown_windows: int = 1, port: int = 8800,
                 drain_ns: Optional[int] = None) -> None:
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if window_ns <= 0 or window_ns > duration_ns:
            raise ValueError("window_ns must be in (0, duration_ns]")
        self.cluster = cluster
        self.duration_ns = duration_ns
        self.window_ns = window_ns
        self.warmup_windows = warmup_windows
        self.cooldown_windows = cooldown_windows
        self.port = port
        self.drain_ns = drain_ns if drain_ns is not None else duration_ns
        self.tenants: List[Tenant] = []
        self.servers: Dict[int, "XrdmaContext"] = {}
        self.start_ns = 0
        self._ran = False

    # -------------------------------------------------------------- assembly
    def server_context(self, host_id: int,
                       config: Optional[XrdmaConfig] = None
                       ) -> "XrdmaContext":
        """The (shared) serving context on ``host_id``, listening."""
        ctx = self.servers.get(host_id)
        if ctx is None:
            ctx = self.cluster.xrdma_context(host_id, config=config,
                                             name=f"serve-srv-h{host_id}")
            accepted = ctx.listen(self.port)
            self.cluster.sim.spawn(self._acceptor(ctx, accepted),
                                   name=f"serve-accept-h{host_id}")
            self.servers[host_id] = ctx
        return ctx

    @staticmethod
    def _acceptor(ctx: "XrdmaContext", accepted) -> ProcessGenerator:
        def respond(msg: "XrdmaMessage") -> None:
            size = msg.payload if isinstance(msg.payload, int) else 0
            ctx.send_response(msg, size if size > 0 else 64)

        while True:
            channel = yield accepted.get()
            channel.on_request = respond

    def add_tenant(self, spec: TenantSpec,
                   config: Optional[XrdmaConfig] = None,
                   server_config: Optional[XrdmaConfig] = None) -> Tenant:
        """Register a tenant (and its server endpoint, if new)."""
        self.server_context(spec.server_host, config=server_config)
        tenant = Tenant(spec, self, config=config)
        self.tenants.append(tenant)
        return tenant

    # ------------------------------------------------------------- execution
    def run(self, limit_ns: Optional[int] = None,
            monitor: Optional["Monitor"] = None) -> None:
        """Drive the whole serving phase to completion (plus drain)."""
        if self._ran:
            raise RuntimeError("harness already ran")
        if not self.tenants:
            raise RuntimeError("no tenants registered")
        self._ran = True
        sim = self.cluster.sim
        self.start_ns = sim.now
        procs = [sim.spawn(tenant._driver(index),
                           name=f"serve-{tenant.spec.name}-d{index}")
                 for tenant in self.tenants
                 for index in range(len(tenant.spec.hosts))]

        def conduct() -> ProcessGenerator:
            for proc in procs:
                yield proc
            # Bounded completion drain: open loop means requests may
            # still be in flight when the schedule ends; stragglers
            # land in cooldown windows, and anything past the drain
            # deadline stays visible as `outstanding`.
            deadline = sim.now + self.drain_ns
            step = max(1, self.window_ns // 4)
            while any(tenant.outstanding for tenant in self.tenants):
                if sim.now >= deadline:
                    break
                yield sim.timeout(step)
            for tenant in self.tenants:
                yield from tenant.shutdown()
            yield sim.timeout(2 * MILLIS)   # let trailing CLOSEs settle

        waiter = sim.spawn(conduct())
        limit = (limit_ns if limit_ns is not None
                 else 4 * self.duration_ns + 10 * SECONDS)
        sim.run_until_event(waiter, limit=limit)
        for tenant in self.tenants:
            tenant.recorder.close(self.duration_ns)
        if monitor is not None:
            self._publish_series(monitor)

    def _publish_series(self, monitor: "Monitor") -> None:
        """Per-window achieved/offered rates as monitor series."""
        for tenant in self.tenants:
            name = tenant.spec.name
            for row in tenant.recorder.rows():
                at = self.start_ns + (row["window"] + 1) * self.window_ns
                monitor.gauge(f"serving.{name}.offered_rps", at,
                              row["offered_rps"])
                monitor.gauge(f"serving.{name}.achieved_rps", at,
                              row["achieved_rps"])

    # ------------------------------------------------------------- reporting
    def summaries(self) -> Dict[str, Dict[str, Any]]:
        return {tenant.spec.name: tenant.summary()
                for tenant in self.tenants}

    def window_rows(self) -> List[Dict[str, Any]]:
        """Every tenant's window table, tenant-stamped, in spec order."""
        rows: List[Dict[str, Any]] = []
        for tenant in self.tenants:
            rows.extend(tenant.window_rows())
        return rows
