"""ESSD: cloud-disk front-ends over Pangu (Sec. II-C).

A front-end stands for the QEMU/KVM half of the I/O path: it issues block
writes (128 KB by default, the Fig. 8 payload) against a block server and
records completion times — the aggregate IOPS timeline of Figs. 8 and 12a.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.apps.pangu import BLOCK_PORT
from repro.sim.timeunits import MILLIS, SECONDS
from repro.workloads.traces import Knot, rate_at
from repro.xrdma.channel import ChannelBroken

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.config import XrdmaConfig


class EssdFrontend:
    """One VM-side I/O issuer bound to a block server."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 block_server_host: int, io_bytes: int = 128 * 1024,
                 config: Optional["XrdmaConfig"] = None,
                 queue_depth: int = 8):
        self.cluster = cluster
        self.sim = cluster.sim
        self.host_id = host_id
        self.block_server_host = block_server_host
        self.io_bytes = io_bytes
        self.queue_depth = queue_depth
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"essd{host_id}")
        self.channel = None
        #: (completion_time_ns, latency_ns) per I/O
        self.completions: List[Tuple[int, int]] = []
        self.failures = 0

    def connect(self):
        """Generator: attach to the block server."""
        self.channel = yield from self.ctx.connect(self.block_server_host,
                                                   BLOCK_PORT)
        return self.channel

    # ------------------------------------------------------------- workloads
    def run_closed_loop(self, total_ios: int):
        """Generator: ``queue_depth`` outstanding I/Os until ``total_ios``."""
        if self.channel is None:
            yield from self.connect()
        issued = 0
        inflight = []
        while issued < total_ios or inflight:
            while issued < total_ios and len(inflight) < self.queue_depth:
                inflight.append((self.sim.now, self._issue()))
                issued += 1
            t0, request = inflight.pop(0)
            try:
                yield request.response
            except ChannelBroken:
                self.failures += 1
                return len(self.completions)
            self.completions.append((self.sim.now, self.sim.now - t0))
        return len(self.completions)

    def run_profile(self, profile: List[Knot], duration_ns: int):
        """Generator: open-loop I/O at the profile's (time-varying) IOPS."""
        if self.channel is None:
            yield from self.connect()
        started = self.sim.now
        while self.sim.now - started < duration_ns:
            iops = rate_at(profile, self.sim.now - started)
            if iops <= 0:
                yield self.sim.timeout(1 * MILLIS)
                continue
            gap = max(int(1 * SECONDS / iops), 1)
            t0 = self.sim.now
            request = self._issue()
            self.sim.spawn(self._collect(t0, request))
            yield self.sim.timeout(gap)
        return len(self.completions)

    def _issue(self):
        return self.ctx.send_request(self.channel, self.io_bytes,
                                     payload={"op": "frontend_write"})

    def _collect(self, t0, request):
        try:
            yield request.response
        except ChannelBroken:
            self.failures += 1
            return
        self.completions.append((self.sim.now, self.sim.now - t0))

    # ------------------------------------------------------------- reporting
    def iops_timeline(self, bucket_ns: int = 100 * MILLIS
                      ) -> List[Tuple[int, float]]:
        """(bucket_start_ns, IOPS) aggregation of completions (Fig. 8)."""
        if not self.completions:
            return []
        buckets = {}
        for when, _latency in self.completions:
            buckets.setdefault(when // bucket_ns, 0)
            buckets[when // bucket_ns] += 1
        return [(index * bucket_ns, count * (1 * SECONDS) / bucket_ns)
                for index, count in sorted(buckets.items())]

    def latencies_in(self, start_ns: int, end_ns: int) -> List[int]:
        return [latency for when, latency in self.completions
                if start_ns <= when < end_ns]
