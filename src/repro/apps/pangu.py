"""Pangu: the distributed file system under ESSD and X-DB (Sec. II-C).

Two roles per the paper:

* a **block server** receives data from the front-end and distributes
  2–3 copies to chunk servers on different machines via full-mesh
  X-RDMA communication;
* a **chunk server** persists chunks and acknowledges.

The full-mesh establishment (every block server to every chunk server) is
the memory-footprint and connect-storm scenario of Sec. III; benches for
Fig. 8/9/11 drive this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.timeunits import MICROS, SECONDS
from repro.xrdma.channel import ChannelBroken, XrdmaChannel
from repro.xrdma.context import XrdmaContext
from repro.xrdma.message import XrdmaMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.config import XrdmaConfig

CHUNK_PORT = 9200
BLOCK_PORT = 9300

#: chunk-server side storage-medium latency per write (SSD-class)
_STORE_NS = 20 * MICROS


class ChunkServer:
    """Stores chunks; one X-RDMA context, request handler on every channel."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 config: Optional["XrdmaConfig"] = None):
        self.cluster = cluster
        self.host_id = host_id
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"chunk{host_id}")
        self.chunks_written = 0
        self.bytes_written = 0
        self.ctx.listen(CHUNK_PORT)
        cluster.sim.spawn(self._serve(), name=f"chunk{host_id}:serve")

    def _serve(self):
        while True:
            msg = yield self.ctx.incoming.get()
            if not msg.is_request:
                continue
            op = (msg.payload or {}).get("op")
            if op == "write_chunk":
                yield self.ctx.sim.timeout(_STORE_NS)
                self.chunks_written += 1
                self.bytes_written += msg.payload_size
                self.ctx.send_response(msg, 64, payload={"ok": True})
            elif op == "read_chunk":
                size = msg.payload.get("size", 4096)
                self.ctx.send_response(msg, size, payload={"ok": True})
            else:
                self.ctx.send_response(msg, 64, payload={"ok": False})


class BlockServer:
    """Receives front-end I/O; replicates to chunk servers."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 replicas: int = 3, config: Optional["XrdmaConfig"] = None):
        self.cluster = cluster
        self.host_id = host_id
        self.replicas = replicas
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"block{host_id}")
        self.channels: Dict[int, XrdmaChannel] = {}     # chunk host -> channel
        self.writes_completed = 0
        self.write_latencies_ns: List[int] = []
        self._placement = itertools.count()
        self.ctx.listen(BLOCK_PORT)
        cluster.sim.spawn(self._serve(), name=f"block{host_id}:serve")

    # ------------------------------------------------------------- topology
    def connect_mesh(self, chunk_hosts: List[int]):
        """Generator: establish channels to every chunk server (the connect
        storm of Fig. 8)."""
        for chunk_host in chunk_hosts:
            channel = yield from self.ctx.connect(chunk_host, CHUNK_PORT)
            # keepAlive marks dead peers; drop them from placement so new
            # writes route around the failure instead of erroring forever.
            channel.on_broken = (
                lambda ch, host=chunk_host: self.channels.pop(host, None))
            self.channels[chunk_host] = channel
        return len(self.channels)

    def _pick_replicas(self) -> List[XrdmaChannel]:
        hosts = sorted(self.channels)
        if len(hosts) < self.replicas:
            raise RuntimeError(
                f"block{self.host_id}: only {len(hosts)} chunk servers "
                f"connected, need {self.replicas}")
        start = next(self._placement)
        picked = [hosts[(start + i) % len(hosts)]
                  for i in range(self.replicas)]
        return [self.channels[h] for h in picked]

    # ------------------------------------------------------------ data path
    def write_block(self, size: int):
        """Generator: replicate one block; returns the commit latency."""
        t0 = self.ctx.sim.now
        requests = []
        for channel in self._pick_replicas():
            requests.append(self.ctx.send_request(
                channel, size, payload={"op": "write_chunk"}))
        for request in requests:
            yield request.response
        latency = self.ctx.sim.now - t0
        self.writes_completed += 1
        self.write_latencies_ns.append(latency)
        return latency

    def _serve(self):
        """Front-end facing loop: each request is one block write."""
        while True:
            msg = yield self.ctx.incoming.get()
            if not msg.is_request:
                continue
            self.ctx.sim.spawn(self._handle_frontend(msg))

    def _handle_frontend(self, msg: XrdmaMessage):
        op = (msg.payload or {}).get("op", "frontend_write")
        try:
            if op == "frontend_read":
                size = msg.payload.get("size", 4096)
                yield from self.read_block(size)
                self.ctx.send_response(msg, size, payload={"ok": True})
            else:
                yield from self.write_block(msg.payload_size)
                self.ctx.send_response(msg, 64, payload={"ok": True})
        except (ChannelBroken, RuntimeError):
            self.ctx.send_response(msg, 64, payload={"ok": False})

    def read_block(self, size: int):
        """Generator: fetch one block from a single chunk replica."""
        channel = self._pick_replicas()[0]
        request = self.ctx.send_request(channel, 128,
                                        payload={"op": "read_chunk",
                                                 "size": size})
        yield request.response
        return size


@dataclass
class PanguDeployment:
    """A block-server/chunk-server deployment on a cluster."""

    cluster: "Cluster"
    block_servers: List[BlockServer] = field(default_factory=list)
    chunk_servers: List[ChunkServer] = field(default_factory=list)

    @classmethod
    def build(cls, cluster: "Cluster", block_hosts: List[int],
              chunk_hosts: List[int], replicas: int = 3,
              config: Optional["XrdmaConfig"] = None) -> "PanguDeployment":
        deployment = cls(cluster=cluster)
        for host in chunk_hosts:
            deployment.chunk_servers.append(
                ChunkServer(cluster, host, config=config))
        for host in block_hosts:
            deployment.block_servers.append(
                BlockServer(cluster, host, replicas=replicas, config=config))
        return deployment

    def establish_mesh(self, limit_ns: int = 300 * SECONDS) -> int:
        """Run the full-mesh connect storm; returns elapsed ns."""
        sim = self.cluster.sim
        chunk_hosts = [cs.host_id for cs in self.chunk_servers]
        t0 = sim.now
        procs = [sim.spawn(bs.connect_mesh(chunk_hosts))
                 for bs in self.block_servers]
        sim.run_until_event(sim.all_of(procs), limit=sim.now + limit_ns)
        return sim.now - t0

    @property
    def total_connections(self) -> int:
        return sum(len(bs.channels) for bs in self.block_servers)

    def qp_count(self) -> int:
        """Live QPs across the deployment (Fig. 11a)."""
        contexts = [bs.ctx for bs in self.block_servers] \
            + [cs.ctx for cs in self.chunk_servers]
        return sum(len(ctx.channels) + len(ctx.qpcache) for ctx in contexts)
