"""ERPC: the protobuf RPC framework over X-RDMA (Sec. VII-B).

The paper cites ERPC — "a protobuf RPC framework with RDMA support at
Alibaba" — as the project where X-RDMA saved ≥70% of development and
maintenance man-months.  This module is that framework: typed services
with named methods, a serialization cost model standing in for protobuf
encode/decode, client stubs with timeouts, and error propagation — all
in a few hundred lines because the transport concerns live in X-RDMA.

Usage::

    service = ErpcService("kv")
    @service.method
    def get(request):                 # dict in, (dict, nbytes) out
        return {"value": ...}, 128

    server = ErpcServer(ctx)
    server.register(service)
    server.serve(port=9800)

    client = ErpcClient(ctx)
    yield from client.connect(server_host, 9800)
    reply = yield from client.call("kv.get", {"key": "a"}, request_bytes=64)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.sim.events import AnyOf
from repro.sim.timeunits import SECONDS
from repro.xrdma.channel import ChannelBroken
from repro.xrdma.message import XrdmaMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.context import XrdmaContext

#: protobuf-ish serialization cost per byte, each direction
_SERIALIZE_PER_BYTE_NS = 0.25
_SERIALIZE_BASE_NS = 400

_call_ids = itertools.count(1)


class ErpcError(RuntimeError):
    """Remote method failed, unknown method, or call timed out."""


@dataclass
class _Envelope:
    """What rides as the message payload (the encoded protobuf)."""

    method: str
    body: Any
    call_id: int
    error: Optional[str] = None


class ErpcService:
    """A named collection of methods."""

    def __init__(self, name: str):
        self.name = name
        self.methods: Dict[str, Callable] = {}

    def method(self, fn: Callable) -> Callable:
        """Decorator: register ``fn`` as ``<service>.<fn name>``.

        Handlers take the request body and return ``(reply_body,
        reply_bytes)``; raising inside a handler propagates as an
        :class:`ErpcError` at the caller.
        """
        self.methods[fn.__name__] = fn
        return fn


class ErpcServer:
    """Dispatches incoming X-RDMA requests to registered services."""

    def __init__(self, ctx: "XrdmaContext"):
        self.ctx = ctx
        self.services: Dict[str, ErpcService] = {}
        self.calls_served = 0
        self.errors_returned = 0

    def register(self, service: ErpcService) -> None:
        if service.name in self.services:
            raise ValueError(f"service {service.name!r} already registered")
        self.services[service.name] = service

    def serve(self, port: int) -> None:
        """Listen and dispatch forever (spawns the server loop)."""
        self.ctx.listen(port)
        self.ctx.sim.spawn(self._loop(), name=f"erpc:{port}")

    def _loop(self):
        while True:
            msg = yield self.ctx.incoming.get()
            if not msg.is_request or not isinstance(msg.payload, _Envelope):
                continue
            self.ctx.sim.spawn(self._dispatch(msg))

    def _dispatch(self, msg: XrdmaMessage):
        envelope: _Envelope = msg.payload
        # Decode cost (protobuf parse).
        yield self.ctx.sim.timeout(
            _SERIALIZE_BASE_NS
            + int(msg.payload_size * _SERIALIZE_PER_BYTE_NS))
        service_name, _, method_name = envelope.method.partition(".")
        service = self.services.get(service_name)
        handler = service.methods.get(method_name) if service else None
        if handler is None:
            self.errors_returned += 1
            self._reply(msg, envelope, None, 64,
                        error=f"unknown method {envelope.method!r}")
            return
        try:
            body, nbytes = handler(envelope.body)
        except Exception as exc:  # xr-lint: disable=swallowed-error
            # Intentional RPC-server semantics: a handler error becomes an
            # error reply to the caller, not a server crash.
            self.errors_returned += 1
            self._reply(msg, envelope, None, 64, error=str(exc))
            return
        self.calls_served += 1
        yield self.ctx.sim.timeout(
            _SERIALIZE_BASE_NS + int(nbytes * _SERIALIZE_PER_BYTE_NS))
        self._reply(msg, envelope, body, nbytes)

    def _reply(self, msg: XrdmaMessage, envelope: _Envelope, body: Any,
               nbytes: int, error: Optional[str] = None) -> None:
        self.ctx.send_response(msg, nbytes, payload=_Envelope(
            method=envelope.method, body=body, call_id=envelope.call_id,
            error=error))


class ErpcClient:
    """Typed stub: connect once, call methods by name."""

    def __init__(self, ctx: "XrdmaContext"):
        self.ctx = ctx
        self.channel: Optional["XrdmaChannel"] = None
        self.calls_made = 0

    def connect(self, remote_host: int, port: int):
        """Generator: establish the underlying channel."""
        self.channel = yield from self.ctx.connect(remote_host, port)
        return self.channel

    def call(self, method: str, body: Any, request_bytes: int,
             timeout_ns: int = 2 * SECONDS):
        """Generator: one RPC; returns the reply body or raises ErpcError."""
        if self.channel is None:
            raise ErpcError("client is not connected")
        # Encode cost (protobuf serialize).
        yield self.ctx.sim.timeout(
            _SERIALIZE_BASE_NS + int(request_bytes * _SERIALIZE_PER_BYTE_NS))
        envelope = _Envelope(method=method, body=body,
                             call_id=next(_call_ids))
        try:
            request = self.ctx.send_request(self.channel, request_bytes,
                                            payload=envelope)
        except ChannelBroken as exc:
            raise ErpcError(f"transport failed: {exc}") from exc
        self.calls_made += 1
        timer = self.ctx.sim.timeout(timeout_ns)
        result = yield AnyOf(self.ctx.sim, [request.response, timer])
        if request.response not in result:
            raise ErpcError(f"call {method!r} timed out")
        reply_msg: XrdmaMessage = request.response.value
        reply: _Envelope = reply_msg.payload
        # Decode cost.
        yield self.ctx.sim.timeout(
            _SERIALIZE_BASE_NS
            + int(reply_msg.payload_size * _SERIALIZE_PER_BYTE_NS))
        if reply.error is not None:
            raise ErpcError(reply.error)
        return reply.body
