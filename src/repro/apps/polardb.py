"""PolarDB: the cloud-native database (Sec. II-C).

"PolarDB is rather different since there are two modes in its
implementation: one is for its own back-end and the other is for Pangu.
Both modes use RDMA."

* **native mode** — the database talks to its own PolarStore nodes
  directly (PolarFS-style: one hop, 2-way replication at the store).
* **pangu mode** — I/O goes through a Pangu block server (two hops,
  3-way chunk replication), reusing :mod:`repro.apps.pangu`.

Fig. 3's per-machine monitoring ("RDMA Send/Receive Ratio" alternating
with the day) is the traffic this front-end produces under a diurnal
profile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.apps.pangu import BLOCK_PORT
from repro.sim.timeunits import MICROS, MILLIS, SECONDS
from repro.workloads.traces import Knot, rate_at
from repro.xrdma.channel import ChannelBroken

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.config import XrdmaConfig

POLARSTORE_PORT = 9350
#: PolarStore node persistence latency (optane-class, faster than Pangu's)
_STORE_NS = 8 * MICROS


class PolarStoreNode:
    """Native-mode storage node: accepts replicated page writes."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 config: Optional["XrdmaConfig"] = None):
        self.cluster = cluster
        self.host_id = host_id
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"polarstore{host_id}")
        self.pages_written = 0
        self.ctx.listen(POLARSTORE_PORT)
        cluster.sim.spawn(self._serve(), name=f"polarstore{host_id}")

    def _serve(self):
        while True:
            msg = yield self.ctx.incoming.get()
            if not msg.is_request:
                continue
            yield self.ctx.sim.timeout(_STORE_NS)
            self.pages_written += 1
            self.ctx.send_response(msg, 64, payload={"ok": True})


class PolarDbFrontend:
    """The database engine's I/O layer, in either back-end mode."""

    def __init__(self, cluster: "Cluster", host_id: int, mode: str,
                 store_hosts: Optional[List[int]] = None,
                 block_server_host: Optional[int] = None,
                 page_bytes: int = 16 * 1024,
                 config: Optional["XrdmaConfig"] = None):
        if mode not in ("native", "pangu"):
            raise ValueError(f"unknown PolarDB mode {mode!r}")
        if mode == "native" and not store_hosts:
            raise ValueError("native mode needs store_hosts")
        if mode == "pangu" and block_server_host is None:
            raise ValueError("pangu mode needs a block_server_host")
        self.cluster = cluster
        self.sim = cluster.sim
        self.mode = mode
        self.store_hosts = store_hosts or []
        self.block_server_host = block_server_host
        self.page_bytes = page_bytes
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"polardb{host_id}")
        self._store_channels = []
        self._pangu_channel = None
        self.completions: List[Tuple[int, int]] = []
        self.failures = 0

    def connect(self):
        """Generator: attach to the configured back-end."""
        if self.mode == "native":
            for host in self.store_hosts:
                channel = yield from self.ctx.connect(host, POLARSTORE_PORT)
                self._store_channels.append(channel)
        else:
            self._pangu_channel = yield from self.ctx.connect(
                self.block_server_host, BLOCK_PORT)

    def write_page(self):
        """Generator: one replicated page write; records latency."""
        t0 = self.sim.now
        try:
            if self.mode == "native":
                # 2-way replication at the front-end (PolarFS chunk pairs).
                requests = [
                    self.ctx.send_request(channel, self.page_bytes,
                                          payload={"op": "put_page"})
                    for channel in self._store_channels[:2]
                ]
                for request in requests:
                    yield request.response
            else:
                request = self.ctx.send_request(
                    self._pangu_channel, self.page_bytes,
                    payload={"op": "frontend_write"})
                yield request.response
        except ChannelBroken:
            self.failures += 1
            return None
        latency = self.sim.now - t0
        self.completions.append((self.sim.now, latency))
        return latency

    def run_pages(self, count: int):
        """Generator: closed-loop page writes."""
        if not self._store_channels and self._pangu_channel is None:
            yield from self.connect()
        for _ in range(count):
            yield from self.write_page()
        return len(self.completions)

    def run_profile(self, profile: List[Knot], duration_ns: int):
        """Generator: open-loop writes at a time-varying page rate
        (the Fig. 3 diurnal workload)."""
        if not self._store_channels and self._pangu_channel is None:
            yield from self.connect()
        started = self.sim.now
        while self.sim.now - started < duration_ns:
            rate = rate_at(profile, self.sim.now - started)
            if rate <= 0:
                yield self.sim.timeout(1 * MILLIS)
                continue
            self.sim.spawn(self.write_page())
            yield self.sim.timeout(max(int(1 * SECONDS / rate), 1))
        return len(self.completions)
