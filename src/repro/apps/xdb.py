"""X-DB: the distributed transaction database front-end (Sec. II-C).

A MySQL-in-Docker front-end executes transactions against Pangu: each
transaction is a couple of small page reads plus a redo-log write, all over
X-RDMA.  Fig. 12b's latency/bandwidth shape comes from this driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.apps.pangu import BLOCK_PORT
from repro.sim.timeunits import MILLIS, SECONDS
from repro.workloads.traces import Knot, rate_at
from repro.xrdma.channel import ChannelBroken

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.config import XrdmaConfig

#: pages read per transaction
_READS_PER_TXN = 2
_PAGE_BYTES = 16 * 1024
_REDO_BYTES = 32 * 1024


class XdbFrontend:
    """One transaction issuer bound to a block server."""

    def __init__(self, cluster: "Cluster", host_id: int,
                 block_server_host: int,
                 config: Optional["XrdmaConfig"] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.host_id = host_id
        self.block_server_host = block_server_host
        self.ctx = cluster.xrdma_context(host_id, config=config,
                                         name=f"xdb{host_id}")
        self.channel = None
        self.txn_completions: List[Tuple[int, int]] = []
        self.failures = 0

    def connect(self):
        """Generator: attach to the block server."""
        self.channel = yield from self.ctx.connect(self.block_server_host,
                                                   BLOCK_PORT)
        return self.channel

    def run_transactions(self, count: int):
        """Generator: closed-loop transactions; returns completed count."""
        if self.channel is None:
            yield from self.connect()
        for _ in range(count):
            try:
                yield from self._one_txn()
            except ChannelBroken:
                self.failures += 1
                return len(self.txn_completions)
        return len(self.txn_completions)

    def run_profile(self, profile: List[Knot], duration_ns: int):
        """Generator: open-loop transactions at a time-varying TPS."""
        if self.channel is None:
            yield from self.connect()
        started = self.sim.now
        while self.sim.now - started < duration_ns:
            tps = rate_at(profile, self.sim.now - started)
            if tps <= 0:
                yield self.sim.timeout(1 * MILLIS)
                continue
            gap = max(int(1 * SECONDS / tps), 1)
            self.sim.spawn(self._txn_wrapper())
            yield self.sim.timeout(gap)
        return len(self.txn_completions)

    def _txn_wrapper(self):
        try:
            yield from self._one_txn()
        except ChannelBroken:
            self.failures += 1

    def _one_txn(self):
        """Two page reads (pipelined) then one redo-log write."""
        t0 = self.sim.now
        reads = [
            self.ctx.send_request(self.channel, 128,
                                  payload={"op": "frontend_read",
                                           "size": _PAGE_BYTES})
            for _ in range(_READS_PER_TXN)
        ]
        for request in reads:
            yield request.response
        redo = self.ctx.send_request(self.channel, _REDO_BYTES,
                                     payload={"op": "frontend_write"})
        yield redo.response
        self.txn_completions.append((self.sim.now, self.sim.now - t0))

    # ------------------------------------------------------------- reporting
    def tps_timeline(self, bucket_ns: int = 100 * MILLIS
                     ) -> List[Tuple[int, float]]:
        buckets = {}
        for when, _latency in self.txn_completions:
            buckets.setdefault(when // bucket_ns, 0)
            buckets[when // bucket_ns] += 1
        return [(index * bucket_ns, count * (1 * SECONDS) / bucket_ns)
                for index, count in sorted(buckets.items())]

    def latencies_in(self, start_ns: int, end_ns: int) -> List[int]:
        return [latency for when, latency in self.txn_completions
                if start_ns <= when < end_ns]
