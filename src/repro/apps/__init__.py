"""Production application models (Sec. II-C).

* :mod:`~repro.apps.pangu` — the distributed file system: block servers
  fan writes out to chunk servers over full-mesh X-RDMA channels with
  3-way replication.
* :mod:`~repro.apps.essd` — cloud-disk front-ends driving block servers
  with 128 KB I/O (Figs. 8, 12a).
* :mod:`~repro.apps.xdb` — the distributed database front-end: small
  reads + redo-log writes per transaction (Fig. 12b).
"""

from repro.apps.erpc import ErpcClient, ErpcError, ErpcServer, ErpcService
from repro.apps.essd import EssdFrontend
from repro.apps.pangu import BlockServer, ChunkServer, PanguDeployment
from repro.apps.polardb import PolarDbFrontend, PolarStoreNode
from repro.apps.xdb import XdbFrontend

__all__ = ["BlockServer", "ChunkServer", "ErpcClient", "ErpcError",
           "ErpcServer", "ErpcService", "EssdFrontend", "PanguDeployment",
           "PolarDbFrontend", "PolarStoreNode", "XdbFrontend"]
