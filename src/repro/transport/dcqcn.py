"""DCQCN (Zhu et al., SIGCOMM'15) — the fabric's reactive congestion control.

One :class:`DcqcnRateLimiter` per QP at the sender NIC:

* a CNP cuts the current rate by ``alpha/2`` and remembers the target,
* ``alpha`` decays while no CNPs arrive,
* a rate-increase timer runs fast recovery (binary convergence back to the
  target), then additive increase, then hyper increase.

The receiver side is :class:`CnpGovernor`: it turns ECN-marked arrivals into
CNP segments, at most one per ``dcqcn_cnp_interval_ns`` per flow.

Timers are evaluated *lazily*: rather than one process per QP (there can be
thousands), elapsed decay/increase periods are applied when the limiter is
next consulted.  This is behaviourally equivalent on the send path, which
only observes the rate when it transmits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams

#: Additive-increase step (bytes/s equivalent of 40 Mbps, the DCQCN default
#: scaled to the 25 Gbps links used here).
_RAI_BPS = 40e6
#: Hyper-increase step.
_RHAI_BPS = 400e6


class DcqcnRateLimiter:
    """Per-flow sender state; the NIC asks it when the next byte may go."""

    def __init__(self, sim: "Simulator", params: "SimParams",
                 line_rate_bps: float):
        self.sim = sim
        self.params = params
        self.line_rate = line_rate_bps
        self.current_rate = line_rate_bps
        self.target_rate = line_rate_bps
        self.alpha = 1.0
        self.cnps_seen = 0
        self._last_cnp_ns = -(10 ** 18)
        self._last_alpha_update_ns = 0
        self._last_increase_ns = 0
        self._increase_stage = 0
        #: earliest time the next segment may start transmitting
        self.next_tx_ns = 0

    # ---------------------------------------------------------------- events
    def on_cnp(self) -> None:
        """Rate cut on congestion notification."""
        self._advance(self.sim.now)
        self.cnps_seen += 1
        self.target_rate = self.current_rate
        self.alpha = (1 - self.params.dcqcn_alpha_g) * self.alpha \
            + self.params.dcqcn_alpha_g
        self.current_rate = max(
            self.params.dcqcn_min_rate_bps,
            self.current_rate * (1 - self.alpha / 2))
        now = self.sim.now
        self._last_cnp_ns = now
        self._last_alpha_update_ns = now
        self._last_increase_ns = now
        self._increase_stage = 0

    # ------------------------------------------------------------- send path
    def rate_bps(self) -> float:
        """Current sending rate after applying elapsed timer periods."""
        self._advance(self.sim.now)
        return self.current_rate

    def reserve(self, nbytes: int) -> int:
        """Reserve wire time for ``nbytes``; returns the earliest start time.

        The caller (the NIC scheduler) must not start transmitting the
        segment before the returned instant.
        """
        if not self.params.dcqcn_enabled:
            return self.sim.now
        rate = self.rate_bps()
        start = max(self.sim.now, self.next_tx_ns)
        self.next_tx_ns = start + int(round(nbytes * 8 / rate * 1e9))
        return start

    # --------------------------------------------------------------- internal
    def _advance(self, now: int) -> None:
        """Apply alpha decay and rate-increase periods elapsed since last look."""
        p = self.params
        # Alpha decay: one EWMA step per elapsed update period without CNP.
        periods = (now - self._last_alpha_update_ns) // p.dcqcn_alpha_update_ns
        if periods > 0:
            self.alpha *= (1 - p.dcqcn_alpha_g) ** min(int(periods), 10_000)
            self._last_alpha_update_ns += periods * p.dcqcn_alpha_update_ns

        # Rate increase stages.
        periods = (now - self._last_increase_ns) // p.dcqcn_rate_increase_ns
        if periods <= 0:
            return
        for _ in range(min(int(periods), 64)):
            self._increase_stage += 1
            if self._increase_stage > p.dcqcn_hyper_increase_stages * 2:
                self.target_rate = min(self.line_rate,
                                       self.target_rate + _RHAI_BPS)
            elif self._increase_stage > p.dcqcn_hyper_increase_stages:
                self.target_rate = min(self.line_rate,
                                       self.target_rate + _RAI_BPS)
            self.current_rate = (self.current_rate + self.target_rate) / 2
        self.current_rate = min(self.current_rate, self.line_rate)
        self._last_increase_ns += periods * p.dcqcn_rate_increase_ns


class CnpGovernor:
    """Receiver-side CNP pacing: at most one CNP per flow per interval."""

    def __init__(self, sim: "Simulator", params: "SimParams"):
        self.sim = sim
        self.params = params
        self._last_cnp: Dict[int, int] = {}

    def should_send_cnp(self, flow_id: int) -> bool:
        """True if an ECN-marked arrival on ``flow_id`` warrants a CNP now."""
        now = self.sim.now
        last = self._last_cnp.get(flow_id)
        if last is not None and now - last < self.params.dcqcn_cnp_interval_ns:
            return False
        self._last_cnp[flow_id] = now
        return True
