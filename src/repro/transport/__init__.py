"""End-to-end congestion control: the DCQCN rate controller."""

from repro.transport.dcqcn import CnpGovernor, DcqcnRateLimiter

__all__ = ["CnpGovernor", "DcqcnRateLimiter"]
