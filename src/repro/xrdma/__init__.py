"""X-RDMA: the paper's middleware, over the simulated verbs substrate.

Three data structures (Sec. IV-A) and the Table-I API surface:

* :class:`~repro.xrdma.context.XrdmaContext` — per-thread run-to-complete
  engine: hybrid polling, timers, memory cache, QP cache, config, tracing.
* :class:`~repro.xrdma.channel.XrdmaChannel` — one connection: seq-ack
  window, keepAlive liveness, flow control, mixed message model.
* :class:`~repro.xrdma.message.XrdmaMessage` — one request/response/oneway
  message with its header and completion events.

Protocol extensions (Sec. V): application-layer seq-ack window (RNR-free,
with NOP deadlock breaking), keepAlive via zero-byte RDMA Write, and flow
control (64 KB fragmentation + outstanding-WR queuing) layered over DCQCN.
"""

from repro.xrdma.channel import ChannelState, XrdmaChannel
from repro.xrdma.config import ConfigError, XrdmaConfig
from repro.xrdma.context import XrdmaContext
from repro.xrdma.memcache import MemCache, RdmaBuffer
from repro.xrdma.message import MessageKind, XrdmaHeader, XrdmaMessage
from repro.xrdma.qpcache import QpCache
from repro.xrdma.seqack import SeqAckWindow, WindowFull

__all__ = [
    "ChannelState",
    "ConfigError",
    "MemCache",
    "MessageKind",
    "QpCache",
    "RdmaBuffer",
    "SeqAckWindow",
    "WindowFull",
    "XrdmaChannel",
    "XrdmaConfig",
    "XrdmaContext",
    "XrdmaHeader",
    "XrdmaMessage",
]
