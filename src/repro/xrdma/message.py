"""X-RDMA messages and their wire headers.

Every transmission carries an :class:`XrdmaHeader` — in bare-data mode a
minimal seq/ack header, in req-rsp mode an extended header with tracing
fields (Sec. VI-A).  The header is what makes the protocol extensions work:
the piggybacked ``ack`` drives the seq-ack window on every message.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.xrdma.channel import XrdmaChannel

_msg_ids = itertools.count(1)

#: Header bytes added to every payload.
BARE_HEADER_BYTES = 16
#: Extended header with trace id + timestamps (req-rsp mode, Sec. VI-A).
REQRSP_HEADER_BYTES = 64


class MessageKind(Enum):
    """Message roles on a channel; control kinds never reach the app."""
    ONEWAY = auto()      #: fire-and-forget (acked by the window only)
    REQUEST = auto()     #: expects a response (built-in RPC)
    RESPONSE = auto()
    ACK = auto()         #: standalone window acknowledgement
    NOP = auto()         #: deadlock breaker (Sec. V-B)
    KEEPALIVE = auto()   #: zero-byte probe (never reaches the application)
    CLOSE = auto()       #: orderly shutdown; lets both sides recycle QPs
    RNDV_CTS = auto()    #: write-rendezvous grant: receiver names its buffer
    RNDV_FIN = auto()    #: write-rendezvous notify (rides the last WRITE_IMM)


@dataclass
class XrdmaHeader:
    """What actually rides the wire ahead of the payload."""

    kind: MessageKind
    seq: int
    ack: int
    msg_id: int
    payload_size: int
    #: large-message rendezvous: where the receiver should RDMA-Read from
    src_addr: int = 0
    src_rkey: int = 0
    large: bool = False
    #: write-rendezvous correlation: the data seq a control header
    #: (RNDV_CTS / RNDV_FIN, which ride with ``seq=-1``) refers to
    rendezvous_seq: int = -1
    #: RPC correlation
    request_msg_id: int = 0
    #: req-rsp tracing fields
    trace_id: int = 0
    sent_at_ns: int = 0
    #: XR-Trace span context for sampled messages (rides with the header
    #: end to end; None when unsampled or tracing is off)
    trace: Any = None
    #: opaque application payload riding with the header
    user_payload: Any = None

    def wire_bytes(self, req_rsp: bool) -> int:
        """Header size on the wire for the current tracing mode."""
        return REQRSP_HEADER_BYTES if req_rsp else BARE_HEADER_BYTES


@dataclass
class XrdmaMessage:
    """A message as the application sees it.

    Outgoing: returned by ``send_msg``; ``acked`` fires when the *peer
    application* has consumed it (window semantics, not just hardware
    delivery) and ``response`` fires for REQUESTs.

    Incoming: delivered by ``polling``/handlers with ``payload`` and
    ``channel`` set.
    """

    kind: MessageKind
    payload_size: int
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    channel: Optional["XrdmaChannel"] = None
    header: Optional[XrdmaHeader] = None
    #: sender side events (created by the channel when queued)
    acked: Optional["Event"] = None
    response: Optional["Event"] = None
    #: timestamps for tracing / latency accounting
    created_at: int = 0
    delivered_at: int = 0
    #: correlation for responses
    request_msg_id: int = 0

    @property
    def is_request(self) -> bool:
        """True for RPC requests (``send_response`` accepts these)."""
        return self.kind is MessageKind.REQUEST

    @property
    def is_response(self) -> bool:
        """True for RPC responses (matched to their request by id)."""
        return self.kind is MessageKind.RESPONSE
