"""The application-layer seq-ack window (Sec. V-B, Algorithm 1).

Both sides of a channel run one of these.  Sender side: ``seq`` counts
transmitted messages, ``acked`` the ones the *peer application* has
consumed; at most ``depth - 1`` may be in flight (the last ring slot is
reserved for the NOP deadlock breaker).  Receiver side: ``wta`` ("wait to
ack") counts arrivals, ``rta`` ("ready to ack") the prefix fully received —
a large message only becomes ready once its RDMA Read completed, so acks
track application-visible progress, not hardware delivery.

Because a sender never exceeds the window and the receiver pre-posts at
least ``depth`` receive buffers, a SEND can never meet an empty RQ:
**RNR-free by construction** (Fig. 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import invariants
from repro.analysis.invariants import check as _invariant


class WindowFull(RuntimeError):
    """No in-flight slot available (callers should queue, not drop)."""


class SeqAckWindow:
    """Ring-buffer window over message sequence numbers."""

    def __init__(self, depth: int) -> None:
        if depth < 2:
            raise ValueError("window depth must be >= 2 (NOP slot reserved)")
        self.depth = depth
        # Sender state.
        self.seq = 0           #: next sequence number to assign
        self.acked = 0         #: all < acked are consumed by the peer app
        # Receiver state.
        self.wta = 0           #: arrivals seen (right edge)
        self.rta = 0           #: contiguous prefix fully received
        self.sent_ack = 0      #: highest rta we have told the peer about
        self._pending_rx: Dict[int, bool] = {}   #: seq -> fully-received?
        #: seq -> XR-Trace context for sampled arrivals; the window is
        #: where "ready" happens, so it closes the ``window_ready`` span.
        self._traces: Dict[int, object] = {}

    # ------------------------------------------------------------ sender ops
    @property
    def in_flight(self) -> int:
        """Messages sent but not yet consumed by the peer application."""
        return self.seq - self.acked

    def can_send(self) -> bool:
        """One slot is always held back for NOP (deadlock breaking)."""
        return self.in_flight < self.depth - 1

    def can_send_nop(self) -> bool:
        """Whether the reserved NOP slot itself is still free."""
        return self.in_flight < self.depth

    def next_seq(self, nop: bool = False) -> int:
        """Claim the next sequence number (raises WindowFull when closed)."""
        if not (self.can_send_nop() if nop else self.can_send()):
            raise WindowFull(
                f"in_flight={self.in_flight} depth={self.depth}")
        seq = self.seq
        self.seq += 1
        self._audit()
        return seq

    def on_ack(self, ack: int) -> int:
        """Peer acknowledged everything below ``ack``; returns #newly acked."""
        if ack <= self.acked:
            return 0
        if ack > self.seq:
            raise ValueError(f"ack {ack} beyond seq {self.seq}")
        newly = ack - self.acked
        self.acked = ack
        self._audit()
        return newly

    # ---------------------------------------------------------- receiver ops
    def on_arrival(self, seq: int, complete: bool) -> None:
        """A message header arrived (``complete``: payload already whole).

        Large messages arrive incomplete; :meth:`on_complete` follows when
        the rendezvous read finishes.
        """
        if seq < self.rta:
            return  # stale duplicate: already part of the ready prefix
        if seq in self._pending_rx:
            # Middleware-level retransmit.  The retry may carry the
            # completeness the original lacked (payload whole by the time
            # it was resent): upgrade the flag — never downgrade — or the
            # message could never become ready.
            if complete and not self._pending_rx[seq]:
                self._pending_rx[seq] = True
                self._advance_rta()
            return
        self._pending_rx[seq] = complete
        if seq >= self.wta:
            self.wta = seq + 1
        self._advance_rta()

    def is_duplicate(self, seq: int) -> bool:
        """Whether ``seq`` was already seen (delivered or still pending)."""
        return seq < self.rta or seq in self._pending_rx

    def attach_trace(self, seq: int, trace: object) -> None:
        """Remember a sampled arrival's trace context until ``seq`` joins
        the ready prefix (call before :meth:`on_arrival` — a complete
        arrival advances rta immediately)."""
        self._traces[seq] = trace

    def drop_traces(self) -> None:
        """Channel teardown: pending arrivals will never become ready."""
        self._traces.clear()

    def on_complete(self, seq: int) -> None:
        """The payload for ``seq`` is now fully received/processed."""
        if seq < self.rta:
            return
        if seq not in self._pending_rx:
            raise ValueError(f"completion for unknown seq {seq}")
        self._pending_rx[seq] = True
        self._advance_rta()

    def _advance_rta(self) -> None:
        while self._pending_rx.get(self.rta, False):
            del self._pending_rx[self.rta]
            if self._traces:
                trace = self._traces.pop(self.rta, None)
                if trace is not None:
                    trace.mark("window_ready")
            self.rta += 1
        self._audit()

    # -------------------------------------------------------------- ack duty
    def ack_to_send(self) -> int:
        """Current cumulative ack to piggyback on the next transmission."""
        return self.rta

    def note_ack_sent(self) -> None:
        """Record that the current rta has been transmitted to the peer."""
        self.sent_ack = self.rta
        self._audit()

    def unacked_arrivals(self) -> int:
        """Messages consumed locally but not yet acked to the peer."""
        return self.rta - self.sent_ack

    # ------------------------------------------------------------ invariants
    def _audit(self) -> None:
        """Inline sanitizer hooks after every state mutation.

        Pure assertions (no clamping), so the whole body is gated on the
        sanitizer flag — _audit runs after *every* window mutation and
        would otherwise allocate four detail closures each time.
        """
        if not invariants.ENABLED:
            return
        _invariant(self.acked <= self.seq, "seqack.acked_gt_seq",
                   lambda: f"acked={self.acked} seq={self.seq}")
        _invariant(self.in_flight <= self.depth, "seqack.in_flight_bounds",
                   lambda: f"in_flight={self.in_flight} depth={self.depth}")
        _invariant(self.rta <= self.wta, "seqack.rta_gt_wta",
                   lambda: f"rta={self.rta} wta={self.wta}")
        _invariant(self.sent_ack <= self.rta, "seqack.sent_ack_gt_rta",
                   lambda: f"sent_ack={self.sent_ack} rta={self.rta}")

    # ------------------------------------------------------------- deadlock
    def stalled(self) -> bool:
        """True when we cannot send a normal message (window closed)."""
        return not self.can_send()
