"""The RDMA-enabled memory cache (Sec. IV-E).

MR registration costs tens of microseconds, and NIC translation-cache
pressure grows with MR count (the LITE lesson), so X-RDMA registers few,
large MRs — 4 MB each by default — and sub-allocates buffers from them.
Capacity grows by registering another MR and shrinks by reclaiming MRs that
have fallen completely idle.

``occupied_bytes`` (registered) vs ``in_use_bytes`` (handed out) are the two
curves of Fig. 11c.

Isolation mode (Sec. VI-C) places the arena at a distinct high address range
and tags buffers, so out-of-bound access bugs are detectable in tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.analysis.invariants import check as _invariant
from repro.memory.host import AllocMode, HostMemory
from repro.rnic.mr import AccessFlags, MemoryRegion
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.ctrlplane.mrcache import MrRegCache
    from repro.rnic.mr import ProtectionDomain
    from repro.verbs.api import VerbsContext

#: Isolated arenas start here — far above normal allocations, near the
#: stack, so stray pointers into the heap never alias cached buffers.
_ISOLATED_BASE = 0x7F00_0000_0000

_buffer_ids = itertools.count(1)


@dataclass
class RdmaBuffer:
    """A sub-allocation of a cached MR, ready for RDMA."""

    addr: int
    size: int
    mr: MemoryRegion
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))

    @property
    def rkey(self) -> int:
        return self.mr.rkey


class _Arena:
    """One registered MR plus a size-bucketed first-fit free list.

    The free store is indexed three ways so both hot operations are cheap
    while staying *exactly* first-fit equivalent to a naive address-sorted
    scan (the placement — lowest-address block with ``length >= size`` —
    is what the Fig. 11c occupancy behaviour and the golden schedule
    digests depend on):

    * ``_buckets`` — per size-class (``size.bit_length()``) min-heaps of
      block start addresses.  A request of class ``c`` scans only bucket
      ``c`` (whose blocks may or may not fit) plus the heap *roots* of the
      higher buckets (whose blocks all fit), instead of the whole list.
    * ``_sizes`` — live block start -> size; the ground truth.  Heap
      entries are lazily invalidated against it, so removal is O(1).
    * ``_ends`` — block end -> start, giving O(1) neighbour lookup for
      coalescing on release (the old path re-sorted the entire list).

    Lazy deletion means stale heap entries pile up under churn; the
    buckets are rebuilt from ``_sizes`` whenever total entries exceed
    twice the live block count (amortized O(1) per operation — without
    this the same-class scan degenerates quadratically).
    """

    def __init__(self, mr: MemoryRegion) -> None:
        self.mr = mr
        self.used_bytes = 0
        #: no-pin mode only: page indices already faulted resident.
        #: None (the default, pinned registration) means "all resident".
        self.resident_pages: Optional[set] = None
        self._buckets: Dict[int, List[int]] = {}
        self._sizes: Dict[int, int] = {}
        self._ends: Dict[int, int] = {}
        self._entries = 0            #: heap entries incl. stale ones
        #: bitmask of size classes with (possibly stale) entries; stale
        #: bits are cleared opportunistically during alloc scans.
        self._class_mask = 0
        self._insert_block(mr.addr, mr.length)

    # ------------------------------------------------------------ free store
    @property
    def free(self) -> List[Tuple[int, int]]:
        """Address-ordered ``(addr, size)`` view of the free blocks.

        Kept as the compatibility surface for the structural deep checks
        (and for tests that corrupt an arena on purpose): assigning to it
        reloads the bucketed store from scratch.
        """
        return sorted(self._sizes.items())

    @free.setter
    def free(self, blocks: Iterable[Tuple[int, int]]) -> None:
        self._sizes = dict(blocks)
        self._ends = {addr + size: addr for addr, size in self._sizes.items()}
        self._rebuild()

    def _insert_block(self, addr: int, size: int) -> None:
        self._sizes[addr] = size
        self._ends[addr + size] = addr
        klass = size.bit_length()
        heapq.heappush(self._buckets.setdefault(klass, []), addr)
        self._entries += 1
        self._class_mask |= 1 << klass

    def _remove_block(self, addr: int) -> int:
        size = self._sizes.pop(addr)
        del self._ends[addr + size]
        # The bucket heap entry goes stale and is skipped lazily.
        return size

    def _rebuild(self) -> None:
        """Drop every stale heap entry by rebuilding from the ground truth."""
        buckets: Dict[int, List[int]] = {}
        for addr, size in self._sizes.items():
            buckets.setdefault(size.bit_length(), []).append(addr)
        mask = 0
        for klass, heap in buckets.items():
            heapq.heapify(heap)
            mask |= 1 << klass
        self._buckets = buckets
        self._entries = len(self._sizes)
        self._class_mask = mask

    # ------------------------------------------------------------ operations
    def alloc(self, size: int) -> Optional[int]:
        sizes = self._sizes
        if self._entries > 2 * len(sizes) + 32:
            self._rebuild()
        buckets = self._buckets
        request_class = size.bit_length()
        best: Optional[int] = None
        # Same-class blocks may be smaller than the request; scan the
        # (compact, see _rebuild) bucket for fitting ones.
        if self._class_mask >> request_class & 1:
            for addr in buckets.get(request_class, ()):
                block = sizes.get(addr)
                if (block is not None and block >= size
                        and block.bit_length() == request_class
                        and (best is None or addr < best)):
                    best = addr
        # Every block of a higher class fits; only the lowest-address one
        # (the heap root, once stale roots are popped) can win first-fit.
        # The mask jumps straight to populated classes instead of probing
        # every class up to the arena size.
        mask = self._class_mask >> (request_class + 1) << (request_class + 1)
        while mask:
            low_bit = mask & -mask
            mask ^= low_bit
            klass = low_bit.bit_length() - 1
            heap = buckets.get(klass)
            while heap:
                block = sizes.get(heap[0])
                if block is not None and block.bit_length() == klass:
                    break
                heapq.heappop(heap)
                self._entries -= 1
            if heap:
                if best is None or heap[0] < best:
                    best = heap[0]
            else:
                self._class_mask &= ~low_bit     # bit was stale
        if best is None:
            return None
        block_size = self._remove_block(best)
        if block_size > size:
            self._insert_block(best + size, block_size - size)
        self.used_bytes += size
        return best

    def release(self, addr: int, size: int) -> None:
        self.used_bytes -= size
        if self.used_bytes < 0:
            _invariant(False, "memcache.used_underflow",
                       lambda: f"used_bytes={self.used_bytes} after "
                               f"release({addr:#x}, {size})")
            self.used_bytes = 0
        if not (self.mr.addr <= addr
                and addr + size <= self.mr.addr + self.mr.length):
            _invariant(False, "memcache.release_out_of_bounds",
                       lambda: f"release({addr:#x}, {size}) outside arena "
                               f"[{self.mr.addr:#x}, "
                               f"{self.mr.addr + self.mr.length:#x})")
        # Coalesce with the free neighbours on either side, if any.
        start, total = addr, size
        left_start = self._ends.get(addr)
        if left_start is not None:
            total += self._remove_block(left_start)
            start = left_start
        if addr + size in self._sizes:
            total += self._remove_block(addr + size)
        self._insert_block(start, total)

    @property
    def idle(self) -> bool:
        return self.used_bytes == 0


class MemCacheError(RuntimeError):
    """Allocation larger than an arena, or double free."""


class MemCache:
    """Per-context pool of RDMA-enabled memory."""

    def __init__(self, verbs: "VerbsContext", pd: "ProtectionDomain",
                 mr_bytes: int = 4 * 1024 * 1024,
                 alloc_mode: AllocMode = AllocMode.ANONYMOUS,
                 isolated: bool = False,
                 mr_cache: Optional["MrRegCache"] = None,
                 no_pin: bool = False) -> None:
        self.verbs = verbs
        self.pd = pd
        self.mr_bytes = mr_bytes
        self.alloc_mode = alloc_mode
        self.isolated = isolated
        #: control-plane registration cache: shrink releases arenas warm
        #: (still registered) and growth reuses them at zero driver cost.
        self.mr_cache = mr_cache
        #: NP-RDMA-style on-demand paging: registration skips pinning,
        #: first touch of each page pays fault latency at buffer hand-out.
        self.no_pin = no_pin
        self._arenas: List[_Arena] = []
        self._live: Dict[int, Tuple[_Arena, RdmaBuffer]] = {}
        self._isolated_cursor = _ISOLATED_BASE
        self.grow_count = 0
        self.shrink_count = 0
        self.cached_grows = 0        #: growths served by the warm MR cache
        self.page_faults = 0         #: fault events (no-pin mode)
        self.pages_faulted = 0       #: pages made resident (no-pin mode)
        self.out_of_bound_hits = 0

    # ------------------------------------------------------------ accounting
    @property
    def occupied_bytes(self) -> int:
        """Registered (reserved) capacity — the "Occupy" curve of Fig. 11c."""
        return len(self._arenas) * self.mr_bytes

    @property
    def in_use_bytes(self) -> int:
        """Handed-out bytes — the "In-use" curve of Fig. 11c."""
        return sum(arena.used_bytes for arena in self._arenas)

    @property
    def mr_count(self) -> int:
        return len(self._arenas)

    # ------------------------------------------------------------ allocation
    def alloc(self, size: int) -> ProcessGenerator:
        """Generator: allocate ``size`` bytes, registering a new MR if needed.

        ``yield from`` it inside a sim process; returns an
        :class:`RdmaBuffer`.
        """
        if size > self.mr_bytes:
            raise MemCacheError(
                f"allocation {size} exceeds the arena size {self.mr_bytes}; "
                "register dedicated memory instead")
        for arena in self._arenas:
            addr = arena.alloc(size)
            if addr is not None:
                fault_ns = self._fault_in(arena, addr, size)
                if fault_ns:
                    yield self.verbs.sim.timeout(fault_ns)
                return self._make_buffer(arena, addr, size)
        arena = yield from self._grow()
        addr = arena.alloc(size)
        if addr is None:  # pragma: no cover - fresh arena must fit
            raise MemCacheError("fresh arena failed to satisfy allocation")
        fault_ns = self._fault_in(arena, addr, size)
        if fault_ns:
            yield self.verbs.sim.timeout(fault_ns)
        return self._make_buffer(arena, addr, size)

    def try_alloc(self, size: int) -> Optional[RdmaBuffer]:
        """Non-blocking: allocate from existing arenas only.

        In no-pin mode the pages are made resident with the fault
        *counted* but not charged — a non-blocking path cannot inject
        latency (the generator :meth:`alloc` is the accurate path).
        """
        if size > self.mr_bytes:
            raise MemCacheError(
                f"allocation {size} exceeds the arena size {self.mr_bytes}")
        for arena in self._arenas:
            addr = arena.alloc(size)
            if addr is not None:
                self._fault_in(arena, addr, size)
                return self._make_buffer(arena, addr, size)
        return None

    def free(self, buffer: RdmaBuffer) -> None:
        entry = self._live.pop(buffer.buffer_id, None)
        if entry is None:
            raise MemCacheError(
                f"double free or foreign buffer id={buffer.buffer_id}")
        arena, _ = entry
        if arena not in self._arenas:
            # Releasing into a reclaimed MR would silently skew the
            # Fig. 11c occupancy curves (the arena is no longer summed).
            raise MemCacheError(
                f"buffer id={buffer.buffer_id} belongs to an arena already "
                "reclaimed by shrink(); release-after-reclaim corrupts "
                "the occupancy accounting")
        arena.release(buffer.addr, buffer.size)

    def check_access(self, addr: int, size: int) -> bool:
        """Isolation-mode bounds check; counts violations (Sec. VI-C)."""
        for arena in self._arenas:
            if arena.mr.contains(addr, size):
                return True
        self.out_of_bound_hits += 1
        return False

    # ------------------------------------------------------------- lifecycle
    def shrink(self) -> int:
        """Deregister fully idle arenas (keeping one warm); returns count.

        An arena still backing live buffers is never reclaimed, even if
        its byte accounting claims idleness — the handed-out buffers are
        the ground truth.
        """
        live_arenas = {id(arena) for arena, _ in self._live.values()}
        reclaimable = [a for a in self._arenas
                       if a.idle and id(a) not in live_arenas]
        keep_one = 1 if len(reclaimable) == len(self._arenas) else 0
        victims = reclaimable[keep_one:] if keep_one else reclaimable
        for arena in victims:
            self._arenas.remove(arena)
            if self.mr_cache is not None:
                # Lazy deregistration: the MR stays warm (registered and
                # pinned) in the cache; a later growth reuses it free.
                self.mr_cache.release(arena.mr)
            else:
                self.verbs.nic.mr_table.remove(arena.mr)
                self.pd.deregister(arena.mr)
            self.shrink_count += 1
        return len(victims)

    def prewarm(self, arenas: int) -> ProcessGenerator:
        """Generator: register ``arenas`` MRs up front."""
        for _ in range(arenas):
            yield from self._grow()

    # -------------------------------------------------------------- internal
    def _grow(self) -> ProcessGenerator:
        if self.mr_cache is not None:
            mr = self.mr_cache.lookup(self.mr_bytes)
            if mr is not None:
                # Warm hit: the MR (and its backing memory) is still
                # registered — no driver call, no sim time.  Its pages are
                # resident from the previous life, so even no-pin mode
                # treats a cached arena as fully faulted in.
                arena = _Arena(mr)
                self._arenas.append(arena)
                self.grow_count += 1
                self.cached_grows += 1
                return arena
        if self.isolated:
            base = self._isolated_cursor
            self._isolated_cursor += self.mr_bytes * 2  # guard gap between MRs
            addr = base
        else:
            allocation = self.verbs.memory.alloc(self.mr_bytes,
                                                 self.alloc_mode)
            addr = allocation.addr
        if self.no_pin:
            mr = yield self.verbs.reg_mr_odp(self.pd, addr, self.mr_bytes,
                                             AccessFlags.all_remote())
        else:
            mr = yield self.verbs.reg_mr(self.pd, addr, self.mr_bytes,
                                         AccessFlags.all_remote())
        arena = _Arena(mr)
        if self.no_pin:
            arena.resident_pages = set()
        self._arenas.append(arena)
        self.grow_count += 1
        return arena

    def _fault_in(self, arena: _Arena, addr: int, size: int) -> int:
        """No-pin mode: make ``[addr, addr+size)`` resident; returns the
        fault latency to charge (0 when already resident or pinned)."""
        if arena.resident_pages is None:
            return 0
        first = (addr - arena.mr.addr) // 4096
        last = (addr + size - 1 - arena.mr.addr) // 4096
        new_pages = [page for page in range(first, last + 1)
                     if page not in arena.resident_pages]
        if not new_pages:
            return 0
        arena.resident_pages.update(new_pages)
        self.page_faults += 1
        self.pages_faulted += len(new_pages)
        return self.verbs.params.odp_page_fault_ns(len(new_pages))

    def _make_buffer(self, arena: _Arena, addr: int, size: int) -> RdmaBuffer:
        buffer = RdmaBuffer(addr=addr, size=size, mr=arena.mr)
        self._live[buffer.buffer_id] = (arena, buffer)
        return buffer
