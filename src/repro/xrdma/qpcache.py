"""Compatibility shim: the QP cache moved to :mod:`repro.ctrlplane`.

The control plane (QP cache, MR registration cache, no-pin mode) now
lives in its own package; import :class:`QpCache` from
``repro.ctrlplane`` in new code.  This module keeps the historical
``repro.xrdma.qpcache`` import path working.
"""

from repro.ctrlplane.qpcache import QpCache

__all__ = ["QpCache"]
