"""The QP cache (Sec. IV-E).

Creating a QP costs ~1 ms of driver/firmware work; destroying one wastes
that investment.  X-RDMA instead moves dead QPs to RESET and keeps them in
a per-context pool; establishment reuses them, cutting per-connection setup
from ≈3.9 ms to ≈2.5 ms (Sec. VII-C).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.rnic.qp import QpState, QueuePair
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.cq import CompletionQueue
    from repro.rnic.mr import ProtectionDomain
    from repro.verbs.api import VerbsContext


class QpCache:
    """Pool of RESET-state QPs ready for reuse."""

    def __init__(self, verbs: "VerbsContext", pd: "ProtectionDomain",
                 send_cq: "CompletionQueue", recv_cq: "CompletionQueue",
                 capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.verbs = verbs
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.capacity = capacity
        self._pool: Deque[QueuePair] = deque()
        self.hits = 0
        self.misses = 0
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._pool)

    def get(self) -> Optional[QueuePair]:
        """A recycled RESET QP, or None (caller creates one at full cost)."""
        if self._pool:
            self.hits += 1
            return self._pool.popleft()
        self.misses += 1
        return None

    def put(self, qp: QueuePair) -> ProcessGenerator:
        """Generator: recycle a QP — reset it and pool it (or destroy it
        when the pool is full).  ``yield from`` inside a sim process."""
        if len(self._pool) >= self.capacity:
            yield self.verbs.destroy_qp(qp)
            return
        yield self.verbs.modify_qp(qp, QpState.RESET)
        self._pool.append(qp)
        self.recycled += 1

    def prewarm(self, count: int) -> ProcessGenerator:
        """Generator: pre-create ``count`` QPs at startup (amortized cost)."""
        for _ in range(count):
            if len(self._pool) >= self.capacity:
                break
            qp = yield self.verbs.create_qp(self.pd, self.send_cq,
                                            self.recv_cq)
            self._pool.append(qp)
