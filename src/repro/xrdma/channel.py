"""One X-RDMA channel (connection).

The channel implements the message model of Sec. IV-C over one RC QP:

* **small messages** (≤ ``small_msg_size``) go eagerly as SEND_IMM — one
  RDMA operation, receive buffers pre-posted from the memory cache;
* **large messages** rendezvous — *how* is pluggable: the configured
  :class:`~repro.xrdma.protocol.RendezvousStrategy` moves the payload.
  The default (``rendezvous_variant="read"``) is the paper's design: a
  header-only SEND announces (size, addr, rkey); the *receiver*
  allocates on demand and RDMA-Reads the payload — the same "Read
  replaces Write" path serves large RPC responses.  The ``"write"``
  variant is sender Write-with-notify (CTS grant + WRITE_IMM FIN);
* every transmission piggybacks the seq-ack window's cumulative ack;
* keepAlive probes are zero-byte RDMA Writes the peer RNIC acknowledges in
  hardware;
* data WRs flow through the per-channel :class:`FlowController`.

The send and rendezvous paths live in :mod:`repro.xrdma.protocol`; the
channel owns the state (window, queues, ``_rendezvous``,
``_write_pending``) and delegates wire decisions to the strategies its
:class:`~repro.xrdma.protocol.ProtocolPolicy` selects per message.

All generator methods are driven by the owning context's run-to-complete
loop — the channel never blocks anyone else's progress.
"""

from __future__ import annotations

import itertools
from collections import deque
from enum import Enum, auto
from typing import TYPE_CHECKING, Deque, Dict, Tuple

from repro.analysis import invariants
from repro.analysis.invariants import check as _invariant
from repro.rnic.qp import QpState
from repro.rnic.wqe import Completion, Opcode, WorkRequest
from repro.sim.process import ProcessGenerator
from repro.xrdma.flowctl import FlowController
from repro.xrdma.memcache import RdmaBuffer
from repro.xrdma.message import (MessageKind, XrdmaHeader, XrdmaMessage)
from repro.xrdma.protocol import ProtocolPolicy, _Rendezvous, _WrRoute
from repro.xrdma.seqack import SeqAckWindow

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.cm import CmConnection
    from repro.xrdma.context import XrdmaContext

_channel_ids = itertools.count(1)
_trace_ids = itertools.count(1)


class ChannelState(Enum):
    """Lifecycle of a channel (READY until closed or found dead)."""
    READY = auto()
    BROKEN = auto()     #: peer dead or QP errored; resources released
    CLOSED = auto()     #: orderly shutdown


class ChannelBroken(RuntimeError):
    """Raised into waiters when the channel dies under them."""


class XrdmaChannel:
    """One established connection between two X-RDMA contexts."""

    def __init__(self, ctx: "XrdmaContext", conn: "CmConnection",
                 window_depth: int) -> None:
        self.ctx = ctx
        self.conn = conn
        self.qp = conn.qp
        self.channel_id = next(_channel_ids)
        self.state = ChannelState.READY
        self.window = SeqAckWindow(window_depth)
        self.flow = FlowController(
            ctx.verbs, self.qp,
            max_outstanding=ctx.config.max_outstanding_wrs,
            fragment_bytes=ctx.config.fragment_bytes,
            enabled=ctx.config.flow_control,
            budget=ctx.wr_budget)
        self.protocol = ProtocolPolicy(ctx.config)
        self.pending_send: Deque[XrdmaMessage] = deque()
        self.sent: Dict[int, XrdmaMessage] = {}          # seq -> message
        self.pending_requests: Dict[int, XrdmaMessage] = {}  # msg_id -> req
        self._rendezvous: Dict[int, _Rendezvous] = {}    # seq -> state
        #: write-rendezvous sender side: seq -> message awaiting its CTS
        self._write_pending: Dict[int, XrdmaMessage] = {}
        #: completed arrivals awaiting in-order delivery to the app
        self._pending_delivery: Dict[int, Tuple[XrdmaHeader, int]] = {}
        self._next_deliver_seq = 0
        self._recv_buffers: Deque[RdmaBuffer] = deque()
        self.last_rx_ns = ctx.sim.now
        self.last_tx_ns = ctx.sim.now
        self.keepalive_in_flight = False
        self.on_request = None        #: optional handler(msg) for RPC servers
        self.on_broken = None         #: callback(channel) on failure
        self.stats = {
            "tx_msgs": 0, "rx_msgs": 0, "tx_bytes": 0, "rx_bytes": 0,
            "acks_sent": 0, "nops_sent": 0, "keepalives_sent": 0,
            "rendezvous_reads": 0, "rendezvous_writes": 0, "queued_peak": 0,
        }

    # ------------------------------------------------------------ public api
    @property
    def remote_host(self) -> int:
        """Peer host id."""
        return self.conn.remote_host

    @property
    def is_ready(self) -> bool:
        """True while the channel can carry traffic (strategy guard)."""
        return self.state is ChannelState.READY

    def queue_message(self, msg: XrdmaMessage) -> XrdmaMessage:
        """Accept a message for transmission (called by context.send_msg)."""
        if self.state is not ChannelState.READY:
            raise ChannelBroken(f"channel {self.channel_id} is {self.state.name}")
        msg.channel = self
        msg.created_at = self.ctx.sim.now
        msg.acked = self.ctx.sim.event(f"ch{self.channel_id}:acked")
        msg.acked.defused = True
        if msg.kind is MessageKind.REQUEST:
            msg.response = self.ctx.sim.event(f"ch{self.channel_id}:resp")
            msg.response.defused = True
            self.pending_requests[msg.msg_id] = msg
        self.pending_send.append(msg)
        self.stats["queued_peak"] = max(self.stats["queued_peak"],
                                        len(self.pending_send))
        return msg

    # --------------------------------------------------------------- tx pump
    def pump(self) -> ProcessGenerator:
        """Generator: move queued messages onto the wire while the window
        has room (driven by the context loop)."""
        while (self.pending_send and self.window.can_send()
               and self.state is ChannelState.READY):
            msg = self.pending_send.popleft()
            seq = self.window.next_seq()
            if invariants.ENABLED:
                _invariant(seq not in self.sent, "channel.seq_reuse",
                           lambda: f"channel {self.channel_id} seq {seq}")
            header = self._make_header(msg, seq)
            self.sent[seq] = msg
            msg.header = header
            yield from self.protocol.select(header).send(self, msg, header)
            if self.state is not ChannelState.READY:
                return      # broke during the send; mark_broken swept us
            self.stats["tx_msgs"] += 1
            self.stats["tx_bytes"] += msg.payload_size
            self.last_tx_ns = self.ctx.sim.now
            self.window.note_ack_sent()

    def _make_header(self, msg: XrdmaMessage, seq: int) -> XrdmaHeader:
        config = self.ctx.config
        header = XrdmaHeader(
            kind=msg.kind, seq=seq, ack=self.window.ack_to_send(),
            msg_id=msg.msg_id, payload_size=msg.payload_size,
            large=self.protocol.is_large(msg.payload_size),
            request_msg_id=msg.request_msg_id,
            user_payload=msg.payload)
        if config.req_rsp_mode:
            header.trace_id = next(_trace_ids)
            header.sent_at_ns = self.ctx.local_time()
            tracer = self.ctx.tracer
            if tracer is not None:
                header.trace = tracer.begin_trace(self, msg, header)
        return header

    def send_control(self, kind: MessageKind, *, rendezvous_seq: int = -1,
                     src_addr: int = 0, src_rkey: int = 0) -> ProcessGenerator:
        """Generator: standalone control SEND (no window slot consumed).

        ACK and NOP for the window; RNDV_CTS for the write-rendezvous
        grant (``rendezvous_seq`` + the receiver buffer's addr/rkey).
        The ack bookkeeping runs *after* the post yield: if the post
        fails or the channel breaks while this process is suspended, the
        window must not believe an ack went out.
        """
        header = XrdmaHeader(
            kind=kind, seq=-1, ack=self.window.ack_to_send(),
            msg_id=0, payload_size=0, src_addr=src_addr, src_rkey=src_rkey,
            rendezvous_seq=rendezvous_seq)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            length=header.wire_bytes(self.ctx.config.req_rsp_mode),
            payload=header)
        self.ctx.route_wr(wr, self, _WrRoute(tag="ctrl", header=header))
        self.last_tx_ns = self.ctx.sim.now
        yield self.ctx.verbs.post_send(self.qp, wr)
        if self.state is not ChannelState.READY:
            return      # broke mid-post; the ack never left
        self.window.note_ack_sent()
        if kind is MessageKind.ACK:
            self.stats["acks_sent"] += 1
        elif kind is MessageKind.NOP:
            self.stats["nops_sent"] += 1

    def keepalive_probe(self) -> ProcessGenerator:
        """Generator: zero-byte RDMA Write; the peer RNIC acks in hardware."""
        if self.keepalive_in_flight or self.state is not ChannelState.READY:
            return
        self.keepalive_in_flight = True
        self.stats["keepalives_sent"] += 1
        wr = WorkRequest(opcode=Opcode.WRITE, length=0, remote_addr=0, rkey=1)
        self.ctx.route_wr(wr, self, _WrRoute(tag="keepalive"))
        yield self.ctx.verbs.post_send(self.qp, wr)

    # ------------------------------------------------------------- rx path
    def on_receive(self, completion: Completion) -> ProcessGenerator:
        """Generator: process one inbound message header (from a RECV CQE)."""
        header: XrdmaHeader = completion.payload
        self.last_rx_ns = self.ctx.sim.now
        if header.ack >= 0:
            self._apply_peer_ack(header.ack)
        if header.kind in (MessageKind.ACK, MessageKind.NOP):
            yield from self.pump()      # freed window slots: move the queue
            return
        if header.kind in (MessageKind.RNDV_CTS, MessageKind.RNDV_FIN):
            # Write-rendezvous control: rides with seq == -1 (like
            # ACK/NOP, no window slot); correlated by rendezvous_seq.
            yield from self.protocol.rendezvous.on_control(self, header)
            yield from self.pump()      # its piggybacked ack freed slots
            return
        if header.kind is MessageKind.CLOSE:
            yield from self.ctx.close_channel(self, notify=False)
            return
        # A retransmitted header must be idempotent: the window absorbs
        # (or upgrades) it, but starting a second rendezvous would leak
        # the first read's buffer, and re-staging delivery would strand a
        # stale entry behind the delivery cursor forever.
        duplicate = self.window.is_duplicate(header.seq)
        if not duplicate and header.trace is not None:
            # Attach before on_arrival: a complete arrival advances rta
            # (and closes the window_ready span) immediately.
            self.window.attach_trace(header.seq, header.trace)
        self.window.on_arrival(header.seq, complete=not header.large)
        if header.large:
            if not duplicate:
                yield from self.protocol.rendezvous.on_announce(self, header)
        else:
            if not duplicate:
                # Delivery is strictly in sequence order: a small message
                # must not overtake an earlier large one whose read is in
                # flight.
                self._pending_delivery[header.seq] = (header,
                                                      self.ctx.sim.now)
            self._flush_deliveries()
        yield from self._post_arrival_duties()

    def _flush_deliveries(self) -> None:
        """Hand the app every message inside the window's ready prefix."""
        if invariants.ENABLED:
            _invariant(self._next_deliver_seq <= self.window.rta,
                       "channel.delivery_ahead_of_rta",
                       lambda: f"next_deliver={self._next_deliver_seq} "
                               f"rta={self.window.rta}")
        while self._next_deliver_seq < self.window.rta:
            entry = self._pending_delivery.pop(self._next_deliver_seq, None)
            self._next_deliver_seq += 1
            if entry is not None:
                header, arrived_at = entry
                self._deliver(header, arrived_at)

    def _post_arrival_duties(self) -> ProcessGenerator:
        """Ack decisions + window movement after arrivals advance rta."""
        yield from self.pump()
        threshold = max(1, self.window.depth // 4)
        if (self.window.unacked_arrivals() >= threshold
                and not self.pending_send
                and self.state is ChannelState.READY):
            yield from self.send_control(MessageKind.ACK)

    def _apply_peer_ack(self, ack: int) -> None:
        newly = self.window.on_ack(ack)
        if newly == 0:
            return
        for seq in range(ack - newly, ack):
            msg = self.sent.pop(seq, None)
            if msg is None:
                continue
            if getattr(msg, "owns_buffer", False):
                self.ctx.memcache.free(msg.src_buffer)
                msg.owns_buffer = False
            if msg.acked is not None and not msg.acked.triggered:
                msg.acked.succeed(self.ctx.sim.now - msg.created_at)
            if self.ctx.tracer is not None:
                self.ctx.tracer.on_message_acked(self, msg)

    def _finish_rendezvous(self, seq: int) -> ProcessGenerator:
        """Generator: the payload has landed — complete the window slot,
        stage delivery, and release the landing buffer (idempotent)."""
        rendezvous = self._rendezvous.pop(seq, None)
        if rendezvous is None:
            return
        if rendezvous.header.trace is not None:
            rendezvous.header.trace.mark("rendezvous_read")
        self.window.on_complete(seq)
        self._pending_delivery[seq] = (rendezvous.header,
                                       rendezvous.started_at)
        self._flush_deliveries()
        if rendezvous.buffer is not None:
            self.ctx.memcache.free(rendezvous.buffer)
        yield from self._post_arrival_duties()

    def _deliver(self, header: XrdmaHeader, arrived_at: int) -> None:
        self.stats["rx_msgs"] += 1
        self.stats["rx_bytes"] += header.payload_size
        msg = XrdmaMessage(
            kind=header.kind, payload_size=header.payload_size,
            payload=header.user_payload, channel=self, header=header,
            request_msg_id=header.request_msg_id)
        msg.created_at = arrived_at
        msg.delivered_at = self.ctx.sim.now
        if header.trace is not None:
            header.trace.mark("rx_deliver")
        if self.ctx.tracer is not None:
            self.ctx.tracer.on_message_delivered(self, msg)
        if header.kind is MessageKind.RESPONSE:
            request = self.pending_requests.pop(header.request_msg_id, None)
            if request is not None:
                if request.response is not None and not request.response.triggered:
                    request.response.succeed(msg)
                return
        if header.kind is MessageKind.REQUEST and self.on_request is not None:
            self.on_request(msg)
            return
        self.ctx.deliver(msg)

    # -------------------------------------------------------- cqe dispatch
    def on_send_completion(self, completion: Completion,
                           route: _WrRoute) -> ProcessGenerator:
        """Generator: route one send-side CQE."""
        if not completion.ok:
            self.mark_broken(f"send CQE error: {completion.status.name}")
            return
        if route.tag == "keepalive":
            self.keepalive_in_flight = False
            return
        if route.tag == "ctrl":
            return
        # Data WRs participate in flow control.
        yield from self.flow.on_completion()
        yield from self.protocol.rendezvous.on_data_completion(self, route)

    # -------------------------------------------------------------- failure
    def mark_broken(self, reason: str) -> None:
        """Release everything; fail waiters (keepAlive's whole purpose)."""
        if self.state is not ChannelState.READY:
            return
        self.state = ChannelState.BROKEN
        error = ChannelBroken(
            f"channel {self.channel_id} to host {self.remote_host}: {reason}")
        for msg in list(self.sent.values()) + list(self.pending_send):
            if getattr(msg, "owns_buffer", False):
                self.ctx.memcache.free(msg.src_buffer)
                msg.owns_buffer = False
            if msg.acked is not None and not msg.acked.triggered:
                msg.acked.fail(error)
        for msg in self.pending_requests.values():
            if msg.response is not None and not msg.response.triggered:
                msg.response.fail(error)
        self.sent.clear()
        self.pending_send.clear()
        self.pending_requests.clear()
        # Write-rendezvous messages awaiting a CTS are also in `sent`
        # (their buffers were just freed above); drop the correlation.
        self._write_pending.clear()
        for rendezvous in self._rendezvous.values():
            if rendezvous.buffer is not None:
                self.ctx.memcache.free(rendezvous.buffer)
        self._rendezvous.clear()
        self._pending_delivery.clear()
        self.window.drop_traces()
        self.flow.drop_all()
        while self._recv_buffers:
            self.ctx.memcache.free(self._recv_buffers.popleft())
        self.ctx.on_channel_broken(self)
        if self.on_broken is not None:
            self.on_broken(self)

    # ------------------------------------------------------------- liveness
    def idle_ns(self, now: int) -> int:
        """Time since the last traffic in either direction (keepAlive)."""
        return now - max(self.last_rx_ns, self.last_tx_ns)

    def needs_nop(self) -> bool:
        """Deadlock check: queued traffic, closed window, unsent acks."""
        return (bool(self.pending_send) and self.window.stalled()
                and self.window.unacked_arrivals() > 0)
