"""Pluggable messaging-protocol strategies (the Taranov taxonomy axes).

X-RDMA fixes one design point of the messaging protocol (Sec. IV-C):
eager SEND_IMM below ``small_msg_size``, receiver-driven rendezvous Read
above it.  This module makes that point *searchable*: the channel's send
and rendezvous paths are strategy objects selected per message by a
:class:`ProtocolPolicy`, so XR-Fleet can grid the protocol axes —

* **eager threshold** (``small_msg_size``) — where eager hands over to
  rendezvous,
* **rendezvous variant** (``rendezvous_variant``) — who moves the bytes:

  - ``read`` (the paper's design): the announce carries the *sender's*
    buffer (addr, rkey); the receiver allocates on demand and RDMA-Reads
    the payload in fragments.  One control message (the announce), and
    "Read replaces Write" serves large RPC responses for free.
  - ``write`` (sender Write-with-notify): the announce carries only the
    size; the receiver allocates and answers with an ``RNDV_CTS``
    control naming *its* buffer; the sender RDMA-Writes the fragments
    and folds the notify into the last one as a WRITE_IMM carrying an
    ``RNDV_FIN`` header.  RC ordering guarantees every plain Write has
    landed when the IMM completes, so the FIN is the delivery signal.

* **fragment size** (``fragment_bytes``) and **window depth**
  (``inflight_depth``) ride along through the existing flow-control and
  seq-ack machinery.

Strategies are stateless singletons — all per-transfer state lives on
the channel (``_rendezvous`` receiver-side, ``_write_pending``
sender-side), so a strategy never outlives or leaks a channel.

Every strategy body is a generator driven by the owning context's
run-to-complete loop; each ``yield`` hands the scheduler to every other
simulation process, so shared channel state must be re-validated after
every yield (the XR401 stale-guard doctrine — the re-checks below are
load-bearing, not defensive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis import invariants
from repro.analysis.invariants import check as _invariant
from repro.rnic.wqe import Opcode, WorkRequest
from repro.sim.process import ProcessGenerator
from repro.xrdma.memcache import RdmaBuffer
from repro.xrdma.message import MessageKind, XrdmaHeader, XrdmaMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.config import XrdmaConfig

__all__ = ["ProtocolPolicy", "EagerStrategy", "RendezvousStrategy",
           "ReadRendezvous", "WriteRendezvous", "rendezvous_variant_names",
           "_WrRoute", "_Rendezvous"]


@dataclass
class _WrRoute:
    """Send-CQE demultiplexing record."""

    tag: str                       #: small|announce|ctrl|read|write|keepalive
    message: Optional[XrdmaMessage] = None
    seq: int = -1
    last_fragment: bool = False
    header: Optional[XrdmaHeader] = None


@dataclass
class _Rendezvous:
    """Receiver-side state for one in-progress large-message transfer."""

    seq: int
    header: XrdmaHeader
    buffer: Optional[RdmaBuffer]
    fragments_left: int
    started_at: int


class EagerStrategy:
    """Small messages: one eager SEND_IMM, receive buffers pre-posted."""

    name = "eager"

    def send(self, channel: "XrdmaChannel", msg: XrdmaMessage,
             header: XrdmaHeader) -> ProcessGenerator:
        wire = msg.payload_size + header.wire_bytes(
            channel.ctx.config.req_rsp_mode)
        wr = WorkRequest(opcode=Opcode.SEND_IMM, length=wire,
                         imm_data=header.ack & 0xFFFF_FFFF, payload=header)
        channel.ctx.route_wr(wr, channel, _WrRoute(tag="small", message=msg,
                                                   seq=header.seq))
        yield from channel.flow.post(wr)


class RendezvousStrategy:
    """Large messages: how the payload crosses once announced.

    Subclasses implement the sender's announce (:meth:`send`), the
    receiver's reaction to it (:meth:`on_announce`), rendezvous control
    messages (:meth:`on_control` — RNDV_CTS/RNDV_FIN), and any send-CQE
    follow-up (:meth:`on_data_completion`).  All are generators; a body
    with nothing to do simply returns (``yield from`` of an empty
    generator adds no simulation events, which is what keeps the default
    strategy schedule-identical to the pre-refactor channel).
    """

    name = "?"

    def send(self, channel: "XrdmaChannel", msg: XrdmaMessage,
             header: XrdmaHeader) -> ProcessGenerator:
        raise NotImplementedError
        yield  # pragma: no cover

    def on_announce(self, channel: "XrdmaChannel",
                    header: XrdmaHeader) -> ProcessGenerator:
        raise NotImplementedError
        yield  # pragma: no cover

    def on_control(self, channel: "XrdmaChannel",
                   header: XrdmaHeader) -> ProcessGenerator:
        return
        yield  # pragma: no cover

    def on_data_completion(self, channel: "XrdmaChannel",
                           route: _WrRoute) -> ProcessGenerator:
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------ shared
    @staticmethod
    def _alloc_checked(channel: "XrdmaChannel",
                       size: int) -> ProcessGenerator:
        """Allocate RDMA memory, surviving a mid-alloc channel death.

        ``memcache.alloc`` yields on arena growth; if ``mark_broken``
        runs while this process is suspended there, its cleanup has
        already swept the channel — installing fresh state afterwards
        would leak the buffer onto a dead channel.  Returns None (buffer
        freed) in that case; callers must bail out.
        """
        buffer = yield from channel.ctx.memcache.alloc(size)
        if not channel.is_ready:
            channel.ctx.memcache.free(buffer)
            return None
        return buffer


class ReadRendezvous(RendezvousStrategy):
    """The paper's receiver-driven rendezvous (Sec. IV-C).

    The announce SEND carries (size, src_addr, src_rkey); the receiver
    allocates on demand and RDMA-Reads the payload in flow-controlled
    fragments, completing the window slot when the last Read's CQE
    arrives.
    """

    name = "read"

    def send(self, channel: "XrdmaChannel", msg: XrdmaMessage,
             header: XrdmaHeader) -> ProcessGenerator:
        # The payload must live in RDMA-enabled memory the peer can read.
        if not isinstance(getattr(msg, "src_buffer", None), RdmaBuffer):
            buffer = yield from self._alloc_checked(channel,
                                                    msg.payload_size)
            if buffer is None:
                return      # channel died during the alloc; pump() stops
            msg.src_buffer = buffer
            msg.owns_buffer = True
        header.src_addr = msg.src_buffer.addr
        header.src_rkey = msg.src_buffer.rkey
        if header.trace is not None:
            header.trace.mark("src_alloc")
        wire = header.wire_bytes(channel.ctx.config.req_rsp_mode)
        wr = WorkRequest(opcode=Opcode.SEND_IMM, length=wire,
                         imm_data=header.ack & 0xFFFF_FFFF, payload=header)
        channel.ctx.route_wr(wr, channel,
                             _WrRoute(tag="announce", message=msg,
                                      seq=header.seq))
        yield from channel.flow.post(wr)

    def on_announce(self, channel: "XrdmaChannel",
                    header: XrdmaHeader) -> ProcessGenerator:
        """Receiver-side on-demand buffer + fragmented RDMA Read."""
        if invariants.ENABLED:
            _invariant(header.seq not in channel._rendezvous,
                       "channel.duplicate_rendezvous",
                       lambda: f"channel {channel.channel_id} "
                               f"seq {header.seq}")
        buffer = yield from self._alloc_checked(channel, header.payload_size)
        if buffer is None:
            return          # mark_broken swept the channel mid-alloc
        layout = channel.flow.fragment_layout(header.payload_size)
        rendezvous = _Rendezvous(
            seq=header.seq, header=header, buffer=buffer,
            fragments_left=len(layout), started_at=channel.ctx.sim.now)
        channel._rendezvous[header.seq] = rendezvous
        channel.stats["rendezvous_reads"] += len(layout)
        for offset, size, last in layout:
            wr = WorkRequest(
                opcode=Opcode.READ, length=size,
                remote_addr=header.src_addr + offset,
                rkey=header.src_rkey)
            channel.ctx.route_wr(wr, channel, _WrRoute(
                tag="read", seq=header.seq, last_fragment=last,
                header=header))
            yield from channel.flow.post(wr)

    def on_data_completion(self, channel: "XrdmaChannel",
                           route: _WrRoute) -> ProcessGenerator:
        if route.tag == "read" and route.last_fragment:
            yield from channel._finish_rendezvous(route.seq)


class WriteRendezvous(RendezvousStrategy):
    """Sender Write-with-notify (the Taranov write-based rendezvous).

    The announce SEND carries only the size; the receiver allocates and
    grants with an RNDV_CTS control naming its buffer (addr, rkey); the
    sender RDMA-Writes the fragments, folding the notify into the last
    one as a WRITE_IMM whose payload is an RNDV_FIN header.  RC ordering
    means every preceding Write has landed when the IMM's receive
    completion fires, so the FIN both notifies and completes the window
    slot.  Two control messages per transfer instead of one, but the
    data flows sender-paced — no Read round-trip per fragment window.
    """

    name = "write"

    def send(self, channel: "XrdmaChannel", msg: XrdmaMessage,
             header: XrdmaHeader) -> ProcessGenerator:
        # The source buffer is wired up front: the CTS may arrive at any
        # poll round and the Writes must be able to start immediately.
        if not isinstance(getattr(msg, "src_buffer", None), RdmaBuffer):
            buffer = yield from self._alloc_checked(channel,
                                                    msg.payload_size)
            if buffer is None:
                return
            msg.src_buffer = buffer
            msg.owns_buffer = True
        if header.trace is not None:
            header.trace.mark("src_alloc")
        channel._write_pending[header.seq] = msg
        wire = header.wire_bytes(channel.ctx.config.req_rsp_mode)
        wr = WorkRequest(opcode=Opcode.SEND_IMM, length=wire,
                         imm_data=header.ack & 0xFFFF_FFFF, payload=header)
        channel.ctx.route_wr(wr, channel,
                             _WrRoute(tag="announce", message=msg,
                                      seq=header.seq))
        yield from channel.flow.post(wr)

    def on_announce(self, channel: "XrdmaChannel",
                    header: XrdmaHeader) -> ProcessGenerator:
        """Receiver: allocate the landing buffer, grant with a CTS."""
        if invariants.ENABLED:
            _invariant(header.seq not in channel._rendezvous,
                       "channel.duplicate_rendezvous",
                       lambda: f"channel {channel.channel_id} "
                               f"seq {header.seq}")
        buffer = yield from self._alloc_checked(channel, header.payload_size)
        if buffer is None:
            return
        rendezvous = _Rendezvous(
            seq=header.seq, header=header, buffer=buffer,
            fragments_left=0, started_at=channel.ctx.sim.now)
        channel._rendezvous[header.seq] = rendezvous
        yield from channel.send_control(
            MessageKind.RNDV_CTS, rendezvous_seq=header.seq,
            src_addr=buffer.addr, src_rkey=buffer.rkey)

    def on_control(self, channel: "XrdmaChannel",
                   header: XrdmaHeader) -> ProcessGenerator:
        if header.kind is MessageKind.RNDV_CTS:
            yield from self._on_cts(channel, header)
        elif header.kind is MessageKind.RNDV_FIN:
            # Idempotent: a duplicated FIN pops nothing and returns.
            yield from channel._finish_rendezvous(header.rendezvous_seq)

    def _on_cts(self, channel: "XrdmaChannel",
                header: XrdmaHeader) -> ProcessGenerator:
        """Sender: the grant arrived — stream the fragments, FIN last."""
        msg = channel._write_pending.pop(header.rendezvous_seq, None)
        if msg is None or not channel.is_ready:
            return          # duplicated CTS, or the channel already died
        data_header = msg.header
        layout = channel.flow.fragment_layout(msg.payload_size)
        channel.stats["rendezvous_writes"] += len(layout)
        for offset, size, last in layout:
            if last:
                fin = XrdmaHeader(
                    kind=MessageKind.RNDV_FIN, seq=-1,
                    ack=channel.window.ack_to_send(), msg_id=0,
                    payload_size=0, rendezvous_seq=data_header.seq)
                wr = WorkRequest(
                    opcode=Opcode.WRITE_IMM, length=size,
                    remote_addr=header.src_addr + offset,
                    rkey=header.src_rkey,
                    imm_data=data_header.seq & 0xFFFF_FFFF, payload=fin)
            else:
                wr = WorkRequest(
                    opcode=Opcode.WRITE, length=size,
                    remote_addr=header.src_addr + offset,
                    rkey=header.src_rkey)
            channel.ctx.route_wr(wr, channel, _WrRoute(
                tag="write", message=msg, seq=data_header.seq,
                last_fragment=last))
            yield from channel.flow.post(wr)


#: stateless strategy singletons (all state lives on the channel)
_EAGER = EagerStrategy()
_VARIANTS: Dict[str, RendezvousStrategy] = {
    ReadRendezvous.name: ReadRendezvous(),
    WriteRendezvous.name: WriteRendezvous(),
}


def rendezvous_variant_names() -> List[str]:
    """Registered rendezvous variant names (config validation, sweeps)."""
    return sorted(_VARIANTS)


class ProtocolPolicy:
    """Per-message strategy selection from one :class:`XrdmaConfig`.

    Eager below the threshold, the configured rendezvous variant above
    it.  The policy is evaluated once per message in ``_make_header``
    (setting ``header.large``) and dispatched on in ``pump`` — both ends
    of a channel must be configured with the same variant, exactly as
    both ends must agree on ``small_msg_size`` today.
    """

    def __init__(self, config: "XrdmaConfig") -> None:
        self.eager = _EAGER
        self.rendezvous = _VARIANTS[config.rendezvous_variant]
        self.threshold = config.small_msg_size

    def is_large(self, payload_size: int) -> bool:
        """Does a payload take the rendezvous path?"""
        return payload_size > self.threshold

    def select(self, header: XrdmaHeader):
        """The strategy that sends a message with this header."""
        return self.rendezvous if header.large else self.eager
