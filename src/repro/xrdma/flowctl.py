"""Built-in flow control (Sec. V-C): fragmentation + queuing.

DCQCN is reactive — by the time CNPs arrive, the incast burst has already
filled switch queues.  X-RDMA bounds the burst at the source:

* **Fragmentation** — a payload transfer larger than ``fragment_bytes``
  becomes several moderate WRs, so one huge WQE cannot occupy the NIC
  engine or dump megabytes into the fabric in one go.
* **Queuing** — at most ``max_outstanding_wrs`` data WRs per channel are in
  the SQ at once; the rest wait in a software queue.

Both act purely above verbs, exactly as the paper requires ("without
specific hardware or software constraints").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.analysis.invariants import check as _invariant
from repro.rnic.wqe import WorkRequest
from repro.sim.process import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.qp import QueuePair
    from repro.verbs.api import VerbsContext


class WrBudget:
    """Context-global cap on outstanding data WRs (the Sec. V-C queue).

    The per-channel cap alone cannot stop a node with thousands of
    connections from over-requesting its own inbound link; the shared
    budget serializes aggregate demand so the switch queue never builds —
    this is what drives CNPs to the paper's 1–2% residue (Fig. 10).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"budget capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque["FlowController"] = deque()
        #: every controller sharing this budget (invariant accounting:
        #: ``in_use == Σ controller.budget_held`` at all times)
        self.controllers: List["FlowController"] = []

    @property
    def available(self) -> bool:
        return self.in_use < self.capacity

    def acquire(self) -> None:
        """Charge one slot (caller checked ``available``)."""
        self.in_use += 1
        # Hot path: test the condition first so the detail closure is only
        # built on the (never-in-practice) violated branch.
        if self.in_use > self.capacity:
            _invariant(False, "flowctl.budget_overcommit",
                       lambda: f"in_use={self.in_use} "
                               f"capacity={self.capacity}")

    def release(self) -> None:
        """Return one slot; underflow is a protocol bug, not a clamp."""
        self.in_use -= 1
        if self.in_use < 0:
            _invariant(False, "flowctl.budget_underflow",
                       lambda: f"in_use={self.in_use}")
            self.in_use = 0  # contain in count mode

    def enqueue_waiter(self, controller: "FlowController") -> None:
        if controller not in self._waiters:
            self._waiters.append(controller)

    def drain(self) -> ProcessGenerator:
        """Generator: grant freed slots to waiting controllers, FIFO.

        A controller refused on its *per-channel* cap (not the budget)
        stays registered as a waiter — it must not lose its place just
        because its own pipeline is momentarily full — but is not polled
        again within this pass, or the loop would spin on it.
        """
        deferred: List["FlowController"] = []
        while self.available and self._waiters:
            controller = self._waiters.popleft()
            issued = yield from controller.admit_queued()
            if not controller.queued:
                continue
            if issued:
                self._waiters.append(controller)
            else:
                deferred.append(controller)
        for controller in deferred:
            if controller.queued:
                self.enqueue_waiter(controller)


class FlowController:
    """Per-channel outstanding-WR governor (plus the shared budget)."""

    def __init__(self, verbs: "VerbsContext", qp: "QueuePair",
                 max_outstanding: int, fragment_bytes: int,
                 enabled: bool = True,
                 budget: Optional[WrBudget] = None) -> None:
        self.verbs = verbs
        self.qp = qp
        self.max_outstanding = max_outstanding
        self.fragment_bytes = fragment_bytes
        self.enabled = enabled
        self.budget = budget
        self.outstanding = 0
        #: budget slots currently charged to this channel.  Tracked apart
        #: from ``outstanding`` so toggling ``enabled`` mid-flight (or a
        #: teardown racing completions) can never skew the shared budget.
        self.budget_held = 0
        #: in-flight WRs whose slots drop_all() already returned; their
        #: late completions must not release (or admit) anything again.
        self._abandoned = 0
        self._queue: Deque[WorkRequest] = deque()
        self.queued_total = 0
        self.fragments_total = 0
        if budget is not None:
            budget.controllers.append(self)

    # ---------------------------------------------------------------- sizing
    def fragment_sizes(self, length: int) -> List[int]:
        """How a payload of ``length`` splits into WRs under current policy."""
        if not self.enabled or length <= self.fragment_bytes:
            return [length]
        sizes = []
        remaining = length
        while remaining > 0:
            step = min(self.fragment_bytes, remaining)
            sizes.append(step)
            remaining -= step
        return sizes

    def fragment_layout(self, length: int) -> List[Tuple[int, int, bool]]:
        """``(offset, size, last)`` triples for one payload.

        The posting plan the protocol strategies share: receiver-Read
        rendezvous issues one READ per triple, sender-Write rendezvous
        one WRITE (the last a WRITE_IMM) — same fragmentation policy,
        different opcode.
        """
        sizes = self.fragment_sizes(length)
        layout = []
        offset = 0
        for index, size in enumerate(sizes):
            layout.append((offset, size, index == len(sizes) - 1))
            offset += size
        return layout

    # --------------------------------------------------------------- posting
    def _may_issue(self) -> bool:
        if not self.enabled:
            return True
        if self.outstanding >= self.max_outstanding:
            return False
        return self.budget is None or self.budget.available

    def post(self, wr: WorkRequest) -> ProcessGenerator:
        """Generator: post ``wr`` now, or queue it if a cap is reached."""
        if not self._may_issue():
            self._queue.append(wr)
            self.queued_total += 1
            if self.enabled and self.budget is not None:
                self.budget.enqueue_waiter(self)
            return
        yield from self._issue(wr)

    def _issue(self, wr: WorkRequest) -> ProcessGenerator:
        trace = getattr(wr.payload, "trace", None)
        if trace is not None:
            trace.mark("flowctl_queue")
        self.outstanding += 1
        if self.enabled and self.budget is not None:
            self.budget.acquire()
            self.budget_held += 1
        yield self.verbs.post_send(self.qp, wr)

    def admit_queued(self) -> ProcessGenerator:
        """Generator: issue one queued WR if allowed; returns True if so."""
        if not self._queue or not self._may_issue():
            return False
        yield from self._issue(self._queue.popleft())
        return True

    def on_completion(self) -> ProcessGenerator:
        """Generator: a data WR completed; admit queued work (here first,
        then any channel waiting on the shared budget)."""
        if self._abandoned:
            # A WR drop_all() already accounted for: its slot went back to
            # the budget at teardown; releasing again would over-admit.
            self._abandoned -= 1
            return
        self.outstanding -= 1
        if self.outstanding < 0:
            _invariant(False, "flowctl.outstanding_underflow",
                       lambda: f"qpn={self.qp.qpn}")
            self.outstanding = 0
        if self.budget is not None and self.budget_held > 0:
            self.budget_held -= 1
            self.budget.release()
        while (yield from self.admit_queued()):
            pass
        if self.enabled and self.budget is not None:
            if self._queue:
                self.budget.enqueue_waiter(self)
            yield from self.budget.drain()

    @property
    def queued(self) -> int:
        return len(self._queue)

    def drop_all(self) -> int:
        """Channel teardown: abandon queued WRs and release every held
        budget slot exactly once.

        The slots go back now (the channel is dead; holding them would
        starve live channels), and the still-in-flight WRs are remembered
        so their late completions do not release a second time — a double
        release lets ``budget.in_use`` drift below the true holdings and
        over-admit.
        """
        dropped = len(self._queue)
        self._queue.clear()
        if self.budget is not None:
            while self.budget_held:
                self.budget_held -= 1
                self.budget.release()
            try:
                self.budget._waiters.remove(self)
            except ValueError:
                pass
        self._abandoned += self.outstanding
        self.outstanding = 0
        return dropped
