"""X-RDMA configuration (Table III).

Parameters are split into **online** (changeable at runtime through
``xrdma_set_flag`` / XR-Adm) and **offline** (fixed once the context runs).
Attempting to flip an offline parameter on a running context raises
:class:`ConfigError` — the same guard the production tooling enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict

from repro.sim.timeunits import MICROS, MILLIS

#: Names changeable while the context is running (Table III, "Online").
ONLINE_PARAMS = frozenset({
    "keepalive_intv_ms",
    "slow_threshold_ns",
    "polling_warn_cycle_ns",
    "trace_sample_mask",
    "req_rsp_mode",
    "flow_control",
    "deadlock_check_intv_ms",
    "idle_poll_mode",
})


class ConfigError(ValueError):
    """Unknown parameter, bad value, or offline change at runtime."""


@dataclass
class XrdmaConfig:
    """All tunables; defaults follow the paper's production choices."""

    # ------------------------------------------------------------- online
    keepalive_intv_ms: float = 100.0     #: probe after this idle time
    slow_threshold_ns: int = 50 * MICROS  #: log segments slower than this
    polling_warn_cycle_ns: int = 500 * MICROS  #: poll-gap watchdog threshold
    trace_sample_mask: int = 0           #: 0 = trace nothing; 1 = everything
    req_rsp_mode: bool = False           #: tracing headers on (vs bare-data)
    flow_control: bool = True            #: fragmentation + queuing on
    deadlock_check_intv_ms: float = 10.0
    #: idle-time polling scheme (Sec. IV-B: "the polling mode is
    #: configurable"): hybrid = NAPI-style, busy = always spin (lowest
    #: latency, a core burned), event = always epoll (cheapest, +wakeup).
    idle_poll_mode: str = "hybrid"

    # ------------------------------------------------------------ offline
    use_srq: bool = False                #: disabled by default (Sec. VII-F)
    cq_size: int = 4096
    srq_size: int = 1024
    fork_safe: bool = False
    ibqp_alloc_type: str = "anonymous"   #: anonymous | contiguous | hugepage
    small_msg_size: int = 4096           #: ≤ this uses eager RDMA Send
    #: rendezvous data movement above the eager threshold: "read" is the
    #: paper's receiver-driven RDMA Read; "write" is sender
    #: Write-with-notify (CTS grant + WRITE_IMM FIN).  Both channel ends
    #: must agree, exactly like small_msg_size.
    rendezvous_variant: str = "read"
    inflight_depth: int = 32             #: seq-ack window (≪ CQ depth)
    fragment_bytes: int = 64 * 1024      #: flow-control fragment size
    max_outstanding_wrs: int = 8         #: queuing cap per channel
    context_outstanding_wrs: int = 4     #: shared cap across all channels
    memcache_mr_bytes: int = 4 * 1024 * 1024  #: 4 MB MRs (LITE lesson)
    memcache_isolated: bool = False      #: high-address isolation (Sec. VI-C)
    prepost_slack: int = 4               #: extra recvs beyond the window
    # --------------------------------------------- control plane (ctrlplane)
    qp_cache_capacity: int = 64          #: RESET-QP pool size (0 disables)
    mr_reg_cache: bool = False           #: lazy-dereg MR registration cache
    mr_reg_cache_bytes: int = 64 * 1024 * 1024  #: warm-MR pinned-byte cap
    memcache_no_pin: bool = False        #: NP-RDMA-style on-demand paging
    close_drain_timeout_ns: int = 50 * MILLIS  #: drain bound before ERROR

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------- checks
    def validate(self) -> None:
        """Reject inconsistent parameter combinations."""
        if self.inflight_depth < 2:
            raise ConfigError("inflight_depth must be >= 2 (one slot is "
                              "reserved for the NOP deadlock breaker)")
        if self.inflight_depth >= self.cq_size:
            raise ConfigError("inflight_depth must stay below cq_size")
        if self.small_msg_size <= 0 or self.fragment_bytes <= 0:
            raise ConfigError("sizes must be positive")
        if self.rendezvous_variant not in ("read", "write"):
            raise ConfigError(
                f"unknown rendezvous_variant {self.rendezvous_variant!r}")
        if self.max_outstanding_wrs < 1:
            raise ConfigError("max_outstanding_wrs must be >= 1")
        if self.context_outstanding_wrs < 1:
            raise ConfigError("context_outstanding_wrs must be >= 1")
        if self.ibqp_alloc_type not in ("anonymous", "contiguous", "hugepage"):
            raise ConfigError(
                f"unknown ibqp_alloc_type {self.ibqp_alloc_type!r}")
        if self.idle_poll_mode not in ("hybrid", "busy", "event"):
            raise ConfigError(
                f"unknown idle_poll_mode {self.idle_poll_mode!r}")
        if self.qp_cache_capacity < 0:
            raise ConfigError("qp_cache_capacity must be >= 0")
        if self.mr_reg_cache_bytes < 0:
            raise ConfigError("mr_reg_cache_bytes must be >= 0")
        if self.close_drain_timeout_ns <= 0:
            raise ConfigError("close_drain_timeout_ns must be positive")

    # ------------------------------------------------------------ set_flag
    def set_flag(self, name: str, value: Any, running: bool = True) -> None:
        """The ``xrdma_set_flag`` API: dynamic configuration changes."""
        known = {f.name for f in fields(self)}
        if name not in known:
            raise ConfigError(f"unknown config parameter {name!r}")
        if running and name not in ONLINE_PARAMS:
            raise ConfigError(
                f"{name!r} is an offline parameter; restart required")
        setattr(self, name, value)
        self.validate()

    def snapshot(self) -> Dict[str, Any]:
        """All parameters as a plain dict (XR-Adm dumps and drift checks)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def keepalive_intv_ns(self) -> int:
        """keepalive_intv_ms in integer nanoseconds."""
        return int(self.keepalive_intv_ms * MILLIS)

    @property
    def deadlock_check_intv_ns(self) -> int:
        """deadlock_check_intv_ms in integer nanoseconds."""
        return int(self.deadlock_check_intv_ms * MILLIS)
