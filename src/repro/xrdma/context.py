"""The X-RDMA context: one per thread, run-to-complete (Sec. IV-B).

The context owns every per-thread resource — PD, CQs, memory cache, QP
cache, timers, channels — so the data path needs no locks or atomics.  One
simulation process (:meth:`XrdmaContext._run`) drives everything:

* drains both CQs and routes completions to channels,
* pumps channel send queues as window/flow-control slots open,
* runs the timer duties (keepAlive probes, deadlock NOPs, memory-cache
  shrink, monitor sampling),
* models **hybrid polling**: while traffic is flowing the loop busy-polls
  (low latency); after an idle period it parks on events and pays the
  epoll wakeup cost on the next message.

The Table-I API surface lives here: ``send_msg``, ``polling``,
``get_event_fd``, ``process_event``, ``reg_mem``/``dereg_mem``,
``set_flag`` and ``trace_request``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.ctrlplane import MrRegCache, QpCache
from repro.memory.host import AllocMode
from repro.rnic.qp import QpState
from repro.rnic.wqe import Completion, Opcode, WorkRequest
from repro.sim.events import Timeout
from repro.sim.process import ProcessGenerator
from repro.sim.resources import Store
from repro.sim.timeunits import MILLIS, SECONDS
from repro.verbs.cm import ConnectError
from repro.xrdma.channel import ChannelState, XrdmaChannel, _WrRoute
from repro.xrdma.config import XrdmaConfig
from repro.xrdma.flowctl import WrBudget
from repro.xrdma.memcache import MemCache
from repro.xrdma.message import MessageKind, XrdmaMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.nic import Rnic
    from repro.rnic.qp import QueuePair
    from repro.sim.engine import Simulator
    from repro.verbs.api import VerbsContext
    from repro.verbs.cm import CmAgent, CmListener
    from repro.xrdma.memcache import RdmaBuffer

_ctx_ids = itertools.count(1)

#: Idle time after which the loop leaves busy-polling for event mode.
_BUSY_POLL_WINDOW_NS = 100_000
#: Memory-cache shrink cadence.
_SHRINK_INTV_NS = 1 * SECONDS

_ALLOC_MODES = {
    "anonymous": AllocMode.ANONYMOUS,
    "contiguous": AllocMode.CONTIGUOUS,
    "hugepage": AllocMode.HUGEPAGE,
}


class XrdmaContext:
    """Per-thread engine and the public X-RDMA API."""

    def __init__(self, sim: "Simulator", verbs: "VerbsContext",
                 cm: "CmAgent", config: Optional[XrdmaConfig] = None,
                 name: str = "") -> None:
        self.sim = sim
        self.verbs = verbs
        self.cm = cm
        self.nic = verbs.nic
        self.params = verbs.params
        self.config = config or XrdmaConfig()
        self.ctx_id = next(_ctx_ids)
        self.name = name or f"xrdma{self.ctx_id}"

        self.pd = verbs.alloc_pd()
        self.send_cq = verbs.create_cq(self.config.cq_size)
        self.recv_cq = verbs.create_cq(self.config.cq_size)
        self.srq = (verbs.create_srq(self.config.srq_size)
                    if self.config.use_srq else None)
        self.mr_reg_cache = (
            MrRegCache(verbs, self.pd,
                       capacity_bytes=self.config.mr_reg_cache_bytes)
            if self.config.mr_reg_cache else None)
        self.memcache = MemCache(
            verbs, self.pd, mr_bytes=self.config.memcache_mr_bytes,
            alloc_mode=_ALLOC_MODES[self.config.ibqp_alloc_type],
            isolated=self.config.memcache_isolated,
            mr_cache=self.mr_reg_cache,
            no_pin=self.config.memcache_no_pin)
        self.qpcache = QpCache(verbs, self.pd, self.send_cq, self.recv_cq,
                               capacity=self.config.qp_cache_capacity)
        self.wr_budget = WrBudget(self.config.context_outstanding_wrs)
        self.connect_failures = 0    #: ConnectError paths (QP recycled)
        self.drain_timeouts = 0      #: close drains that hit the deadline

        self.channels: Dict[int, XrdmaChannel] = {}          # by qpn
        self._wr_routes: Dict[int, Tuple[XrdmaChannel, _WrRoute]] = {}
        self._recv_buffers: Dict[int, Tuple[XrdmaChannel, Any]] = {}
        self.incoming: Store = Store(sim, name=f"{self.name}:incoming")
        self.accepted: Store = Store(sim, name=f"{self.name}:accepted")
        self._kicked: deque = deque()
        self._kicked_set: set = set()
        self._wake = None
        self._stopped = False
        self._started = False
        self._injected_stall_ns = 0
        self.tracer = None          #: analysis hook (repro.analysis.Tracer)
        self.monitor = None         #: analysis hook (repro.analysis.Monitor)
        self.filter = None          #: fault injection (repro.analysis.Filter)
        self.poll_gaps: List[int] = []       #: gaps over the warn threshold
        self._last_round_ns = sim.now
        self._idle_since: Optional[int] = None
        self.broken_channels = 0

    # ============================================================ lifecycle
    def start(self) -> None:
        """Spawn the run-to-complete loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.spawn(self._run(), name=f"{self.name}:loop")

    def stop(self) -> None:
        """Shut the run-to-complete loop down at its next iteration."""
        self._stopped = True
        self.kick()

    # ====================================================== connection mgmt
    def connect(self, remote_host: int, service_port: int,
                timeout_ns: int = 2 * SECONDS) -> ProcessGenerator:
        """Generator: establish a channel (QP cache fast path when warm).

        Every failure path returns the QP the attempt was holding —
        recycled *or* freshly created by the CM — to the QP cache, so a
        connect storm against a dead peer leaks nothing.
        """
        self.start()
        setup = (self.tracer.begin_setup(remote_host, service_port)
                 if self.tracer is not None else None)
        recycled = self.qpcache.get()
        try:
            conn = yield from self.cm.connect(
                remote_host, service_port, self.pd, self.send_cq,
                self.recv_cq, qp=recycled, srq=self.srq,
                private_data={"window": self.config.inflight_depth},
                timeout_ns=timeout_ns, setup_trace=setup)
        except ConnectError as exc:
            self.connect_failures += 1
            if exc.qp is not None:
                yield from self.qpcache.put(exc.qp)
            raise
        peer_window = (conn.private_data or {}).get(
            "window", self.config.inflight_depth)
        channel = XrdmaChannel(
            self, conn, min(self.config.inflight_depth, peer_window))
        yield from self._prime_channel(channel, setup)
        self.channels[conn.qp.qpn] = channel
        if setup is not None:
            self.tracer.finalize_setup(setup)
        return channel

    def listen(self, service_port: int) -> Store:
        """Accept channels on ``service_port``; they appear in the returned
        Store (which is also ``self.accepted``)."""
        self.start()
        listener = self.cm.listen(
            service_port, self.pd, self.send_cq, self.recv_cq, srq=self.srq,
            qp_provider=self.qpcache.get,
            private_data={"window": self.config.inflight_depth})
        self.sim.spawn(self._accept_loop(listener),
                       name=f"{self.name}:accept{service_port}")
        return self.accepted

    def _accept_loop(self, listener: "CmListener") -> ProcessGenerator:
        while not self._stopped:
            conn = yield listener.accepted.get()
            peer_window = (conn.private_data or {}).get(
                "window", self.config.inflight_depth)
            channel = XrdmaChannel(
                self, conn, min(self.config.inflight_depth, peer_window))
            yield from self._prime_channel(channel)
            self.channels[conn.qp.qpn] = channel
            self.accepted.put_nowait(channel)

    def _prime_channel(self, channel: XrdmaChannel,
                       setup_trace=None) -> ProcessGenerator:
        """Pre-post window-depth receive buffers (the RNR-free invariant).

        With an SRQ, buffers are shared and capped at the SRQ depth — this
        is precisely how SRQ re-introduces the RNR risk (Sec. VII-F).

        The ``mr_reg`` setup span closes after the *first* allocation:
        arena growth (the MR registration) is the only yield inside
        ``memcache.alloc``, so cold establishment shows the full
        registration cost there and a warm memory cache shows exactly 0.
        The alloc/post interleaving below is digest-pinned — marks are
        timestamps only, never a restructuring.
        """
        recv_bytes = self.config.small_msg_size + 64
        count = channel.window.depth + self.config.prepost_slack
        if self.srq is not None:
            count = min(count, self.srq.depth - len(self.srq))
        first = True
        for _ in range(count):
            buffer = yield from self.memcache.alloc(recv_bytes)
            if channel.state is not ChannelState.READY:
                # The channel died during the alloc yield: mark_broken
                # already swept _recv_buffers, so installing this buffer
                # would leak it onto a dead channel.
                self.memcache.free(buffer)
                return
            if first and setup_trace is not None:
                setup_trace.mark("mr_reg")
            first = False
            channel._recv_buffers.append(buffer)
            yield from self._post_recv(channel, buffer)
        if setup_trace is not None:
            if first:           # zero-buffer prime (saturated SRQ)
                setup_trace.mark("mr_reg")
            setup_trace.mark("recv_prime")

    def _post_recv(self, channel: XrdmaChannel,
                   buffer: "RdmaBuffer") -> ProcessGenerator:
        wr = WorkRequest(opcode=Opcode.RECV, length=buffer.size,
                         local_addr=buffer.addr)
        if self.srq is not None:
            if len(self.srq) >= self.srq.depth:
                return  # shared pool full; the buffer stays with the channel
            self._recv_buffers[wr.wr_id] = (channel, buffer)
            yield self.verbs.post_srq_recv(self.srq, wr)
        else:
            self._recv_buffers[wr.wr_id] = (channel, buffer)
            yield self.verbs.post_recv(channel.qp, wr)

    def close_channel(self, channel: XrdmaChannel,
                      notify: bool = True) -> ProcessGenerator:
        """Generator: orderly shutdown — the QP goes back to the cache.

        The drain is bounded by ``close_drain_timeout_ns``: a wedged QP
        (stuck WQE, dead peer mid-teardown) escalates to ERROR + destroy
        instead of spinning the closer forever.
        """
        if channel.state is not ChannelState.READY:
            return
        drain_timed_out = False
        if notify:
            yield from channel.send_control(MessageKind.CLOSE)
            # Drain the QP before resetting it, or the CLOSE never leaves.
            qp = channel.qp
            deadline = self.sim.now + self.config.close_drain_timeout_ns
            while qp.sq or qp.outstanding or qp.current_tx is not None:
                if self.sim.now >= deadline:
                    drain_timed_out = True
                    self.drain_timeouts += 1
                    break
                yield self.sim.timeout(10_000)
        if channel.state is not ChannelState.READY:
            # A concurrent closer (or on_channel_broken) won the race while
            # this process was suspended in the drain — without this
            # re-check both closers would recycle the same QP.
            return
        channel.state = ChannelState.CLOSED
        self.channels.pop(channel.qp.qpn, None)
        while channel._recv_buffers:
            self.memcache.free(channel._recv_buffers.popleft())
        if drain_timed_out:
            # A QP that would not drain cannot be trusted for reuse:
            # flush its work through ERROR, then destroy it outright.
            if channel.qp.state is not QpState.ERROR:
                yield self.verbs.modify_qp(channel.qp, QpState.ERROR)
            yield self.verbs.destroy_qp(channel.qp)
        elif channel.qp.state is not QpState.ERROR:
            yield from self.qpcache.put(channel.qp)
        else:
            yield self.verbs.destroy_qp(channel.qp)

    def on_channel_broken(self, channel: XrdmaChannel) -> None:
        """Channel-side callback: release the context's references."""
        self.broken_channels += 1
        self.channels.pop(channel.qp.qpn, None)
        # An errored QP cannot be recycled; destroy it asynchronously.
        self.sim.spawn(self._destroy_qp(channel.qp),
                       name=f"{self.name}:destroy")
        # drop_all() just returned the dead channel's budget slots; hand
        # them to waiting channels now — their own completions may never
        # come (all of their work could be queued behind the budget).
        self.sim.spawn(self._drain_budget(), name=f"{self.name}:drain")

    def _destroy_qp(self, qp: "QueuePair") -> ProcessGenerator:
        yield self.verbs.destroy_qp(qp)

    def _drain_budget(self) -> ProcessGenerator:
        yield self.sim.timeout(0)   # let mark_broken unwind first
        yield from self.wr_budget.drain()

    # ============================================================= Table I
    def send_msg(self, channel: XrdmaChannel, payload_size: int,
                 kind: MessageKind = MessageKind.ONEWAY,
                 payload: Any = None) -> XrdmaMessage:
        """xrdma_send_msg: queue a message; completion via its events."""
        msg = XrdmaMessage(kind=kind, payload_size=payload_size,
                           payload=payload)
        channel.queue_message(msg)
        self._kick_channel(channel)
        return msg

    def send_request(self, channel: XrdmaChannel, payload_size: int,
                     payload: Any = None) -> XrdmaMessage:
        """Built-in RPC: returns a message whose ``response`` event fires."""
        return self.send_msg(channel, payload_size,
                             kind=MessageKind.REQUEST, payload=payload)

    def send_response(self, request: XrdmaMessage, payload_size: int,
                      payload: Any = None) -> XrdmaMessage:
        """Reply to a delivered REQUEST (Read-replaces-Write when large)."""
        if not request.is_request or request.channel is None:
            raise ValueError("send_response needs a delivered REQUEST")
        msg = XrdmaMessage(kind=MessageKind.RESPONSE,
                           payload_size=payload_size, payload=payload,
                           request_msg_id=request.header.msg_id)
        request.channel.queue_message(msg)
        self._kick_channel(request.channel)
        return msg

    def polling(self, max_messages: int = 16) -> List[XrdmaMessage]:
        """xrdma_polling: drain up to ``max_messages`` delivered messages."""
        out: List[XrdmaMessage] = []
        while self.incoming.items and len(out) < max_messages:
            out.append(self.incoming.get_nowait())
        return out

    def get_event_fd(self) -> Store:
        """xrdma_get_event_fd: a waitable handle (yield ``fd.get()``)."""
        return self.incoming

    def process_event(self, max_messages: int = 16) -> List[XrdmaMessage]:
        """xrdma_process_event: handle events after an fd wakeup."""
        return self.polling(max_messages)

    def reg_mem(self, size: int) -> ProcessGenerator:
        """xrdma_reg_mem (generator): RDMA-enabled buffer from the cache."""
        buffer = yield from self.memcache.alloc(size)
        return buffer

    def dereg_mem(self, buffer: "RdmaBuffer") -> None:
        """xrdma_dereg_mem: return a buffer to the cache."""
        self.memcache.free(buffer)

    def set_flag(self, name: str, value: Any) -> None:
        """xrdma_set_flag: dynamic (online) configuration change."""
        self.config.set_flag(name, value, running=self._started)
        if name == "flow_control":
            for channel in self.channels.values():
                channel.flow.enabled = bool(value)
        self.kick()  # wake the loop so new intervals take effect promptly

    def trace_request(self, msg: XrdmaMessage) -> Optional[Any]:
        """xrdma_trace_request: tracing record for a message (req-rsp mode)."""
        if self.tracer is None:
            return None
        return self.tracer.trace_request(msg)

    def local_time(self) -> int:
        """This host's wall clock (skewed unless clock-synced; Sec. VI-A)."""
        if self.tracer is not None:
            return self.tracer.clock.read(self.sim.now)
        return self.sim.now

    # ============================================================== engine
    def kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def _kick_channel(self, channel: XrdmaChannel) -> None:
        if channel.channel_id not in self._kicked_set:
            self._kicked.append(channel)
            self._kicked_set.add(channel.channel_id)
        self.kick()

    def inject_stall(self, duration_ns: int) -> None:
        """Testing/case-study hook: make the loop stall (allocator lock,
        Sec. VII-D) so the poll-gap watchdog has something to catch."""
        self._injected_stall_ns += duration_ns
        self.kick()

    def _run(self) -> ProcessGenerator:
        config = self.config
        sim = self.sim
        # Hoisted for the poll hot loop: these bindings are fixed for the
        # context's lifetime (the CQs are created in __init__ and the poll
        # entry point is a passthrough to CompletionQueue.poll).
        poll_cq = self.verbs.poll_cq
        recv_cq = self.recv_cq
        send_cq = self.send_cq
        kicked = self._kicked
        kicked_set = self._kicked_set
        last_keepalive = sim.now
        last_deadlock = sim.now
        last_shrink = sim.now
        while not self._stopped:
            if self._injected_stall_ns:
                stall, self._injected_stall_ns = self._injected_stall_ns, 0
                yield sim.timeout(stall)

            round_start = sim._now
            gap = round_start - self._last_round_ns
            if gap > config.polling_warn_cycle_ns:
                self.poll_gaps.append(gap)
                if self.tracer is not None:
                    self.tracer.on_slow_poll(self, gap)

            worked = False
            # ---- receive completions
            for completion in poll_cq(recv_cq, 64):
                worked = True
                yield from self._handle_recv_completion(completion)
            # ---- send completions
            for completion in poll_cq(send_cq, 64):
                worked = True
                yield from self._handle_send_completion(completion)
            # ---- queued application sends
            while kicked:
                channel = kicked.popleft()
                kicked_set.discard(channel.channel_id)
                if channel.state is ChannelState.READY:
                    worked = True
                    yield from channel.pump()
            # ---- timers (intervals re-read so set_flag applies live)
            now = sim._now
            if now - last_keepalive >= config.keepalive_intv_ns:
                last_keepalive = now
                yield from self._keepalive_round(now)
            if now - last_deadlock >= config.deadlock_check_intv_ns:
                last_deadlock = now
                yield from self._deadlock_round()
            if now - last_shrink >= _SHRINK_INTV_NS:
                last_shrink = now
                self.memcache.shrink()
            if self.monitor is not None:
                self.monitor.maybe_sample(self)

            self._last_round_ns = sim._now
            if worked:
                self._idle_since = None
                # Direct construction: once per worked poll round.
                yield Timeout(sim, self.params.host_poll_overhead_ns)
                continue

            # ---- idle: hybrid polling parks on events
            if self._idle_since is None:
                self._idle_since = sim._now
            # Static name: one wake per idle transition of the poll loop;
            # an f-string here would be a per-idle allocation.
            self._wake = sim.event("ctxwake")
            recv_cq.request_notify(self.kick)
            send_cq.request_notify(self.kick)
            deadline = min(last_keepalive + config.keepalive_intv_ns,
                           last_deadlock + config.deadlock_check_intv_ns,
                           last_shrink + _SHRINK_INTV_NS)
            timer = sim.timeout(max(deadline - sim._now, 1_000))
            yield sim.any_of([self._wake, timer])
            woke_after = sim._now - self._idle_since
            self._wake = None
            mode = config.idle_poll_mode
            if mode == "event" or (mode == "hybrid"
                                   and woke_after > _BUSY_POLL_WINDOW_NS):
                # Not busy-polling (anymore); pay the epoll wakeup.
                yield sim.timeout(self.params.host_wakeup_ns)

    def _handle_recv_completion(self,
                                completion: Completion) -> ProcessGenerator:
        entry = self._recv_buffers.pop(completion.wr_id, None)
        channel = self.channels.get(completion.qp_num)
        if channel is None and entry is not None:
            channel = entry[0]
        if channel is None:
            return
        if not completion.ok:
            if entry is not None:
                # Buffer bookkeeping stays with the (now broken) channel.
                pass
            channel.mark_broken(f"recv CQE error: {completion.status.name}")
            return
        if entry is not None and channel.state is ChannelState.READY:
            _, buffer = entry
            yield from self._post_recv(channel, buffer)
        if self.filter is not None:
            if self.filter.should_drop(channel, completion):
                return
            delay = self.filter.delay_for(channel, completion)
            if delay:
                yield self.sim.timeout(delay)
        trace = getattr(completion.payload, "trace", None)
        if trace is not None:
            trace.mark("rx_poll")
        if self.filter is not None and self.filter.should_duplicate(
                channel, completion):
            # Middleware-level retransmit: the same header arrives
            # twice (the channel must treat it idempotently).
            yield from channel.on_receive(completion)
        yield from channel.on_receive(completion)

    def _handle_send_completion(self,
                                completion: Completion) -> ProcessGenerator:
        routed = self._wr_routes.pop(completion.wr_id, None)
        if routed is None:
            return
        channel, route = routed
        yield from channel.on_send_completion(completion, route)

    def _keepalive_round(self, now: int) -> ProcessGenerator:
        for channel in list(self.channels.values()):
            if channel.state is not ChannelState.READY:
                continue
            if channel.idle_ns(now) >= self.config.keepalive_intv_ns:
                yield from channel.keepalive_probe()

    def _deadlock_round(self) -> ProcessGenerator:
        for channel in list(self.channels.values()):
            if channel.state is not ChannelState.READY:
                continue
            if channel.needs_nop():
                yield from channel.send_control(MessageKind.NOP)
            elif channel.window.unacked_arrivals() > 0 \
                    and not channel.pending_send:
                # Delayed-ack flush: consumed messages whose ack found no
                # reverse traffic to piggyback on.
                yield from channel.send_control(MessageKind.ACK)

    # ------------------------------------------------------------- plumbing
    def route_wr(self, wr: WorkRequest, channel: XrdmaChannel,
                 route: _WrRoute) -> None:
        self._wr_routes[wr.wr_id] = (channel, route)

    def deliver(self, msg: XrdmaMessage) -> None:
        self.incoming.put_nowait(msg)

    # ------------------------------------------------------------ inspection
    def stat_snapshot(self) -> Dict[str, Any]:
        """XR-Stat's per-context raw numbers."""
        return {
            "channels": len(self.channels),
            "broken_channels": self.broken_channels,
            "mem_occupied": self.memcache.occupied_bytes,
            "mem_in_use": self.memcache.in_use_bytes,
            "mr_count": self.memcache.mr_count,
            "qp_cache_size": len(self.qpcache),
            "qp_cache_hits": self.qpcache.hits,
            "qp_cache_misses": self.qpcache.misses,
            "qp_cache_recycled": self.qpcache.recycled,
            "qp_cache_destroyed": self.qpcache.destroyed,
            "mr_cache_hits": (self.mr_reg_cache.hits
                              if self.mr_reg_cache is not None else 0),
            "mr_cache_pinned": (self.mr_reg_cache.pinned_bytes
                                if self.mr_reg_cache is not None else 0),
            "connect_failures": self.connect_failures,
            "drain_timeouts": self.drain_timeouts,
            "incoming_backlog": len(self.incoming.items),
            "slow_polls": len(self.poll_gaps),
        }
