"""A kernel-TCP model over the same fabric.

Used three ways:

* the establishment-time comparison of Sec. III (≈100 µs vs rdma_cm's
  ≈4 ms),
* the keepAlive discussion (TCP has SO_KEEPALIVE; raw RDMA has nothing),
* X-RDMA's **Mock** scheme (Sec. VI-C): temporarily falling back to TCP
  when the RDMA data plane misbehaves.

The model charges kernel-stack costs (syscall + copies per byte) and chunks
streams into 64 KB segments; no cwnd dynamics — TCP here is the *fallback
control path*, not the subject of study.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.net.packet import Segment, SegmentKind
from repro.sim.events import AnyOf
from repro.sim.resources import Store
from repro.sim.timeunits import SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.nic import Rnic
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams

#: Control-handler slot the TCP stack claims on the NIC.
TCP_PORT = 1
_CHUNK = 64 * 1024
_conn_ids = itertools.count(1)


class TcpError(RuntimeError):
    """Connection failed or was refused."""


@dataclass
class _TcpPacket:
    kind: str                  #: syn | syn_ack | data | fin
    conn_id: int
    src_host: int
    service_port: int
    nbytes: int = 0
    last: bool = False
    msg_payload: Any = None
    port: int = TCP_PORT       #: NIC control-handler dispatch key


class TcpSocket:
    """One established TCP connection endpoint."""

    def __init__(self, agent: "TcpAgent", conn_id: int, remote_host: int,
                 service_port: int):
        self.agent = agent
        self.conn_id = conn_id
        self.remote_host = remote_host
        self.service_port = service_port
        self.incoming: Store = Store(agent.sim, name=f"tcp{conn_id}:in")
        self.closed = False
        self._rx_pending: int = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.keepalive = True      #: SO_KEEPALIVE — on, unlike raw RDMA

    def send(self, nbytes: int, payload: Any = None):
        """Generator: write ``nbytes`` (one application message)."""
        if self.closed:
            raise TcpError("socket closed")
        params = self.agent.params
        # Syscall + copy costs on the send side.
        yield self.agent.sim.timeout(
            params.tcp_per_msg_overhead_ns
            + int(nbytes * params.tcp_per_byte_ns))
        offset = 0
        while True:
            chunk = min(_CHUNK, nbytes - offset)
            last = offset + chunk >= nbytes
            self.agent._send(self.remote_host, _TcpPacket(
                kind="data", conn_id=self.conn_id,
                src_host=self.agent.nic.host_id,
                service_port=self.service_port, nbytes=chunk, last=last,
                msg_payload=payload if last else None))
            self.tx_bytes += chunk
            offset += chunk
            if last:
                break

    def recv(self):
        """Event: the next complete application message
        ``(nbytes, payload)``."""
        return self.incoming.get()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.agent._send(self.remote_host, _TcpPacket(
            kind="fin", conn_id=self.conn_id,
            src_host=self.agent.nic.host_id,
            service_port=self.service_port))
        self.agent.sockets.pop(self.conn_id, None)


class TcpListener:
    def __init__(self, sim: "Simulator", service_port: int):
        self.service_port = service_port
        self.accepted: Store = Store(sim, name=f"tcplisten{service_port}")


class TcpAgent:
    """Per-host kernel TCP stand-in."""

    def __init__(self, sim: "Simulator", params: "SimParams", nic: "Rnic"):
        self.sim = sim
        self.params = params
        self.nic = nic
        self.listeners: Dict[int, TcpListener] = {}
        self.sockets: Dict[int, TcpSocket] = {}
        self._pending_syn: Dict[int, Any] = {}
        self._rx_accumulator: Dict[int, int] = {}
        nic.control_handlers[TCP_PORT] = self._on_segment

    # ---------------------------------------------------------------- server
    def listen(self, service_port: int) -> TcpListener:
        if service_port in self.listeners:
            raise ValueError(f"TCP port {service_port} already listening")
        listener = TcpListener(self.sim, service_port)
        self.listeners[service_port] = listener
        return listener

    # ---------------------------------------------------------------- client
    def connect(self, remote_host: int, service_port: int,
                timeout_ns: int = 2 * SECONDS):
        """Generator: 3-way handshake (≈100 µs, Sec. III Issue 3)."""
        yield self.sim.timeout(self.params.tcp_connect_ns)
        conn_id = next(_conn_ids)
        reply = self.sim.event(f"tcp:synack{conn_id}")
        self._pending_syn[conn_id] = reply
        self._send(remote_host, _TcpPacket(
            kind="syn", conn_id=conn_id, src_host=self.nic.host_id,
            service_port=service_port))
        result = yield AnyOf(self.sim, [reply, self.sim.timeout(timeout_ns)])
        self._pending_syn.pop(conn_id, None)
        if reply not in result:
            raise TcpError(f"connect to {remote_host}:{service_port} timed out")
        if reply.value is None:
            raise TcpError(f"{remote_host}:{service_port} refused")
        socket = TcpSocket(self, conn_id, remote_host, service_port)
        self.sockets[conn_id] = socket
        return socket

    # -------------------------------------------------------------- delivery
    def _send(self, remote_host: int, packet: _TcpPacket) -> None:
        segment = Segment(src=self.nic.host_id, dst=remote_host,
                          size=max(packet.nbytes, 64),
                          kind=SegmentKind.CONTROL, ecn_capable=False,
                          payload=packet)
        if remote_host == self.nic.host_id:
            self.sim.call_after(self.params.link_propagation_ns,
                                lambda: self._on_segment(segment))
        elif self.nic.uplink is not None:
            self.nic.uplink.enqueue(segment)

    def _on_segment(self, segment: Segment) -> None:
        packet: _TcpPacket = segment.payload
        if packet.kind == "syn":
            listener = self.listeners.get(packet.service_port)
            if listener is None:
                self._send(packet.src_host, _TcpPacket(
                    kind="syn_ack", conn_id=packet.conn_id,
                    src_host=self.nic.host_id,
                    service_port=packet.service_port, nbytes=0,
                    msg_payload=None, last=False))
                return
            socket = TcpSocket(self, packet.conn_id, packet.src_host,
                               packet.service_port)
            self.sockets[packet.conn_id] = socket
            listener.accepted.put_nowait(socket)
            self._send(packet.src_host, _TcpPacket(
                kind="syn_ack", conn_id=packet.conn_id,
                src_host=self.nic.host_id,
                service_port=packet.service_port, nbytes=1, last=True))
        elif packet.kind == "syn_ack":
            pending = self._pending_syn.get(packet.conn_id)
            if pending is not None and not pending.triggered:
                pending.succeed(True if packet.last else None)
        elif packet.kind == "data":
            socket = self.sockets.get(packet.conn_id)
            if socket is None:
                return
            total = self._rx_accumulator.get(packet.conn_id, 0) + packet.nbytes
            if packet.last:
                self._rx_accumulator.pop(packet.conn_id, None)
                socket.rx_bytes += total
                # Receive-side kernel costs before the app sees the message.
                self.sim.call_after(
                    self.params.tcp_per_msg_overhead_ns
                    + int(total * self.params.tcp_per_byte_ns),
                    lambda s=socket, t=total, p=packet.msg_payload:
                        s.incoming.put_nowait((t, p)))
            else:
                self._rx_accumulator[packet.conn_id] = total
        elif packet.kind == "fin":
            socket = self.sockets.pop(packet.conn_id, None)
            if socket is not None:
                socket.closed = True
