"""Accelio (xio): the early RDMA middleware with complex abstractions.

xio bounces messages through internal buffers and a heavyweight session
layer; Fig. 7 shows it consistently slowest.  We model the session-layer
cost plus a per-byte copy on both sides.
"""

from __future__ import annotations

from repro.baselines.common import MiddlewareEndpoint


class XioEndpoint(MiddlewareEndpoint):
    NAME = "xio"
    OP_OVERHEAD_NS = 1200    #: session/task machinery per op
    RX_OVERHEAD_NS = 800
    COPIES = True            #: bounce-buffer copies on both sides
