"""rsocket: the socket-API wrapper over RDMA (Related Work, Sec. VIII).

"Rsocket is a simple wrapper of RDMA APIs" — it keeps the POSIX stream
interface, which costs it a bounce-buffer copy on each side (the stream
abstraction cannot expose registered buffers to the application) plus a
small wrapper overhead, but it rides the RC transport, so it beats kernel
TCP easily while trailing purpose-built middleware.
"""

from __future__ import annotations

from repro.baselines.common import MiddlewareEndpoint


class RsocketEndpoint(MiddlewareEndpoint):
    NAME = "rsocket"
    OP_OVERHEAD_NS = 500     #: socket-semantics bookkeeping per op
    RX_OVERHEAD_NS = 350
    COPIES = True            #: stream API forces copies both sides
