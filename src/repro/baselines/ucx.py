"""UCX active-message over RC (``ucx-am-rc``), the strongest comparator.

The paper measures 5.87 µs average where X-RDMA shows 5.60 µs; the delta is
UCX's heavier dispatch path (transport selection, AM handler table, worker
progress).  We charge that as fixed per-op software overhead on top of the
identical verbs substrate.
"""

from __future__ import annotations

from repro.baselines.common import MiddlewareEndpoint


class UcxEndpoint(MiddlewareEndpoint):
    NAME = "ucx-am-rc"
    OP_OVERHEAD_NS = 380     #: worker progress + AM dispatch per op
    RX_OVERHEAD_NS = 220     #: handler lookup on delivery
    COPIES = False
