"""libfabric reliable endpoints (``fi_msg`` over verbs).

Measured at 6.20 µs in the paper versus X-RDMA's 5.60 µs — the provider
abstraction (fi_* → verbs translation, completion conversion) costs more
per operation than UCX's dispatch.
"""

from __future__ import annotations

from repro.baselines.common import MiddlewareEndpoint


class LibfabricEndpoint(MiddlewareEndpoint):
    NAME = "libfabric"
    OP_OVERHEAD_NS = 700     #: provider indirection per op
    RX_OVERHEAD_NS = 450     #: CQ entry translation
    COPIES = False
