"""Comparators from the paper's evaluation (Sec. VII-A, Fig. 7).

Each baseline runs over the *same* simulated RNIC/fabric, differing only in
the software protocol and per-operation overheads the real systems exhibit:

* :mod:`~repro.baselines.ibv_pingpong` — the native-verbs ideal baseline.
* :mod:`~repro.baselines.ucx` — UCX active-message RC (``ucx-am-rc``).
* :mod:`~repro.baselines.libfabric` — libfabric reliable endpoints.
* :mod:`~repro.baselines.xio` — accelio-style request/response.
* :mod:`~repro.baselines.tcpstack` — kernel TCP (and the Mock fallback).
"""

from repro.baselines.ibv_pingpong import IbvPingPong
from repro.baselines.libfabric import LibfabricEndpoint
from repro.baselines.rsocket import RsocketEndpoint
from repro.baselines.tcpstack import TcpAgent, TcpListener, TcpSocket
from repro.baselines.ucx import UcxEndpoint
from repro.baselines.xio import XioEndpoint

__all__ = ["IbvPingPong", "LibfabricEndpoint", "RsocketEndpoint",
           "TcpAgent", "TcpListener", "TcpSocket", "UcxEndpoint",
           "XioEndpoint"]
