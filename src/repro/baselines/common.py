"""Shared machinery for the middleware baselines of Fig. 7.

All baselines run an echo (ping-pong) workload over the same verbs
substrate; they differ in the per-operation software overhead their real
counterparts exhibit and in whether they bounce payloads through internal
copies.  The numbers are chosen so the simulated Fig. 7 ordering matches
the paper: ibv < X-RDMA (≤10% over ibv) < UCX < libfabric < xio.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.rnic.wqe import Opcode, WorkRequest
from repro.sim.timeunits import MICROS, SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, Host
    from repro.verbs.cm import CmConnection


class MiddlewareEndpoint:
    """One side of a baseline connection (subclasses set the constants)."""

    NAME = "base"
    #: software path per operation, each side (post + dispatch + callbacks)
    OP_OVERHEAD_NS = 0
    #: True for middlewares that copy payloads through bounce buffers
    COPIES = False
    #: extra fixed receive-path overhead (tag matching, am handler lookup)
    RX_OVERHEAD_NS = 0

    def __init__(self, cluster: "Cluster", host_id: int,
                 conn: "CmConnection"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.params = cluster.params
        self.host = cluster.host(host_id)
        self.conn = conn
        self.qp = conn.qp
        self._recv_posted = 0

    # ------------------------------------------------------------- plumbing
    @classmethod
    def connect_pair(cls, cluster: "Cluster", client_id: int, server_id: int,
                     service_port: int):
        """Generator: establish and return (client_ep, server_ep)."""
        client, server = cluster.host(client_id), cluster.host(server_id)
        s_pd = server.verbs.alloc_pd()
        s_cq = server.verbs.create_cq()
        listener = server.cm.listen(service_port, s_pd, s_cq, s_cq)
        c_pd = client.verbs.alloc_pd()
        c_cq = client.verbs.create_cq()
        conn = yield from client.cm.connect(server_id, service_port,
                                            c_pd, c_cq, c_cq)
        server_conn = yield listener.accepted.get()
        return (cls(cluster, client_id, conn),
                cls(cluster, server_id, server_conn))

    def prepost(self, count: int, size: int):
        """Generator: keep ``count`` receives posted."""
        for _ in range(count):
            yield self.host.verbs.post_recv(self.qp, WorkRequest(
                opcode=Opcode.RECV, length=size + 256))
            self._recv_posted += 1

    # ------------------------------------------------------------ data path
    def send(self, size: int):
        """Generator: one message of ``size`` bytes with this middleware's
        software costs applied."""
        overhead = self.OP_OVERHEAD_NS
        if self.COPIES:
            overhead += int(size * self.params.host_memcpy_per_byte_ns)
        if overhead:
            yield self.sim.timeout(overhead)
        yield self.host.verbs.post_send(self.qp, WorkRequest(
            opcode=Opcode.SEND, length=size, signaled=False))

    def wait_message(self, poll_interval_ns: int = 100):
        """Generator: block until one receive completes; returns byte_len."""
        while True:
            completions = self.qp.recv_cq.poll(1)
            if completions:
                completion = completions[0]
                overhead = self.RX_OVERHEAD_NS
                if self.COPIES:
                    overhead += int(completion.byte_len
                                    * self.params.host_memcpy_per_byte_ns)
                if overhead:
                    yield self.sim.timeout(overhead)
                return completion.byte_len
            yield self.sim.timeout(poll_interval_ns)

    # ------------------------------------------------------------ workloads
    def start_echo_server(self, iterations: int, size: int):
        """Spawn the echo loop (server side of the ping-pong)."""
        def loop():
            yield from self.prepost(min(iterations, 64) + 4, size)
            for _ in range(iterations):
                got = yield from self.wait_message()
                yield self.host.verbs.post_recv(self.qp, WorkRequest(
                    opcode=Opcode.RECV, length=size + 256))
                yield from self.send(got)
        return self.sim.spawn(loop(), name=f"{self.NAME}:echo")

    def ping_many(self, iterations: int, size: int,
                  warmup: int = 3) -> "List[int]":
        """Generator: run the ping-pong; returns one-way latencies in ns."""
        latencies: List[int] = []
        yield from self.prepost(min(iterations, 64) + 4, size)
        for index in range(iterations):
            t0 = self.sim.now
            yield from self.send(size)
            yield from self.wait_message()
            yield self.host.verbs.post_recv(self.qp, WorkRequest(
                opcode=Opcode.RECV, length=size + 256))
            if index >= warmup:
                latencies.append((self.sim.now - t0) // 2)
        return latencies


def run_pingpong(cluster: "Cluster", endpoint_cls, size: int,
                 iterations: int = 20, service_port: int = 8600):
    """Build a pair, run the ping-pong, return one-way latencies (ns)."""
    def scenario():
        client, server = yield from endpoint_cls.connect_pair(
            cluster, 0, 1, service_port)
        server.start_echo_server(iterations, size)
        latencies = yield from client.ping_many(iterations, size)
        return latencies

    proc = cluster.sim.spawn(scenario())
    return cluster.sim.run_until_event(proc, limit=120 * SECONDS)
