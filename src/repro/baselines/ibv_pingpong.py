"""``ibv_rc_pingpong``: the native-verbs ideal baseline (Sec. VII-A).

"It has no extra overhead other than the primitive RDMA operations" — so
this endpoint is :class:`MiddlewareEndpoint` with every software constant
at zero.
"""

from __future__ import annotations

from repro.baselines.common import MiddlewareEndpoint


class IbvPingPong(MiddlewareEndpoint):
    NAME = "ibv-pingpong"
    OP_OVERHEAD_NS = 0
    RX_OVERHEAD_NS = 0
    COPIES = False
