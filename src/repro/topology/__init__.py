"""Fabric topology: links, egress ports and the Clos builder (Fig. 1)."""

from repro.topology.clos import ClosTopology, RoutingTable
from repro.topology.link import EgressPort

__all__ = ["ClosTopology", "EgressPort", "RoutingTable"]
