"""Three-tier Clos fabric builder (Fig. 1: spine / leaf / ToR).

The builder creates switches, wires full-duplex links, installs one shared
:class:`RoutingTable`, and exposes :meth:`ClosTopology.attach` for host NICs.

Routing is destination-based:

* a ToR delivers to directly attached hosts, otherwise hashes the flow over
  its leaf uplinks;
* a leaf delivers down to a ToR in its pod, otherwise hashes over spines;
* a spine hashes over the destination pod's leaves.

The ECMP hash is an arithmetic function of ``(flow_id, src, dst, salt)`` so
runs are reproducible regardless of ``PYTHONHASHSEED``.

Routing state is a **flyweight**: every switch consults the *same*
:class:`RoutingTable` (a handful of integers plus the host-slot array),
keyed by its role and role index.  Per-switch state is therefore O(ports),
not O(cluster) — the property the 1000-node emulation path depends on.
Before this, each switch held a route closure capturing the whole
``ClosTopology``, so per-node routing state grew with the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.net.device import Device
from repro.net.packet import Segment
from repro.switching.switch import Switch
from repro.topology.link import EgressPort

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stats import NetStats
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams
    from repro.sim.rng import RngRegistry


def _ecmp_hash(flow_id: int, src: int, dst: int, salt: int, n: int) -> int:
    """Stable ECMP choice in ``[0, n)``."""
    key = (flow_id * 1_000_003
           + src * 10_007
           + dst * 97
           + salt * 31)
    return key % n


@dataclass
class _HostSlot:
    tor: Switch
    tor_down_port: int           #: ToR egress port pointing at the host
    device: Optional[Device] = None
    uplink: Optional[EgressPort] = None
    #: additional ToR down-ports for multi-port NICs (dual-port CX4-Lx)
    extra_down_ports: List[int] = field(default_factory=list)


class RoutingTable:
    """The shared destination-based routing function for one fabric.

    One instance serves every switch: a switch presents its role
    (:attr:`Switch.ROLE_TOR` / ``ROLE_LEAF`` / ``ROLE_SPINE``) and role
    index, and the table computes the egress port from five dimension
    integers plus the host-slot array.  Decisions are bit-for-bit the same
    arithmetic the per-switch closures used to perform, so schedules (and
    golden digests) are unchanged.
    """

    __slots__ = ("n_pods", "leaves_per_pod", "tors_per_pod",
                 "hosts_per_tor", "n_spines", "_slots")

    def __init__(self, n_pods: int, leaves_per_pod: int, tors_per_pod: int,
                 hosts_per_tor: int, n_spines: int,
                 slots: List[Optional[_HostSlot]]):
        self.n_pods = n_pods
        self.leaves_per_pod = leaves_per_pod
        self.tors_per_pod = tors_per_pod
        self.hosts_per_tor = hosts_per_tor
        self.n_spines = n_spines
        self._slots = slots          # shared with the owning ClosTopology

    # ------------------------------------------------------------- dispatch
    def route(self, role: int, index: int, segment: Segment) -> int:
        """Egress port for ``segment`` at the switch ``(role, index)``."""
        if role == Switch.ROLE_TOR:
            return self._route_tor(index, segment)
        if role == Switch.ROLE_LEAF:
            return self._route_leaf(index, segment)
        return self._route_spine(index, segment)

    # ------------------------------------------------------------ per-role
    def _route_tor(self, tor_index: int, segment: Segment) -> int:
        dst = segment.dst
        if dst // self.hosts_per_tor == tor_index:
            slot = self._slots[dst]
            if slot is None or slot.device is None:
                raise RuntimeError(
                    f"segment for unattached host {dst}")
            if slot.extra_down_ports:
                # Multi-port host: spread flows across its links.
                ports = [slot.tor_down_port] + slot.extra_down_ports
                return ports[_ecmp_hash(segment.flow_id, segment.src, dst,
                                        salt=dst, n=len(ports))]
            return dst % self.hosts_per_tor
        choice = _ecmp_hash(segment.flow_id, segment.src, dst,
                            salt=tor_index, n=self.leaves_per_pod)
        return self.hosts_per_tor + choice

    def _route_leaf(self, leaf_index: int, segment: Segment) -> int:
        pod = leaf_index // self.leaves_per_pod
        dst = segment.dst
        if self.host_pod(dst) == pod:
            return (dst // self.hosts_per_tor) % self.tors_per_pod
        choice = _ecmp_hash(segment.flow_id, segment.src, dst,
                            salt=1000 + leaf_index, n=self.n_spines)
        return self.tors_per_pod + choice

    def _route_spine(self, spine_index: int, segment: Segment) -> int:
        dst = segment.dst
        pod = self.host_pod(dst)
        leaf_choice = _ecmp_hash(segment.flow_id, segment.src, dst,
                                 salt=2000 + spine_index,
                                 n=self.leaves_per_pod)
        # Spine down-ports were added pod-major, leaf-minor.
        return pod * self.leaves_per_pod + leaf_choice

    # ----------------------------------------------------------- dimensions
    def host_pod(self, host: int) -> int:
        return host // (self.tors_per_pod * self.hosts_per_tor)

    def host_tor_index(self, host: int) -> int:
        return host // self.hosts_per_tor

    # ------------------------------------------------------ path enumeration
    def flow_path(self, flow_id: int, src: int, dst: int) -> List[Tuple[int, int, int]]:
        """The ``(role, role_index, egress_port)`` switch hops a flow takes.

        Pure arithmetic over the same ECMP decisions :meth:`route` makes —
        no segments, no events, and (unlike :meth:`route`) no requirement
        that either endpoint is attached: the down-port of an unattached
        single-port destination is its canonical ``dst % hosts_per_tor``
        slot.  This is what flow-aggregate channels use to charge
        background load onto the ports a flow would traverse.
        """
        hops: List[Tuple[int, int, int]] = []
        if src == dst:
            return hops
        hpt = self.hosts_per_tor
        src_tor = src // hpt
        dst_tor = dst // hpt

        def tor_down_port() -> int:
            slot = self._slots[dst]
            if slot is not None and slot.device is not None \
                    and slot.extra_down_ports:
                ports = [slot.tor_down_port] + slot.extra_down_ports
                return ports[_ecmp_hash(flow_id, src, dst, salt=dst,
                                        n=len(ports))]
            return dst % hpt

        if src_tor == dst_tor:
            hops.append((Switch.ROLE_TOR, src_tor, tor_down_port()))
            return hops
        up = hpt + _ecmp_hash(flow_id, src, dst, salt=src_tor,
                              n=self.leaves_per_pod)
        hops.append((Switch.ROLE_TOR, src_tor, up))
        src_pod = self.host_pod(src)
        leaf_index = src_pod * self.leaves_per_pod + (up - hpt)
        if self.host_pod(dst) == src_pod:
            hops.append((Switch.ROLE_LEAF, leaf_index,
                         dst_tor % self.tors_per_pod))
        else:
            spine_choice = _ecmp_hash(flow_id, src, dst,
                                      salt=1000 + leaf_index, n=self.n_spines)
            hops.append((Switch.ROLE_LEAF, leaf_index,
                         self.tors_per_pod + spine_choice))
            dst_pod = self.host_pod(dst)
            leaf_choice = _ecmp_hash(flow_id, src, dst,
                                     salt=2000 + spine_choice,
                                     n=self.leaves_per_pod)
            hops.append((Switch.ROLE_SPINE, spine_choice,
                         dst_pod * self.leaves_per_pod + leaf_choice))
            leaf_index = dst_pod * self.leaves_per_pod + leaf_choice
            hops.append((Switch.ROLE_LEAF, leaf_index,
                         dst_tor % self.tors_per_pod))
        hops.append((Switch.ROLE_TOR, dst_tor, tor_down_port()))
        return hops


class ClosTopology:
    """Builds and owns the fabric; hosts attach by id."""

    def __init__(self, sim: "Simulator", params: "SimParams",
                 stats: "NetStats", rng: "RngRegistry",
                 n_pods: int = 1, leaves_per_pod: int = 2,
                 tors_per_pod: int = 2, hosts_per_tor: int = 4,
                 n_spines: int = 2):
        if min(n_pods, leaves_per_pod, tors_per_pod, hosts_per_tor) < 1:
            raise ValueError("all Clos dimensions must be >= 1")
        if n_pods > 1 and n_spines < 1:
            raise ValueError("multi-pod fabrics need at least one spine")
        self.sim = sim
        self.params = params
        self.stats = stats
        self.rng = rng
        self.n_pods = n_pods
        self.leaves_per_pod = leaves_per_pod
        self.tors_per_pod = tors_per_pod
        self.hosts_per_tor = hosts_per_tor
        self.n_spines = n_spines

        self.tors: List[Switch] = []       # index: pod * tors_per_pod + t
        self.leaves: List[Switch] = []     # index: pod * leaves_per_pod + l
        self.spines: List[Switch] = []
        #: flat host-slot array sized at build (index: host id); shared with
        #: the routing table — None until the host attaches.
        self._slots: List[Optional[_HostSlot]] = \
            [None] * (n_pods * tors_per_pod * hosts_per_tor)
        self.routing = RoutingTable(n_pods, leaves_per_pod, tors_per_pod,
                                    hosts_per_tor, n_spines, self._slots)
        self._build()

    # ------------------------------------------------------------ dimensions
    @property
    def n_hosts(self) -> int:
        return self.n_pods * self.tors_per_pod * self.hosts_per_tor

    def host_pod(self, host: int) -> int:
        return host // (self.tors_per_pod * self.hosts_per_tor)

    def host_tor_index(self, host: int) -> int:
        """Global ToR index for a host id."""
        return host // self.hosts_per_tor

    def hosts_of_tor(self, tor_index: int) -> range:
        base = tor_index * self.hosts_per_tor
        return range(base, base + self.hosts_per_tor)

    # ------------------------------------------------------------------ build
    def _switch(self, name: str) -> Switch:
        return Switch(self.sim, self.params, self.stats,
                      self.rng.stream(f"switch:{name}"), name)

    def _link(self, a: Switch, a_port: int, b: Switch, b_port: int) -> None:
        """Wire a full-duplex link between two existing switch ports."""
        a.ports[a_port].connect(b, b_port)
        b.ports[b_port].connect(a, a_port)
        a.register_neighbor(a_port, b, b_port)
        b.register_neighbor(b_port, a, a_port)

    def _build(self) -> None:
        for s in range(self.n_spines):
            self.spines.append(self._switch(f"spine{s}"))
        for pod in range(self.n_pods):
            for l in range(self.leaves_per_pod):
                self.leaves.append(self._switch(f"leaf{pod}.{l}"))
            for t in range(self.tors_per_pod):
                self.tors.append(self._switch(f"tor{pod}.{t}"))

        # ToR ports: [0, hosts_per_tor) down to hosts,
        #            [hosts_per_tor, +leaves_per_pod) up to pod leaves.
        for tor_index, tor in enumerate(self.tors):
            pod = tor_index // self.tors_per_pod
            for _ in range(self.hosts_per_tor):
                tor.add_port()       # connected when the host attaches
            for l in range(self.leaves_per_pod):
                up = tor.add_port()
                leaf = self.leaves[pod * self.leaves_per_pod + l]
                down = leaf.add_port()
                self._link(tor, up, leaf, down)
            tor.install_routing(self.routing, Switch.ROLE_TOR, tor_index)

        # Leaf ports: [0, tors_per_pod) down (wired above),
        #             [tors_per_pod, +n_spines) up to all spines.
        for leaf_index, leaf in enumerate(self.leaves):
            for s in range(self.n_spines):
                up = leaf.add_port()
                spine = self.spines[s]
                down = spine.add_port()
                self._link(leaf, up, spine, down)
            leaf.install_routing(self.routing, Switch.ROLE_LEAF, leaf_index)

        # Spine ports: leaves in wiring order — pod-major, leaf-minor.
        for spine_index, spine in enumerate(self.spines):
            spine.install_routing(self.routing, Switch.ROLE_SPINE,
                                  spine_index)

    # ----------------------------------------------------------------- hosts
    def attach(self, host: int, device: Device,
               bandwidth_bps: Optional[float] = None) -> EgressPort:
        """Plug ``device`` in as host ``host``; returns its uplink port.

        The device will see :meth:`Device.receive` calls with ``in_port=0``
        and PFC gating via :meth:`Device.pause_port` on port 0.
        """
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host id {host} outside [0, {self.n_hosts})")
        existing = self._slots[host]
        if existing is not None and existing.device is not None:
            raise ValueError(f"host {host} already attached")
        tor = self.tors[self.host_tor_index(host)]
        down_port = host % self.hosts_per_tor

        uplink = EgressPort(self.sim, self.params, name=f"host{host}.up",
                            bandwidth_bps=bandwidth_bps)
        # ToR's ingress from this host is numbered by the down-port index.
        uplink.connect(tor, down_port)
        tor.ports[down_port].connect(device, 0)
        tor.register_neighbor(down_port, device, 0)

        self._slots[host] = _HostSlot(
            tor=tor, tor_down_port=down_port, device=device, uplink=uplink)
        return uplink

    def attach_extra_port(self, host: int, device: Device, nic_port: int,
                          bandwidth_bps: Optional[float] = None
                          ) -> EgressPort:
        """Wire an additional NIC port for ``host`` to its ToR.

        The device receives with ``in_port=nic_port`` and is PFC-gated via
        ``pause_port(nic_port, ...)``; the ToR spreads inbound flows over
        all of the host's links.
        """
        slot = self._slots[host] if 0 <= host < self.n_hosts else None
        if slot is None or slot.device is not device:
            raise ValueError(f"host {host} must attach its primary port first")
        tor = slot.tor
        down_port = tor.add_port()
        uplink = EgressPort(self.sim, self.params,
                            name=f"host{host}.up{nic_port}",
                            bandwidth_bps=bandwidth_bps)
        uplink.connect(tor, down_port)
        tor.ports[down_port].connect(device, nic_port)
        tor.register_neighbor(down_port, device, nic_port)
        slot.extra_down_ports.append(down_port)
        return uplink

    def host_device(self, host: int) -> Device:
        slot = self._slots[host] if 0 <= host < self.n_hosts else None
        if slot is None or slot.device is None:
            raise KeyError(f"host {host} is not attached")
        return slot.device

    def host_uplink(self, host: int) -> Optional[EgressPort]:
        """The attached host's primary uplink (None when unattached)."""
        slot = self._slots[host] if 0 <= host < self.n_hosts else None
        if slot is None:
            return None
        return slot.uplink

    def switch_for(self, role: int, index: int) -> Switch:
        """The switch at a routing-table ``(role, index)`` coordinate."""
        if role == Switch.ROLE_TOR:
            return self.tors[index]
        if role == Switch.ROLE_LEAF:
            return self.leaves[index]
        return self.spines[index]

    def path_hops(self, src: int, dst: int) -> int:
        """Switch count on the (ECMP-independent) src→dst path."""
        if src == dst:
            return 0
        if self.host_tor_index(src) == self.host_tor_index(dst):
            return 1
        if self.host_pod(src) == self.host_pod(dst):
            return 3  # tor-leaf-tor
        return 5      # tor-leaf-spine-leaf-tor
