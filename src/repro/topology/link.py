"""Egress ports: the queue + wire model.

Every transmitting entity (a switch output, a NIC uplink) owns an
:class:`EgressPort`.  The port serializes segments at the link bandwidth,
honours PFC pause at packet boundaries, and delivers to the peer device
after the propagation delay.

Buffer *admission* is the owner's job (switches check occupancy before
calling :meth:`EgressPort.enqueue`); the port itself only accounts bytes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.net.packet import Segment

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.device import Device
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams


class EgressPort:
    """A FIFO transmit queue feeding one unidirectional wire."""

    def __init__(self, sim: "Simulator", params: "SimParams", name: str,
                 bandwidth_bps: Optional[float] = None,
                 on_dequeue: Optional[Callable[[Segment], None]] = None):
        self.sim = sim
        self.params = params
        self.name = name
        self.bandwidth_bps = bandwidth_bps or params.link_bandwidth_bps
        self.peer: Optional["Device"] = None
        self.peer_port: int = 0
        self.queue: Deque[Segment] = deque()
        self.queued_bytes = 0
        self.paused = False
        self.busy = False
        #: owner hook, fires when a segment leaves the queue (PFC xon checks)
        self.on_dequeue = on_dequeue
        self.tx_segments = 0
        self.tx_bytes = 0

    def connect(self, peer: "Device", peer_port: int) -> None:
        """Point the wire at ``peer``'s ingress ``peer_port``."""
        self.peer = peer
        self.peer_port = peer_port

    # -------------------------------------------------------------- data path
    def enqueue(self, segment: Segment) -> None:
        """Queue a segment for transmission (admission already decided)."""
        if self.peer is None:
            raise RuntimeError(f"egress port {self.name!r} is not connected")
        self.queue.append(segment)
        self.queued_bytes += segment.size
        segment.enqueued_at = self.sim.now
        self._kick()

    def set_paused(self, paused: bool) -> None:
        """PFC gate: True blocks transmission at the next packet boundary."""
        self.paused = paused
        if not paused:
            self._kick()

    # ------------------------------------------------------------ out-of-band
    def send_immediate(self, segment: Segment) -> None:
        """Deliver bypassing the queue (PFC pause frames are link-level)."""
        if self.peer is None:
            raise RuntimeError(f"egress port {self.name!r} is not connected")
        peer, port = self.peer, self.peer_port
        self.sim.call_after(
            self.params.link_propagation_ns,
            lambda: peer.receive(segment, port))

    # --------------------------------------------------------------- internal
    def _kick(self) -> None:
        if not self.busy and not self.paused and self.queue:
            self.busy = True
            self.sim.spawn(self._tx_loop(), name=f"{self.name}:tx")

    def _serialization_ns(self, segment: Segment) -> int:
        wire_bytes = segment.size + self.params.header_bytes
        return max(1, int(round(wire_bytes * 8 / self.bandwidth_bps * 1e9)))

    def _tx_loop(self):
        while self.queue and not self.paused:
            segment = self.queue.popleft()
            self.queued_bytes -= segment.size
            yield self.sim.timeout(self._serialization_ns(segment))
            self.tx_segments += 1
            self.tx_bytes += segment.size
            peer, port = self.peer, self.peer_port
            self.sim.call_after(
                self.params.link_propagation_ns,
                lambda seg=segment: peer.receive(seg, port))
            if self.on_dequeue is not None:
                self.on_dequeue(segment)
        self.busy = False
        # A resume or enqueue may have landed while we were serializing the
        # final segment; re-check so nothing is stranded.
        self._kick()
