"""Egress ports: the queue + wire model.

Every transmitting entity (a switch output, a NIC uplink) owns an
:class:`EgressPort`.  The port serializes segments at the link bandwidth,
honours PFC pause at packet boundaries, and delivers to the peer device
after the propagation delay.

Buffer *admission* is the owner's job (switches check occupancy before
calling :meth:`EgressPort.enqueue`); the port itself only accounts bytes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.net.packet import Segment
from repro.sim.events import Event, Timeout, _PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.device import Device
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams


class EgressPort:
    """A FIFO transmit queue feeding one unidirectional wire."""

    __slots__ = ("sim", "params", "name", "bandwidth_bps",
                 "base_bandwidth_bps", "background_bps", "peer",
                 "peer_port", "queue", "queued_bytes", "pause_mask", "busy",
                 "on_dequeue", "tx_segments", "tx_bytes", "_tx_started",
                 "_wake", "_park", "_ser_cache")

    #: pause mask gating every priority class (legacy whole-port gate)
    PAUSE_ALL = -1

    def __init__(self, sim: "Simulator", params: "SimParams", name: str,
                 bandwidth_bps: Optional[float] = None,
                 on_dequeue: Optional[Callable[[Segment], None]] = None):
        self.sim = sim
        self.params = params
        self.name = name
        self.bandwidth_bps = bandwidth_bps or params.link_bandwidth_bps
        #: nominal link rate; ``bandwidth_bps`` is the *residual* capacity
        #: once flow-aggregate background load is subtracted
        self.base_bandwidth_bps = self.bandwidth_bps
        self.background_bps = 0.0
        self.peer: Optional["Device"] = None
        self.peer_port: int = 0
        self.queue: Deque[Segment] = deque()
        self.queued_bytes = 0
        #: bit ``p`` set == PFC priority class ``p`` is paused
        self.pause_mask = 0
        self.busy = False
        #: owner hook, fires when a segment leaves the queue (PFC xon checks)
        self.on_dequeue = on_dequeue
        self.tx_segments = 0
        self.tx_bytes = 0
        # One persistent tx process per port (spawned lazily on first
        # traffic) parked on a wake event while idle — spawning a fresh
        # generator per burst costs a Process + bootstrap Event each time.
        self._tx_started = False
        self._wake: Optional[Event] = None
        self._park: Optional[Event] = None      # recycled idle-wake event
        # Serialization time depends only on segment size; workloads use a
        # handful of sizes, so memoizing skips the float math per segment.
        self._ser_cache: dict = {}

    def connect(self, peer: "Device", peer_port: int) -> None:
        """Point the wire at ``peer``'s ingress ``peer_port``."""
        self.peer = peer
        self.peer_port = peer_port

    @property
    def paused(self) -> bool:
        """True when any priority class is gated (legacy inspection name)."""
        return self.pause_mask != 0

    # -------------------------------------------------------------- data path
    def enqueue(self, segment: Segment) -> None:
        """Queue a segment for transmission (admission already decided)."""
        if self.peer is None:
            raise RuntimeError(f"egress port {self.name!r} is not connected")
        self.queue.append(segment)
        self.queued_bytes += segment.size
        segment.enqueued_at = self.sim._now   # direct: per-segment hot path
        # Inlined _kick (minus its queue check — we just appended): under
        # load the port is already draining and this is one compare.  The
        # gate is head-of-line: the port is a single FIFO, so it transmits
        # iff the *head* segment's class is unpaused.
        if not self.busy and not (
                self.pause_mask
                and (self.pause_mask >> self.queue[0].priority) & 1):
            self.busy = True
            if not self._tx_started:
                self._tx_started = True
                self.sim.spawn(self._tx_loop(), name=f"{self.name}:tx")
            else:
                wake, self._wake = self._wake, None
                assert wake is not None  # parked loop always leaves its wake
                wake.succeed(None)

    def set_paused(self, paused: bool,
                   priority: int = PAUSE_ALL) -> None:
        """PFC gate for one priority class (default: every class).

        Pausing takes effect at the next packet boundary.  Only the named
        class is gated — traffic of other classes keeps transmitting unless
        a paused-class segment is at the head of the FIFO (802.1Qbb with
        the single-queue head-of-line caveat, see DESIGN.md).
        """
        if priority == EgressPort.PAUSE_ALL:
            self.pause_mask = -1 if paused else 0
        elif paused:
            self.pause_mask |= (1 << priority)
        else:
            self.pause_mask &= ~(1 << priority)
        if not paused:
            self._kick()

    def set_background_load(self, bps: float) -> None:
        """Reserve ``bps`` of this link for flow-aggregate background
        traffic: foreground segments serialize at the residual capacity.

        Background load is fluid — it costs no events; its only footprint
        is this bandwidth reservation plus the byte counters the owning
        :class:`~repro.net.aggregate.AggregateTraffic` settles.  The
        residual never drops below 5% of the nominal rate, mirroring how
        switch schedulers keep a starvation floor for any active queue.
        """
        self.background_bps = bps
        self.bandwidth_bps = max(self.base_bandwidth_bps - bps,
                                 self.base_bandwidth_bps * 0.05)
        self._ser_cache.clear()

    # ------------------------------------------------------------ out-of-band
    def send_immediate(self, segment: Segment) -> None:
        """Deliver bypassing the queue (PFC pause frames are link-level)."""
        if self.peer is None:
            raise RuntimeError(f"egress port {self.name!r} is not connected")
        peer, port = self.peer, self.peer_port
        self.sim.call_after(
            self.params.link_propagation_ns,
            lambda: peer.receive(segment, port))

    # --------------------------------------------------------------- internal
    def _kick(self) -> None:
        if self.busy or not self.queue:
            return
        if self.pause_mask and (self.pause_mask >> self.queue[0].priority) & 1:
            return
        self.busy = True
        if not self._tx_started:
            self._tx_started = True
            self.sim.spawn(self._tx_loop(), name=f"{self.name}:tx")
        else:
            wake, self._wake = self._wake, None
            assert wake is not None  # parked loop always leaves its wake
            wake.succeed(None)

    def _serialization_ns(self, segment: Segment) -> int:
        ns = self._ser_cache.get(segment.size)
        if ns is None:
            wire_bytes = segment.size + self.params.header_bytes
            ns = max(1, int(round(wire_bytes * 8 / self.bandwidth_bps * 1e9)))
            self._ser_cache[segment.size] = ns
        return ns

    def _tx_loop(self):
        sim = self.sim
        propagation_ns = self.params.link_propagation_ns
        ser_cache = self._ser_cache
        queue = self.queue
        popleft = queue.popleft
        # The wire's endpoint is fixed once connected (the loop only spawns
        # after the first enqueue, which requires a peer), so resolve the
        # receive target once instead of per segment.
        peer_receive = self.peer.receive
        peer_port = self.peer_port
        on_dequeue = self.on_dequeue     # fixed at construction

        # Fired deliver-timeouts come back here for reuse (several can be
        # in flight at once on a long wire, hence a pool, not a single).
        deliver_pool: list = []

        def deliver_cb(ev):
            # Shared across all deliveries on this wire: the segment rides
            # as the timeout's value, so no per-segment closure is built.
            peer_receive(ev._value, peer_port)
            deliver_pool.append(ev)

        # The serialization timeout has exactly one in flight (the loop
        # blocks on it), so a single recycled object serves every segment.
        ser_timeout: Optional[Timeout] = None
        while True:
            while queue and not (
                    self.pause_mask
                    and (self.pause_mask >> queue[0].priority) & 1):
                segment = popleft()
                ser_ns = ser_cache.get(segment.size)
                if ser_ns is None:
                    ser_ns = self._serialization_ns(segment)
                if ser_timeout is None:
                    ser_timeout = Timeout(sim, ser_ns)
                else:
                    ser_timeout._rearm(ser_ns)
                yield ser_timeout
                # Accounting happens at the dequeue-complete instant: the
                # segment occupies the buffer until it has fully left the
                # wire, so occupancy-based PFC/ECN decisions never see a
                # window where bytes vanished while the port is still busy.
                size = segment.size
                self.queued_bytes -= size
                self.tx_segments += 1
                self.tx_bytes += size
                # Hand-inlined call_after with the segment as the timeout's
                # value: zero per-delivery closures, recycled objects.
                if deliver_pool:
                    deliver = deliver_pool.pop()._rearm(
                        propagation_ns, segment)
                else:
                    deliver = Timeout(sim, propagation_ns, segment)
                deliver.callbacks.append(deliver_cb)
                if on_dequeue is not None:
                    on_dequeue(segment)
            # Idle (or paused): park on a wake event until the next kick.
            # The wake object is recycled across idle transitions — after
            # it fires nothing else holds a reference (the loop was its
            # only waiter), so resetting three slots replaces a fresh
            # allocation per idle gap.
            self.busy = False
            wake = self._park
            if wake is None:
                wake = self._park = Event(sim)
            else:
                wake._value = _PENDING
                wake._ok = None
                wake.callbacks = []
            self._wake = wake
            yield wake
