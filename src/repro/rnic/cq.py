"""Completion queues.

A CQ has a fixed depth; overflowing it is a hard error in real hardware, so
it is one here too (X-RDMA's in-flight window keeps WRs below CQ depth
precisely to avoid that).  ``notify`` arms an event callback used to emulate
the completion-channel fd that epoll waits on.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.rnic.wqe import Completion

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

_cq_ids = itertools.count(1)


class CqOverflow(RuntimeError):
    """More completions outstanding than the CQ depth."""


class CompletionQueue:
    def __init__(self, sim: "Simulator", depth: int = 1024):
        if depth <= 0:
            raise ValueError(f"CQ depth must be positive: {depth}")
        self.sim = sim
        self.cq_id = next(_cq_ids)
        self.depth = depth
        self._entries: Deque[Completion] = deque()
        self._notify_cb: Optional[Callable[[], None]] = None
        self.total_completions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        """NIC-side: append a CQE (hard error on overflow, like hardware)."""
        if len(self._entries) >= self.depth:
            raise CqOverflow(
                f"CQ {self.cq_id} overflow at depth {self.depth}")
        completion.timestamp = self.sim.now
        self._entries.append(completion)
        self.total_completions += 1
        if self._notify_cb is not None:
            callback, self._notify_cb = self._notify_cb, None
            callback()

    def poll(self, max_entries: int = 16) -> List[Completion]:
        """Drain up to ``max_entries`` CQEs (non-blocking, like ibv_poll_cq)."""
        out: List[Completion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def request_notify(self, callback: Callable[[], None]) -> None:
        """One-shot: call ``callback`` at the next CQE (completion channel).

        If entries are already pending, fires immediately — matching the
        ibv_req_notify_cq + recheck idiom.
        """
        if self._entries:
            callback()
        else:
            self._notify_cb = callback
