"""The RNIC engine: transmit scheduling, the RC protocol, and completion.

Modelling choices that matter to the middleware experiments:

* **WQE-atomic transmit.**  The engine works on one WQE until its segments
  are all out (pacing gaps excepted), so a multi-megabyte WRITE occupies the
  engine and delays every other QP — the head-of-line blocking X-RDMA's
  64 KB fragmentation removes (Sec. V-C).
* **Go-back-N RC.**  Each data fragment consumes a PSN; the receiver accepts
  in order only.  Loss or RNR rewinds the sender to the oldest unacked
  message.  Retry budgets exhausting moves the QP to ERROR and flushes,
  exactly the failure the keepAlive extension exists to detect early.
* **RNR NAK.**  A SEND whose first fragment finds no posted receive raises
  a receiver-not-ready NAK (counted in :class:`~repro.net.stats.NetStats`,
  Fig. 9) and backs the sender off.
* **DCQCN per QP.**  Data fragments reserve wire time from the QP's
  rate limiter; ECN-marked arrivals answer with CNPs (paced per flow).
* **QP-context cache.**  An LRU of ``nic_qp_cache_entries`` QPNs; a miss
  charges ``nic_qp_cache_miss_ns`` of engine time (Sec. VII-F exp. 1).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import (TYPE_CHECKING, Callable, Deque, Dict, Optional, Union)

from repro.net.device import Device
from repro.sim.events import Timeout
from repro.net.packet import Segment, SegmentKind
from repro.rnic.cq import CompletionQueue
from repro.rnic.mr import MrTable
from repro.rnic.packets import CTRL_BYTES, RcKind, RcPacket
from repro.rnic.qp import (InboundMessage, OutboundMessage, QpState,
                           QueuePair, SharedReceiveQueue)
from repro.rnic.wqe import Completion, Opcode, WorkRequest, WrStatus
from repro.transport.dcqcn import CnpGovernor, DcqcnRateLimiter

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stats import NetStats
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams
    from repro.topology.clos import ClosTopology
    from repro.topology.link import EgressPort


class _ReadJob:
    """Responder-side streaming of a remote read (no host CPU involved)."""

    __slots__ = ("requester_host", "requester_qpn", "responder_qpn",
                 "msg_id", "addr", "length", "sent")

    def __init__(self, requester_host: int, requester_qpn: int,
                 responder_qpn: int, msg_id: int, addr: int, length: int):
        self.requester_host = requester_host
        self.requester_qpn = requester_qpn
        self.responder_qpn = responder_qpn
        self.msg_id = msg_id
        self.addr = addr
        self.length = length
        self.sent = 0


_TxJob = Union[QueuePair, _ReadJob]


class Rnic(Device):
    """One host's RDMA NIC, attached to the fabric as a Device."""

    def __init__(self, sim: "Simulator", params: "SimParams",
                 stats: "NetStats", host_id: int, name: str = "",
                 tx_buffer_bytes: int = 256 * 1024):
        self.sim = sim
        self.params = params
        self.stats = stats
        self.host_id = host_id
        self.name = name or f"rnic{host_id}"
        self.uplink: Optional["EgressPort"] = None
        self.uplinks: list = []
        self._flow_ports: Dict[int, int] = {}
        self.alive = True
        self.tx_buffer_bytes = tx_buffer_bytes

        self.qps: Dict[int, QueuePair] = {}
        #: DC targets by dct_number (Sec. IX DCT evaluation)
        self.dc_targets: Dict[int, object] = {}
        self.mr_table = MrTable()
        self.limiters: Dict[int, DcqcnRateLimiter] = {}     # by local qpn
        self.cnp_governor = CnpGovernor(sim, params)
        #: CONTROL-segment handler (rdma_cm agent, TCP mock) by logical port
        self.control_handlers: Dict[int, Callable[[Segment], None]] = {}

        self._ready: Deque[_TxJob] = deque()
        self._in_ready: set = set()                         # ids of queued jobs
        self._tx_wakes: list = []
        self._qp_cache: "OrderedDict[int, bool]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.retransmits = 0
        self.rnr_naks_sent = 0
        self.rnr_naks_received = 0
        self.tx_messages = 0
        self.rx_messages = 0
        self.rx_bytes = 0
        self._watchdogs: set = set()                        # qpns with watchdog
        self.sim.spawn(self._tx_loop(), name=f"{self.name}:tx")

    # --------------------------------------------------------------- fabric
    def plug_into(self, topology: "ClosTopology",
                  bandwidth_bps: Optional[float] = None,
                  ports: int = 1) -> None:
        """Attach to the fabric with ``ports`` links (dual-port CX4-Lx).

        Flows hash across ports, so one QP keeps in-order delivery while
        the NIC's aggregate bandwidth scales with the port count.
        """
        self.uplink = topology.attach(self.host_id, self,
                                      bandwidth_bps=bandwidth_bps)
        self.uplinks = [self.uplink]
        for nic_port in range(1, ports):
            self.uplinks.append(topology.attach_extra_port(
                self.host_id, self, nic_port, bandwidth_bps=bandwidth_bps))
            # Each port brings its own processing pipeline.
            self.sim.spawn(self._tx_loop(), name=f"{self.name}:tx{nic_port}")

    def pause_port(self, port: int, priority: int, pause: bool) -> None:
        uplinks = getattr(self, "uplinks", None) or (
            [self.uplink] if self.uplink else [])
        if 0 <= port < len(uplinks):
            uplinks[port].set_paused(pause, priority)

    def _uplink_for(self, flow_id: int) -> "EgressPort":
        """Port for a flow: pinned on first use to the least-loaded port
        (per-flow stickiness preserves ordering; balanced assignment uses
        both ports the way dual-port QP placement does)."""
        uplinks = self.uplinks
        if not uplinks or len(uplinks) == 1:
            return self.uplink
        index = self._flow_ports.get(flow_id)
        if index is None:
            counts = [0] * len(uplinks)
            for assigned in self._flow_ports.values():
                counts[assigned] += 1
            index = counts.index(min(counts))
            self._flow_ports[flow_id] = index
        return uplinks[index]

    def crash(self) -> None:
        """Stop responding entirely (machine failure, Sec. III robustness)."""
        self.alive = False

    # ------------------------------------------------------------ qp surface
    def register_qp(self, qp: QueuePair) -> None:
        self.qps[qp.qpn] = qp

    def destroy_qp(self, qp: QueuePair) -> None:
        self.qps.pop(qp.qpn, None)
        self.limiters.pop(qp.qpn, None)

    def register_dc_target(self, target) -> None:
        self.dc_targets[target.dct_num] = target

    def _resolve_rx_qp(self, segment: Segment,
                       packet: RcPacket) -> Optional[QueuePair]:
        """Destination QP, demuxing DC traffic to a per-initiator responder."""
        qp = self.qps.get(packet.dst_qpn)
        if qp is not None:
            return qp
        target = self.dc_targets.get(packet.dst_qpn)
        if target is not None:
            return target._responder_for(segment.src, packet.src_qpn)
        return None

    def post_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        """NIC half of post_send; verbs charges the host-side overhead."""
        wr.posted_at = self.sim.now
        qp.post_send(wr)
        self._kick_qp(qp)

    def kick(self, qp: QueuePair) -> None:
        """Re-evaluate a QP that may have transmit work (used after unblock)."""
        self._kick_qp(qp)

    # ---------------------------------------------------------- tx machinery
    def _limiter(self, qpn: int) -> DcqcnRateLimiter:
        limiter = self.limiters.get(qpn)
        if limiter is None:
            bandwidth = (self.uplink.bandwidth_bps if self.uplink
                         else self.params.link_bandwidth_bps)
            limiter = DcqcnRateLimiter(self.sim, self.params, bandwidth)
            self.limiters[qpn] = limiter
        return limiter

    def _kick_qp(self, qp: QueuePair) -> None:
        if qp.has_tx_work() or qp.retx:
            self._enqueue_job(qp)

    def _enqueue_job(self, job: _TxJob, front: bool = False) -> None:
        if id(job) in self._in_ready:
            return
        self._in_ready.add(id(job))
        if front:
            self._ready.appendleft(job)
        else:
            self._ready.append(job)
        while self._tx_wakes:
            wake = self._tx_wakes.pop()
            if not wake.triggered:
                wake.succeed(None)

    def _pending_wqe_bytes(self, qp: QueuePair) -> int:
        """Size of the WQE about to start on ``qp`` (for pacing admission)."""
        if qp.retx:
            return max(qp.retx[0].wr.length, CTRL_BYTES)
        if qp.sq:
            return max(qp.sq[0].length, CTRL_BYTES)
        return CTRL_BYTES

    def _job_next_len(self, job: _TxJob) -> Optional[int]:
        """Bytes of the next fragment, or None if the job has nothing to do."""
        if isinstance(job, _ReadJob):
            return min(self.params.mtu_bytes, job.length - job.sent)
        qp = job
        msg = qp.current_tx
        if msg is None:
            if qp.retx:
                msg = qp.retx[0]
            elif qp.sq:
                wr = qp.sq[0]
                if wr.opcode is Opcode.READ:
                    return CTRL_BYTES
                return min(self.params.mtu_bytes, max(wr.length, 0))
            else:
                return None
        remaining = msg.wr.length - msg.sent_bytes
        return min(self.params.mtu_bytes, max(remaining, 0))

    def _tx_loop(self):
        params = self.params
        sim = self.sim
        ready = self._ready          # stable deque, hoisted for the hot loop
        in_ready = self._in_ready
        # DMA time depends only on the fragment size, and fragments come in
        # a handful of sizes (MTU, CTRL, message remainders) — memoize the
        # float math the same way EgressPort memoizes serialization.
        dma_cache: dict = {}
        segment_process_ns = params.nic_segment_process_ns
        # Exactly one occupancy timeout is in flight (the loop blocks on
        # it), so one recycled object serves every fragment.
        occ_timeout: Optional[Timeout] = None
        while True:
            if not self.alive:
                return
            if not ready:
                # Static name: one of these is born per idle transition,
                # which is far too hot for a per-event f-string.
                wake = sim.event("txwake")
                self._tx_wakes.append(wake)
                yield wake
                continue
            job = ready.popleft()
            in_ready.discard(id(job))

            is_qp = isinstance(job, QueuePair)
            if is_qp:
                if job.state is not QpState.RTS:
                    continue
                if sim._now < job.tx_blocked_until:
                    sim.call_at(job.tx_blocked_until,
                                lambda qp=job: self._kick_qp(qp))
                    continue
                if not (job.has_tx_work() or job.retx):
                    continue
                qpn = job.qpn
            else:
                qpn = job.responder_qpn

            nbytes = self._job_next_len(job)
            if nbytes is None:
                continue

            # Per-port transmit-buffer back-pressure (also stalls under
            # PFC): requeue rather than hold, so an engine never blocks
            # traffic destined for the other port.
            out_port = self._uplink_for((self.host_id << 20) | qpn)
            if (out_port is not None
                    and out_port.queued_bytes >= self.tx_buffer_bytes):
                # Back of the queue: a blocked port must not starve work
                # bound for the other port (WQE fragment order is kept by
                # the per-QP cursor, not by queue position).
                self._enqueue_job(job, front=False)
                yield self.sim.timeout(
                    params.serialization_ns(params.mtu_bytes) // 2)
                continue

            # DCQCN pacing is applied at *WQE boundaries*: once a work
            # request is admitted, its segments burst back-to-back (the
            # RNIC "ensures the completion of this request", Sec. V-C) and
            # the whole WQE's wire time is reserved from the limiter.
            # This is exactly why X-RDMA fragments large WRs: a 1 MB WQE
            # is a 1 MB line-rate burst no matter what DCQCN's rate says.
            if is_qp:
                new_wqe = job.current_tx is None
                wqe_bytes = self._pending_wqe_bytes(job)
            else:
                new_wqe = job.sent == 0
                wqe_bytes = job.length
            if new_wqe:
                limiter = self._limiter(qpn)
                if params.dcqcn_enabled and limiter.next_tx_ns > sim._now:
                    sim.call_at(limiter.next_tx_ns,
                                lambda j=job: self._enqueue_job(j))
                    continue
                limiter.reserve(max(wqe_bytes, CTRL_BYTES))

            # Engine occupancy: per-segment work + host-memory DMA + the
            # WQE fetch when a fresh WQE starts + QP-context cache miss.
            dma = dma_cache.get(nbytes)
            if dma is None:
                dma = dma_cache[nbytes] = params.dma_ns(nbytes)
            occupancy = (segment_process_ns + dma
                         + self._qp_cache_access(qpn))
            if is_qp:
                if job.current_tx is None:
                    occupancy += params.nic_wqe_fetch_ns
            elif job.sent == 0:
                occupancy += params.nic_wqe_fetch_ns
            if occ_timeout is None:          # direct: per-fragment hot path
                occ_timeout = Timeout(sim, occupancy)
            else:
                occ_timeout._rearm(occupancy)
            yield occ_timeout

            if is_qp:
                self._emit_qp_fragment(job)
            else:
                self._emit_read_fragment(job)

    def _emit_qp_fragment(self, qp: QueuePair) -> None:
        params = self.params
        msg = qp.current_tx
        if msg is None:
            if qp.retx:
                msg = qp.retx.popleft()
                msg.sent_at = self.sim.now
                qp.current_tx = msg
            elif qp.sq:
                wr = qp.sq.popleft()
                msg = OutboundMessage(wr=wr, sent_at=self.sim.now)
                if wr.opcode is Opcode.READ:
                    self._emit_read_request(qp, msg)
                    self._requeue_qp(qp, same_wqe=False)
                    return
                nfrags = max(1, params.segments_of(wr.length))
                msg.first_psn = qp.send_psn
                msg.last_psn = qp.send_psn + nfrags - 1
                qp.send_psn += nfrags
                qp.current_tx = msg
                qp.outstanding.append(msg)
                self._arm_watchdog(qp)
            else:
                return
        if msg.acked:           # late ack raced a rewind; nothing to resend
            qp.current_tx = None
            self._requeue_qp(qp, same_wqe=False)
            return

        wr = msg.wr
        offset = msg.sent_bytes
        frag_len = min(params.mtu_bytes, max(wr.length - offset, 0))
        frag_index = offset // params.mtu_bytes if wr.length else 0
        packet = RcPacket(
            kind=RcKind.DATA,
            src_qpn=qp.qpn,
            dst_qpn=qp.remote_qpn or 0,
            psn=msg.first_psn + frag_index,
            msg_id=msg.msg_id,
            opcode=wr.opcode,
            offset=offset,
            length=frag_len,
            total_length=wr.length,
            first=(offset == 0),
            last=(offset + frag_len >= wr.length),
            remote_addr=wr.remote_addr + offset,
            rkey=wr.rkey,
            imm_data=wr.imm_data,
            app_payload=(wr.payload if offset == 0 else None),
        )
        if offset == 0:
            trace = getattr(wr.payload, "trace", None)
            if trace is not None:
                trace.mark("nic_tx")
        self._send_segment(qp.remote_host, frag_len, SegmentKind.DATA,
                           qp.qpn, packet)
        msg.sent_bytes = offset + max(frag_len, 1)
        if msg.fully_sent:
            msg.sent_at = self.sim.now
            qp.current_tx = None
            self.tx_messages += 1
            self._requeue_qp(qp, same_wqe=False)
        else:
            self._requeue_qp(qp, same_wqe=True)

    def _emit_read_request(self, qp: QueuePair, msg: OutboundMessage) -> None:
        wr = msg.wr
        qp.reads_in_flight[msg.msg_id] = msg
        msg.sent_bytes = max(wr.length, 1)
        msg.sent_at = self.sim.now
        self._arm_watchdog(qp)
        packet = RcPacket(
            kind=RcKind.READ_REQ,
            src_qpn=qp.qpn,
            dst_qpn=qp.remote_qpn or 0,
            msg_id=msg.msg_id,
            length=wr.length,
            total_length=wr.length,
            remote_addr=wr.remote_addr,
            rkey=wr.rkey,
        )
        self._send_segment(qp.remote_host, CTRL_BYTES, SegmentKind.DATA,
                           qp.qpn, packet)
        self.tx_messages += 1

    def _emit_read_fragment(self, job: _ReadJob) -> None:
        frag_len = min(self.params.mtu_bytes, job.length - job.sent)
        packet = RcPacket(
            kind=RcKind.READ_RESP,
            src_qpn=job.responder_qpn,
            dst_qpn=job.requester_qpn,
            msg_id=job.msg_id,
            offset=job.sent,
            length=frag_len,
            total_length=job.length,
            first=(job.sent == 0),
            last=(job.sent + frag_len >= job.length),
        )
        self._send_segment(job.requester_host, frag_len, SegmentKind.DATA,
                           job.responder_qpn, packet)
        job.sent += frag_len
        if job.sent < job.length:
            self._enqueue_job(job, front=True)    # WQE-atomic continuation

    def _requeue_qp(self, qp: QueuePair, same_wqe: bool) -> None:
        if qp.current_tx is not None or qp.sq or qp.retx:
            self._enqueue_job(qp, front=same_wqe)

    def _send_segment(self, dst_host: Optional[int], size: int,
                      kind: SegmentKind, local_qpn: int,
                      payload) -> None:
        if dst_host is None:
            raise RuntimeError(f"{self.name}: QP has no peer configured")
        segment = Segment(
            src=self.host_id, dst=dst_host, size=size, kind=kind,
            flow_id=(self.host_id << 20) | local_qpn,
            ecn_capable=(kind is SegmentKind.DATA),
            payload=payload)
        self.stats.segments_sent += 1
        if self.uplink is None:
            raise RuntimeError(f"{self.name} is not plugged into a fabric")
        if dst_host == self.host_id:
            # Loopback: hairpin at the NIC without touching the fabric.
            self.sim.call_after(self.params.nic_ack_delay_ns,
                                lambda: self.receive(segment, 0))
        else:
            self._uplink_for(segment.flow_id).enqueue(segment)

    def _send_control(self, dst_host: int, local_qpn: int,
                      kind: SegmentKind, payload) -> None:
        """ACK/NAK/CNP path: bypasses pacing and the engine queue."""
        segment = Segment(
            src=self.host_id, dst=dst_host, size=CTRL_BYTES, kind=kind,
            flow_id=(self.host_id << 20) | local_qpn,
            ecn_capable=False, payload=payload)
        self.stats.segments_sent += 1
        if dst_host == self.host_id:
            self.sim.call_after(self.params.nic_ack_delay_ns,
                                lambda: self.receive(segment, 0))
        elif self.uplink is not None:
            self._uplink_for(segment.flow_id).enqueue(segment)

    # ------------------------------------------------------------- watchdogs
    def _arm_watchdog(self, qp: QueuePair) -> None:
        if qp.qpn in self._watchdogs:
            return
        self._watchdogs.add(qp.qpn)
        self.sim.spawn(self._watchdog_loop(qp), name=f"{self.name}:wd{qp.qpn}")

    def _watchdog_loop(self, qp: QueuePair):
        params = self.params
        try:
            while self.alive and qp.state is QpState.RTS and (
                    qp.outstanding or qp.reads_in_flight):
                oldest = None
                if qp.outstanding:
                    oldest = qp.outstanding[0]
                for read_msg in qp.reads_in_flight.values():
                    if oldest is None or read_msg.sent_at < oldest.sent_at:
                        oldest = read_msg
                backoff = 1 << min(oldest.retries, 4)
                deadline = oldest.sent_at + params.rc_retransmit_timeout_ns * backoff
                if self.sim.now < deadline:
                    yield self.sim.timeout(deadline - self.sim.now)
                    continue
                if oldest.acked:
                    continue
                # Only fire for fully-transmitted messages; mid-transmit
                # progress resets the clock via sent_at updates.
                if not oldest.fully_sent:
                    yield self.sim.timeout(params.rc_retransmit_timeout_ns)
                    continue
                oldest.retries += 1
                if oldest.retries > params.rc_max_retries:
                    self._qp_fatal(qp, WrStatus.RETRY_EXCEEDED)
                    return
                self.retransmits += 1
                self.stats.retransmissions += 1
                if oldest.wr.opcode is Opcode.READ:
                    self._resend_read_request(qp, oldest)
                else:
                    self._rewind(qp)
                oldest.sent_at = self.sim.now
                self._kick_qp(qp)
        finally:
            self._watchdogs.discard(qp.qpn)

    def _rewind(self, qp: QueuePair) -> None:
        """Go-back-N: schedule every unacked data message for resend."""
        qp.last_rewind_ns = self.sim.now
        qp.retx = deque(m for m in qp.outstanding if not m.acked)
        for msg in qp.retx:
            msg.sent_bytes = 0
        qp.current_tx = None

    def _resend_read_request(self, qp: QueuePair, msg: OutboundMessage) -> None:
        """Re-issue a lost READ_REQ (responder streaming is idempotent)."""
        msg.resp_bytes = 0
        packet = RcPacket(
            kind=RcKind.READ_REQ, src_qpn=qp.qpn,
            dst_qpn=qp.remote_qpn or 0, msg_id=msg.msg_id,
            length=msg.wr.length, total_length=msg.wr.length,
            remote_addr=msg.wr.remote_addr, rkey=msg.wr.rkey)
        self._send_segment(qp.remote_host, CTRL_BYTES, SegmentKind.DATA,
                           qp.qpn, packet)

    # -------------------------------------------------------------- rx path
    def receive(self, segment: Segment, in_port: int) -> None:
        if not self.alive:
            return
        stats = self.stats
        stats.segments_delivered += 1
        stats.bytes_delivered += segment.size
        if segment.kind is SegmentKind.CNP:
            limiter = self.limiters.get(segment.payload)
            if limiter is not None:
                limiter.on_cnp()
            return
        if segment.kind is SegmentKind.CONTROL:
            handler = self.control_handlers.get(
                getattr(segment.payload, "port", 0))
            if handler is not None:
                handler(segment)
            return
        packet: RcPacket = segment.payload
        if segment.ecn_marked and self.cnp_governor.should_send_cnp(
                segment.flow_id):
            self.stats.cnps_sent += 1
            self._send_control(segment.src, packet.dst_qpn,
                               SegmentKind.CNP, packet.src_qpn)
        if packet.kind is RcKind.DATA:
            self.stats.data_bytes_delivered += packet.length
            self._rx_data(segment, packet)
        elif packet.kind is RcKind.READ_REQ:
            self._rx_read_request(segment, packet)
        elif packet.kind is RcKind.READ_RESP:
            self.stats.data_bytes_delivered += packet.length
            self._rx_read_response(packet)
        elif packet.kind is RcKind.ACK:
            self._rx_ack(packet)
        elif packet.kind in (RcKind.NAK_SEQ, RcKind.NAK_RNR,
                             RcKind.NAK_ACCESS):
            self._rx_nak(packet)

    # -- receiver side ------------------------------------------------------
    def _rx_data(self, segment: Segment, packet: RcPacket) -> None:
        qp = self._resolve_rx_qp(segment, packet)
        if qp is None or qp.state not in (QpState.RTR, QpState.RTS):
            return  # silently dropped; sender will time out
        if packet.psn < qp.expected_psn:
            # Duplicate from a spurious rewind: re-ack so the sender moves on.
            self._ack(qp, packet.src_qpn, segment.src, qp.expected_psn - 1)
            return
        if packet.psn > qp.expected_psn:
            if qp.last_nak_expected != qp.expected_psn:
                qp.last_nak_expected = qp.expected_psn
                self._send_control(
                    segment.src, packet.dst_qpn, SegmentKind.ACK,
                    RcPacket(kind=RcKind.NAK_SEQ, src_qpn=packet.dst_qpn,
                             dst_qpn=packet.src_qpn,
                             psn=qp.expected_psn,
                             ack_psn=qp.expected_psn - 1))
            return

        # In-order fragment.
        if packet.first:
            if not self._begin_inbound(qp, segment, packet):
                return  # RNR or access NAK already sent; psn not advanced
        msg = qp.rx_msg
        if msg is None or msg.msg_id != packet.msg_id:
            # First fragment was refused earlier (e.g. RNR) — ignore the rest.
            return
        qp.expected_psn = packet.psn + 1
        qp.last_nak_expected = -1
        msg.received = packet.offset + packet.length
        if packet.last:
            qp.rx_msg = None
            self._complete_inbound(qp, segment, packet, msg)

    def _begin_inbound(self, qp: QueuePair, segment: Segment,
                       packet: RcPacket) -> bool:
        opcode = packet.opcode
        if opcode in (Opcode.SEND, Opcode.SEND_IMM):
            recv_wr = qp.pop_recv()
            if recv_wr is None:
                qp.rnr_events += 1
                self.rnr_naks_sent += 1
                self.stats.rnr_naks += 1
                self._send_control(
                    segment.src, packet.dst_qpn, SegmentKind.ACK,
                    RcPacket(kind=RcKind.NAK_RNR, src_qpn=packet.dst_qpn,
                             dst_qpn=packet.src_qpn, psn=packet.psn,
                             ack_psn=qp.expected_psn - 1))
                return False
            if recv_wr.length < packet.total_length:
                self._send_control(
                    segment.src, packet.dst_qpn, SegmentKind.ACK,
                    RcPacket(kind=RcKind.NAK_ACCESS, src_qpn=packet.dst_qpn,
                             dst_qpn=packet.src_qpn, psn=packet.psn,
                             ack_psn=qp.expected_psn - 1))
                self._qp_fatal(qp, WrStatus.LOCAL_PROTECTION_ERROR)
                return False
            qp.rx_msg = InboundMessage(
                msg_id=packet.msg_id, opcode=opcode,
                total_length=packet.total_length, recv_wr=recv_wr,
                app_payload=packet.app_payload)
            return True

        # WRITE / WRITE_IMM: zero-byte writes skip the rkey check entirely
        # (the keepAlive probe relies on this, Sec. V-A).
        if packet.total_length > 0:
            mr = self.mr_table.check(packet.rkey, packet.remote_addr,
                                     packet.total_length - packet.offset,
                                     write=True)
            if mr is None:
                self._send_control(
                    segment.src, packet.dst_qpn, SegmentKind.ACK,
                    RcPacket(kind=RcKind.NAK_ACCESS, src_qpn=packet.dst_qpn,
                             dst_qpn=packet.src_qpn, psn=packet.psn,
                             ack_psn=qp.expected_psn - 1))
                self._qp_fatal(qp, WrStatus.REMOTE_ACCESS_ERROR)
                return False
        qp.rx_msg = InboundMessage(
            msg_id=packet.msg_id, opcode=opcode,
            total_length=packet.total_length,
            write_addr=packet.remote_addr, imm_data=packet.imm_data,
            app_payload=packet.app_payload)
        return True

    def _complete_inbound(self, qp: QueuePair, segment: Segment,
                          packet: RcPacket, msg: InboundMessage) -> None:
        trace = getattr(msg.app_payload, "trace", None)
        if trace is not None:
            # CQE + DMA delay land in the poll-pickup span, where the
            # receiving software actually waits them out.
            trace.mark("rx_nic")
        self.rx_messages += 1
        self.rx_bytes += msg.total_length
        self._ack(qp, packet.src_qpn, segment.src, packet.psn)
        delay = self.params.nic_cqe_ns + self.params.dma_ns(
            min(packet.length, self.params.mtu_bytes))
        if msg.opcode in (Opcode.SEND, Opcode.SEND_IMM):
            recv_wr = msg.recv_wr
            completion = Completion(
                wr_id=recv_wr.wr_id, status=WrStatus.SUCCESS,
                opcode=(Opcode.RECV_IMM if packet.imm_data is not None
                        else Opcode.RECV),
                qp_num=qp.qpn, byte_len=msg.total_length,
                imm_data=packet.imm_data, addr=recv_wr.local_addr,
                payload=msg.app_payload)
            self.sim.call_after(delay,
                                lambda: qp.recv_cq.push(completion))
        elif msg.opcode is Opcode.WRITE_IMM:
            recv_wr = qp.pop_recv()
            if recv_wr is None:
                # WRITE_IMM consumes a receive; none posted is an RNR case
                # at message end (rare; treat as silent drop + RNR count).
                qp.rnr_events += 1
                self.stats.rnr_naks += 1
                return
            completion = Completion(
                wr_id=recv_wr.wr_id, status=WrStatus.SUCCESS,
                opcode=Opcode.RECV_IMM, qp_num=qp.qpn,
                byte_len=msg.total_length, imm_data=packet.imm_data,
                addr=msg.write_addr, payload=msg.app_payload)
            self.sim.call_after(delay,
                                lambda: qp.recv_cq.push(completion))
        # Plain WRITE: silent at the receiver (memory semantics).

    def _ack(self, qp: QueuePair, remote_qpn: int, remote_host: int,
             ack_psn: int) -> None:
        self._send_control(
            remote_host, qp.qpn, SegmentKind.ACK,
            RcPacket(kind=RcKind.ACK, src_qpn=qp.qpn, dst_qpn=remote_qpn,
                     ack_psn=ack_psn))

    def _rx_read_request(self, segment: Segment, packet: RcPacket) -> None:
        qp = self._resolve_rx_qp(segment, packet)
        if qp is None or qp.state not in (QpState.RTR, QpState.RTS):
            return
        mr = self.mr_table.check(packet.rkey, packet.remote_addr,
                                 packet.length, write=False)
        if mr is None and packet.length > 0:
            self._send_control(
                segment.src, packet.dst_qpn, SegmentKind.ACK,
                RcPacket(kind=RcKind.NAK_ACCESS, src_qpn=packet.dst_qpn,
                         dst_qpn=packet.src_qpn, msg_id=packet.msg_id,
                         ack_psn=-1))
            return
        job = _ReadJob(
            requester_host=segment.src, requester_qpn=packet.src_qpn,
            responder_qpn=packet.dst_qpn, msg_id=packet.msg_id,
            addr=packet.remote_addr, length=max(packet.length, 0))
        if job.length == 0:
            # Zero-byte read: respond immediately with an empty last fragment.
            self._send_control(
                segment.src, packet.dst_qpn, SegmentKind.ACK,
                RcPacket(kind=RcKind.READ_RESP, src_qpn=packet.dst_qpn,
                         dst_qpn=packet.src_qpn, msg_id=packet.msg_id,
                         first=True, last=True))
            return
        self._enqueue_job(job)

    # -- requester side -----------------------------------------------------
    def _rx_read_response(self, packet: RcPacket) -> None:
        qp = self.qps.get(packet.dst_qpn)
        if qp is None:
            return
        msg = qp.reads_in_flight.get(packet.msg_id)
        if msg is None or msg.acked:
            return
        msg.resp_bytes = packet.offset + packet.length
        if packet.last:
            msg.acked = True
            del qp.reads_in_flight[packet.msg_id]
            self.rx_messages += 1
            if msg.wr.signaled:
                delay = self.params.nic_cqe_ns + self.params.dma_ns(
                    min(packet.length, self.params.mtu_bytes))
                completion = Completion(
                    wr_id=msg.wr.wr_id, status=WrStatus.SUCCESS,
                    opcode=Opcode.READ, qp_num=qp.qpn,
                    byte_len=msg.wr.length)
                self.sim.call_after(delay,
                                    lambda: qp.send_cq.push(completion))

    def _rx_ack(self, packet: RcPacket) -> None:
        qp = self.qps.get(packet.dst_qpn)
        if qp is None:
            return
        self._apply_cumulative_ack(qp, packet.ack_psn)

    def _apply_cumulative_ack(self, qp: QueuePair, ack_psn: int) -> None:
        while qp.outstanding and qp.outstanding[0].last_psn <= ack_psn:
            msg = qp.outstanding.popleft()
            if msg.acked:
                continue
            msg.acked = True
            if msg.wr.signaled:
                completion = Completion(
                    wr_id=msg.wr.wr_id, status=WrStatus.SUCCESS,
                    opcode=msg.wr.opcode, qp_num=qp.qpn,
                    byte_len=msg.wr.length)
                self.sim.call_after(
                    self.params.nic_cqe_ns,
                    lambda c=completion: qp.send_cq.push(c))
        if qp.retx:
            qp.retx = deque(m for m in qp.retx if not m.acked)
        if qp.current_tx is not None and qp.current_tx.acked:
            qp.current_tx = None

    def _rx_nak(self, packet: RcPacket) -> None:
        qp = self.qps.get(packet.dst_qpn)
        if qp is None or qp.state is not QpState.RTS:
            return
        if packet.ack_psn >= 0:
            self._apply_cumulative_ack(qp, packet.ack_psn)
        if packet.kind is RcKind.NAK_ACCESS:
            self._qp_fatal(qp, WrStatus.REMOTE_ACCESS_ERROR)
            return
        if packet.kind is RcKind.NAK_RNR:
            self.rnr_naks_received += 1
            head = next((m for m in qp.outstanding if not m.acked), None)
            if head is None:
                return
            head.rnr_retries += 1
            if head.rnr_retries > self.params.rc_max_retries:
                self._qp_fatal(qp, WrStatus.RNR_RETRY_EXCEEDED)
                return
            qp.tx_blocked_until = self.sim.now + self.params.rc_rnr_retry_delay_ns
            self._rewind(qp)
            self.sim.call_at(qp.tx_blocked_until,
                             lambda: self._kick_qp(qp))
            return
        # NAK_SEQ: rewind unless we just did (spurious duplicate guard).
        if self.sim.now - qp.last_rewind_ns < self.params.rc_retransmit_timeout_ns // 4:
            return
        self.stats.retransmissions += 1
        self.retransmits += 1
        self._rewind(qp)
        self._kick_qp(qp)

    # ---------------------------------------------------------------- errors
    def flush(self, qp: QueuePair,
              status: WrStatus = WrStatus.WR_FLUSH_ERROR) -> None:
        """Public teardown path (rdma_cm disconnect, middleware keepalive)."""
        self._qp_fatal(qp, status)

    def _qp_fatal(self, qp: QueuePair, status: WrStatus) -> None:
        """Move the QP to ERROR and flush every queued WR with an error CQE."""
        if qp.state is QpState.ERROR:
            return
        qp.state = QpState.ERROR
        first = True
        flushed = []
        if qp.current_tx is not None and not qp.current_tx.acked:
            flushed.append(qp.current_tx.wr)
        for msg in qp.outstanding:
            if not msg.acked and (qp.current_tx is None
                                  or msg is not qp.current_tx):
                flushed.append(msg.wr)
        flushed.extend(m.wr for m in qp.reads_in_flight.values())
        flushed.extend(qp.sq)
        seen = set()
        for wr in flushed:
            if wr.wr_id in seen:
                continue
            seen.add(wr.wr_id)
            wr_status = status if first else WrStatus.WR_FLUSH_ERROR
            first = False
            qp.send_cq.push(Completion(
                wr_id=wr.wr_id, status=wr_status, opcode=wr.opcode,
                qp_num=qp.qpn))
        for wr in qp.rq:
            qp.recv_cq.push(Completion(
                wr_id=wr.wr_id, status=WrStatus.WR_FLUSH_ERROR,
                opcode=Opcode.RECV, qp_num=qp.qpn))
        qp.sq.clear()
        qp.rq.clear()
        qp.outstanding.clear()
        qp.retx.clear()
        qp.reads_in_flight.clear()
        qp.current_tx = None

    # ------------------------------------------------------------- qp cache
    def _qp_cache_access(self, qpn: int) -> int:
        """LRU touch; returns the miss penalty in ns (0 on hit)."""
        cache = self._qp_cache
        if qpn in cache:
            cache.move_to_end(qpn)
            self.cache_hits += 1
            return 0
        self.cache_misses += 1
        cache[qpn] = True
        if len(cache) > self.params.nic_qp_cache_entries:
            cache.popitem(last=False)
        return self.params.nic_qp_cache_miss_ns
