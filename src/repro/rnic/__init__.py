"""The simulated RDMA NIC.

Models the pieces of RNIC behaviour the middleware's design responds to:

* queue pairs with the verbs state machine, bounded SQ/RQ depths,
* completion queues and CQEs,
* memory regions with rkey validation,
* the RC protocol — PSNs, go-back-N retransmission, ACK/NAK, **RNR NAK**
  when a SEND finds no posted receive (Issue 1 of Sec. III),
* a WQE-atomic transmit engine (large messages occupy the engine — the
  head-of-line blocking X-RDMA's fragmentation addresses),
* per-QP DCQCN rate limiting and CNP generation,
* an on-NIC QP-context cache (the Sec. VII-F SRAM-capacity experience).
"""

from repro.rnic.cq import CompletionQueue
from repro.rnic.mr import AccessFlags, MemoryRegion, MrTable, ProtectionDomain
from repro.rnic.nic import Rnic
from repro.rnic.qp import QpStateError, QueuePair, QpState
from repro.rnic.wqe import Completion, Opcode, WorkRequest, WrStatus

__all__ = [
    "AccessFlags",
    "Completion",
    "CompletionQueue",
    "MemoryRegion",
    "MrTable",
    "Opcode",
    "ProtectionDomain",
    "QpState",
    "QpStateError",
    "QueuePair",
    "Rnic",
    "WorkRequest",
    "WrStatus",
]
