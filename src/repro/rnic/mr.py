"""Protection domains and memory regions.

Access to a remote buffer succeeds only if the (addr, length) range lies in
a registered MR of the target's protection domain and the 32-bit rkey
matches — mirroring verbs semantics, including the failure mode (a remote
access error transitions the QP to ERROR).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Flag, auto
from typing import Dict, Optional

_pd_ids = itertools.count(1)
_mr_keys = itertools.count(0x1001)


class AccessFlags(Flag):
    LOCAL_WRITE = auto()
    REMOTE_READ = auto()
    REMOTE_WRITE = auto()

    @classmethod
    def all_remote(cls) -> "AccessFlags":
        return cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE


@dataclass
class MemoryRegion:
    pd_id: int
    addr: int
    length: int
    lkey: int
    rkey: int
    access: AccessFlags

    def contains(self, addr: int, length: int) -> bool:
        return (self.addr <= addr
                and addr + length <= self.addr + self.length)


class ProtectionDomain:
    """Groups MRs and QPs; rkeys are only valid within their PD."""

    def __init__(self) -> None:
        self.pd_id = next(_pd_ids)
        self.mrs: Dict[int, MemoryRegion] = {}      # by lkey

    def register(self, addr: int, length: int,
                 access: AccessFlags) -> MemoryRegion:
        if length <= 0:
            raise ValueError(f"MR length must be positive: {length}")
        key = next(_mr_keys)
        mr = MemoryRegion(pd_id=self.pd_id, addr=addr, length=length,
                          lkey=key, rkey=key, access=access)
        self.mrs[mr.lkey] = mr
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if self.mrs.pop(mr.lkey, None) is None:
            raise KeyError(f"MR lkey={mr.lkey:#x} not registered in this PD")


class MrTable:
    """NIC-side lookup used to validate inbound one-sided operations."""

    def __init__(self) -> None:
        self._by_rkey: Dict[int, MemoryRegion] = {}

    def install(self, mr: MemoryRegion) -> None:
        self._by_rkey[mr.rkey] = mr

    def remove(self, mr: MemoryRegion) -> None:
        self._by_rkey.pop(mr.rkey, None)

    def check(self, rkey: int, addr: int, length: int,
              write: bool) -> Optional[MemoryRegion]:
        """The MR authorizing the access, or None (→ remote access error)."""
        mr = self._by_rkey.get(rkey)
        if mr is None or not mr.contains(addr, length):
            return None
        needed = AccessFlags.REMOTE_WRITE if write else AccessFlags.REMOTE_READ
        if not (mr.access & needed):
            return None
        return mr
