"""Work requests and completions (WQEs and CQEs)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Optional

_wr_ids = itertools.count(1)


class Opcode(Enum):
    SEND = auto()
    SEND_IMM = auto()
    WRITE = auto()
    WRITE_IMM = auto()
    READ = auto()
    RECV = auto()           #: receive-side completion opcode
    RECV_IMM = auto()


class WrStatus(Enum):
    SUCCESS = auto()
    RNR_RETRY_EXCEEDED = auto()
    RETRY_EXCEEDED = auto()
    REMOTE_ACCESS_ERROR = auto()
    WR_FLUSH_ERROR = auto()      #: flushed when the QP entered ERROR
    LOCAL_PROTECTION_ERROR = auto()


@dataclass(slots=True)
class WorkRequest:
    """One posted operation.

    ``local_addr``/``length`` name the local buffer; one-sided ops also name
    ``remote_addr``/``rkey``.  ``signaled`` controls CQE generation at the
    requester (receive completions are always signaled).
    """

    opcode: Opcode
    length: int = 0
    local_addr: int = 0
    remote_addr: int = 0
    rkey: int = 0
    imm_data: Optional[int] = None
    signaled: bool = True
    #: opaque application object delivered with the receive completion
    #: (stands in for the bytes a real SEND would carry)
    payload: Any = None
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    #: filled in by the NIC while the WR is in flight
    posted_at: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative WR length: {self.length}")
        if self.opcode in (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.READ) \
                and self.rkey == 0:
            raise ValueError(f"{self.opcode.name} requires an rkey")
        if self.opcode in (Opcode.SEND_IMM, Opcode.WRITE_IMM) \
                and self.imm_data is None:
            raise ValueError(f"{self.opcode.name} requires imm_data")


@dataclass(slots=True)
class Completion:
    """A CQE."""

    wr_id: int
    status: WrStatus
    opcode: Opcode
    qp_num: int
    byte_len: int = 0
    imm_data: Optional[int] = None
    #: local buffer address for receive completions
    addr: int = 0
    #: application payload from the sender's WR (receive completions)
    payload: Any = None
    timestamp: int = 0

    @property
    def ok(self) -> bool:
        return self.status is WrStatus.SUCCESS
