"""Queue pairs: verbs state machine plus RC protocol state.

The QP holds both the software-visible surface (SQ/RQ with bounded depths,
the RESET→INIT→RTR→RTS state machine) and the transport state the NIC
engine drives (PSNs, the outstanding-message window, reassembly state).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.rnic.wqe import Opcode, WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.cq import CompletionQueue
    from repro.rnic.mr import ProtectionDomain

_msg_ids = itertools.count(1)


class QpState(Enum):
    RESET = auto()
    INIT = auto()
    RTR = auto()
    RTS = auto()
    ERROR = auto()


#: Legal verbs transitions (modify_qp validates against this).
_TRANSITIONS = {
    QpState.RESET: {QpState.INIT, QpState.ERROR},
    QpState.INIT: {QpState.RTR, QpState.ERROR, QpState.RESET},
    QpState.RTR: {QpState.RTS, QpState.ERROR, QpState.RESET},
    QpState.RTS: {QpState.ERROR, QpState.RESET},
    QpState.ERROR: {QpState.RESET},
}


class QpStateError(RuntimeError):
    """Operation not allowed in the QP's current state."""


class SharedReceiveQueue:
    """SRQ: one receive pool shared by many QPs (Sec. VII-F experience)."""

    def __init__(self, depth: int = 1024):
        if depth <= 0:
            raise ValueError(f"SRQ depth must be positive: {depth}")
        self.depth = depth
        self.wqes: Deque[WorkRequest] = deque()

    def post(self, wr: WorkRequest) -> None:
        if len(self.wqes) >= self.depth:
            raise QpStateError("SRQ full")
        self.wqes.append(wr)

    def pop(self) -> Optional[WorkRequest]:
        return self.wqes.popleft() if self.wqes else None

    def __len__(self) -> int:
        return len(self.wqes)


@dataclass(slots=True)
class OutboundMessage:
    """Sender-side in-flight state for one WQE."""

    wr: WorkRequest
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    first_psn: int = 0
    last_psn: int = 0
    sent_bytes: int = 0          #: transmit progress (engine cursor)
    sent_at: int = 0             #: last (re)transmission start time
    acked: bool = False
    retries: int = 0
    rnr_retries: int = 0
    #: READ-only: bytes of response received so far
    resp_bytes: int = 0

    @property
    def fully_sent(self) -> bool:
        # Zero-length messages still carry one header-only fragment.
        return self.sent_bytes >= max(self.wr.length, 1)


@dataclass(slots=True)
class InboundMessage:
    """Receiver-side reassembly state for the in-progress message."""

    msg_id: int
    opcode: Opcode
    total_length: int
    received: int = 0
    recv_wr: Optional[WorkRequest] = None
    write_addr: int = 0
    imm_data: Optional[int] = None
    app_payload: object = None


class QueuePair:
    """One RC queue pair.  Created via the verbs layer or reused via the
    X-RDMA QP cache (RESET then re-INIT, skipping firmware allocation)."""

    _qpn_counter = itertools.count(0x100)

    def __init__(self, pd: "ProtectionDomain", send_cq: "CompletionQueue",
                 recv_cq: "CompletionQueue", sq_depth: int, rq_depth: int,
                 srq: Optional[SharedReceiveQueue] = None):
        self.qpn = next(QueuePair._qpn_counter)
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.sq_depth = sq_depth
        self.rq_depth = rq_depth
        self.srq = srq
        self.state = QpState.RESET
        # Peer addressing (set at RTR).
        self.remote_host: Optional[int] = None
        self.remote_qpn: Optional[int] = None
        # Software queues.
        self.sq: Deque[WorkRequest] = deque()
        self.rq: Deque[WorkRequest] = deque()
        # Transport state.
        self.send_psn = 0
        self.expected_psn = 0
        self.outstanding: Deque[OutboundMessage] = deque()
        self.current_tx: Optional[OutboundMessage] = None
        self.retx: Deque[OutboundMessage] = deque()
        self.rx_msg: Optional[InboundMessage] = None
        self.reads_in_flight: Dict[int, OutboundMessage] = {}
        #: set while waiting out an RNR backoff / go-back-N rewind
        self.tx_blocked_until = 0
        self.rnr_events = 0
        #: NAK dedup / spurious-rewind guards (receiver and sender side)
        self.last_nak_expected = -1
        self.last_rewind_ns = -(10 ** 18)

    # ------------------------------------------------------------ state mgmt
    def transition(self, new_state: QpState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            # Recorded for the sanitizer's counters; QpStateError is
            # already the fatal escalation on this path.  Imported here:
            # a module-level import would cycle (rnic.qp ← repro.analysis
            # ← repro.xrdma ← rnic.qp), and this branch is cold.
            from repro.analysis.invariants import note as _invariant_note
            _invariant_note(
                "qp.illegal_transition",
                f"qpn={self.qpn} {self.state.name} → {new_state.name}")
            raise QpStateError(
                f"illegal QP transition {self.state.name} → {new_state.name}")
        self.state = new_state

    def set_peer(self, remote_host: int, remote_qpn: int) -> None:
        self.remote_host = remote_host
        self.remote_qpn = remote_qpn

    def reset(self) -> None:
        """Return to RESET, dropping all queued and in-flight state."""
        self.state = QpState.RESET
        self.sq.clear()
        self.rq.clear()
        self.outstanding.clear()
        self.retx.clear()
        self.reads_in_flight.clear()
        self.current_tx = None
        self.rx_msg = None
        self.send_psn = 0
        self.expected_psn = 0
        self.tx_blocked_until = 0
        self.remote_host = None
        self.remote_qpn = None
        self.last_nak_expected = -1
        self.last_rewind_ns = -(10 ** 18)

    # --------------------------------------------------------------- posting
    def post_send(self, wr: WorkRequest) -> None:
        if self.state is not QpState.RTS:
            raise QpStateError(
                f"post_send in state {self.state.name} (need RTS)")
        if len(self.sq) + len(self.outstanding) >= self.sq_depth:
            raise QpStateError(f"SQ full (depth {self.sq_depth})")
        self.sq.append(wr)
        trace = getattr(wr.payload, "trace", None)
        if trace is not None:
            trace.mark("post_send")

    def post_recv(self, wr: WorkRequest) -> None:
        if self.srq is not None:
            raise QpStateError("QP uses an SRQ; post to the SRQ instead")
        if self.state in (QpState.RESET, QpState.ERROR):
            raise QpStateError(f"post_recv in state {self.state.name}")
        if len(self.rq) >= self.rq_depth:
            raise QpStateError(f"RQ full (depth {self.rq_depth})")
        self.rq.append(wr)

    def pop_recv(self) -> Optional[WorkRequest]:
        if self.srq is not None:
            return self.srq.pop()
        return self.rq.popleft() if self.rq else None

    @property
    def recv_buffers_posted(self) -> int:
        return len(self.srq) if self.srq is not None else len(self.rq)

    def has_tx_work(self) -> bool:
        return self.current_tx is not None or bool(self.sq)
