"""RC wire protocol units carried inside fabric segments."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

from repro.rnic.wqe import Opcode

#: Wire size of header-only protocol packets (ACK/NAK/READ_REQ/CNP).
CTRL_BYTES = 16


class RcKind(Enum):
    DATA = auto()        #: SEND/WRITE fragment
    READ_REQ = auto()    #: one-sided read request (responder streams back)
    READ_RESP = auto()   #: read response fragment
    ACK = auto()         #: cumulative acknowledgement
    NAK_SEQ = auto()     #: out-of-sequence; requester rewinds (go-back-N)
    NAK_RNR = auto()     #: receiver-not-ready: SEND found no posted RECV
    NAK_ACCESS = auto()  #: rkey/bounds violation; fatal for the QP


@dataclass(slots=True)
class RcPacket:
    kind: RcKind
    src_qpn: int
    dst_qpn: int
    psn: int = 0
    msg_id: int = 0               #: sender-side message (WQE) identity
    opcode: Optional[Opcode] = None
    offset: int = 0               #: fragment offset within the message
    length: int = 0               #: fragment payload bytes
    total_length: int = 0
    first: bool = False
    last: bool = False
    remote_addr: int = 0
    rkey: int = 0
    imm_data: Optional[int] = None
    ack_psn: int = -1             #: cumulative ack (ACK/NAK packets)
    app_payload: object = None    #: rides the first fragment of a message
