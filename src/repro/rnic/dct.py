"""Dynamically-connected transport (DCT) — the Discussion's alternative
for massive RC connection counts (Sec. IX).

The paper: "We are evaluating DCT from different aspects, and the recent
test result shows DCT can benefit massive connections to some extent but
DCT is not mature and stable enough in our tests."

Model, following Mellanox DC semantics:

* a **DC initiator** (DCI) replaces N RC QPs with one send-side object;
  per-target *sessions* are created in-band (no 1 ms ``create_qp``, no
  CM handshake — the first packet connects);
* but a DCI talks to **one target at a time**: switching targets requires
  draining outstanding traffic and paying a reconnect cost — the
  head-of-line serialization that makes DCT latency fragile under fan-out;
* the **DC target** side consumes receives from an SRQ (DCT requires
  one), inheriting the SRQ's RNR exposure.

Sessions reuse the RC protocol machinery (a hidden QueuePair per target)
so reliability semantics are identical; what changes is the resource and
scheduling model.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.rnic.qp import QpState, QueuePair, SharedReceiveQueue
from repro.rnic.wqe import WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.cq import CompletionQueue
    from repro.rnic.mr import ProtectionDomain
    from repro.rnic.nic import Rnic
    from repro.sim.engine import Simulator
    from repro.sim.params import SimParams

_dct_numbers = itertools.count(0xD000)

#: In-band session establishment: one extra round trip's worth of NIC work
#: on first contact with a target (vs ~4 ms for CM + create_qp).
DC_CONNECT_NS = 6_000
#: Cost of retargeting the initiator (drain + context switch in firmware).
DC_SWITCH_NS = 1_200


class DcTarget:
    """Receive side: one per host; all DC traffic lands in its SRQ."""

    def __init__(self, nic: "Rnic", pd: "ProtectionDomain",
                 recv_cq: "CompletionQueue",
                 srq: SharedReceiveQueue):
        self.nic = nic
        self.pd = pd
        self.recv_cq = recv_cq
        self.srq = srq
        self.dct_num = next(_dct_numbers)
        #: per-initiator responder QPs, created lazily on first contact
        self._responders: Dict[Tuple[int, int], QueuePair] = {}

    def _responder_for(self, initiator_host: int,
                       initiator_qpn: int) -> QueuePair:
        key = (initiator_host, initiator_qpn)
        responder = self._responders.get(key)
        if responder is None:
            responder = QueuePair(self.pd, self.recv_cq, self.recv_cq,
                                  sq_depth=16, rq_depth=1, srq=self.srq)
            responder.state = QpState.RTS
            responder.set_peer(initiator_host, initiator_qpn)
            self.nic.register_qp(responder)
            self._responders[key] = responder
        return responder

    @property
    def session_count(self) -> int:
        return len(self._responders)


class DcInitiator:
    """Send side: one object, many targets, one active session at a time."""

    def __init__(self, sim: "Simulator", params: "SimParams", nic: "Rnic",
                 pd: "ProtectionDomain", send_cq: "CompletionQueue",
                 sq_depth: int = 64):
        self.sim = sim
        self.params = params
        self.nic = nic
        self.pd = pd
        self.send_cq = send_cq
        self.sq_depth = sq_depth
        #: per-target hidden sessions (tiny: no receive ring, shared SQ)
        self._sessions: Dict[Tuple[int, int], QueuePair] = {}
        self._active: Optional[Tuple[int, int]] = None
        self._backlog: Deque[Tuple[Tuple[int, int], WorkRequest]] = deque()
        self._pump_running = False
        self.switches = 0
        self.connects = 0

    # ------------------------------------------------------------ resources
    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def _session_for(self, target: Tuple[int, int]) -> QueuePair:
        session = self._sessions.get(target)
        if session is None:
            session = QueuePair(self.pd, self.send_cq, self.send_cq,
                                sq_depth=self.sq_depth, rq_depth=1)
            session.state = QpState.RTS
            session.set_peer(*target)
            self.nic.register_qp(session)
            self._sessions[target] = session
            self.connects += 1
        return session

    # ------------------------------------------------------------- data path
    def post_send(self, target_host: int, target_qpn: int,
                  wr: WorkRequest) -> None:
        """Queue a send toward ``(target_host, target_qpn)``.

        The initiator serializes across targets: traffic to the active
        target flows immediately; anything else waits for a drain+switch.
        """
        self._backlog.append(((target_host, target_qpn), wr))
        if not self._pump_running:
            self._pump_running = True
            self.sim.spawn(self._pump(), name="dci:pump")

    def _pump(self):
        try:
            while self._backlog:
                target, wr = self._backlog.popleft()
                if target != self._active:
                    yield from self._retarget(target)
                session = self._sessions[target]
                self.nic.post_send(session, wr)
        finally:
            self._pump_running = False

    def _retarget(self, target: Tuple[int, int]):
        # Drain the active session completely (the DCI serialization).
        if self._active is not None:
            active = self._sessions[self._active]
            while (active.outstanding or active.sq
                   or active.current_tx is not None
                   or active.reads_in_flight):
                yield self.sim.timeout(2_000)
            self.switches += 1
            yield self.sim.timeout(DC_SWITCH_NS)
        first_contact = target not in self._sessions
        self._session_for(target)
        if first_contact:
            yield self.sim.timeout(DC_CONNECT_NS)
        self._active = target
