"""Cluster-wide wire statistics.

A single :class:`NetStats` is shared by all switches and NICs in a cluster;
benchmarks read it to report the paper's "crucial indexes" (Sec. VII-C):
CNP counts, PFC TX-pause counts, drops, ECN marks and delivered bytes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class NetStats:
    """Mutable counters; cheap to update on the hot path."""

    segments_sent: int = 0
    segments_delivered: int = 0
    bytes_delivered: int = 0
    data_bytes_delivered: int = 0
    drops: int = 0
    ecn_marks: int = 0
    cnps_sent: int = 0
    pause_frames: int = 0
    resume_frames: int = 0
    rnr_naks: int = 0
    retransmissions: int = 0
    #: (time_ns, value) samples appended by monitors
    timeline: Dict[str, List[Tuple[int, float]]] = field(
        default_factory=lambda: defaultdict(list))

    def record(self, series: str, time_ns: int, value: float) -> None:
        """Append a time-series sample (used by the Monitor, Figs. 3/10/11)."""
        self.timeline[series].append((time_ns, value))

    def snapshot(self) -> Dict[str, int]:
        """Scalar counters as a plain dict (for XR-Stat and tests)."""
        return {
            "segments_sent": self.segments_sent,
            "segments_delivered": self.segments_delivered,
            "bytes_delivered": self.bytes_delivered,
            "data_bytes_delivered": self.data_bytes_delivered,
            "drops": self.drops,
            "ecn_marks": self.ecn_marks,
            "cnps_sent": self.cnps_sent,
            "pause_frames": self.pause_frames,
            "resume_frames": self.resume_frames,
            "rnr_naks": self.rnr_naks,
            "retransmissions": self.retransmissions,
        }
