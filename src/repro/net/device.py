"""Attach-point protocol for anything plugged into the fabric."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Segment


class Device:
    """Anything that can terminate a link: a switch or a host NIC.

    Subclasses implement :meth:`receive`; the egress-port machinery calls it
    when a segment finishes propagating down the wire.
    """

    name: str = "device"

    def receive(self, segment: "Segment", in_port: int) -> None:
        """Handle a segment delivered on ``in_port``."""
        raise NotImplementedError

    def pause_port(self, port: int, priority: int, pause: bool) -> None:
        """PFC notification from the downstream device on ``port``.

        Default: ignore (hosts that don't honour PFC).  Switches and NICs
        override this to gate their egress ports.
        """
