"""Flow-aggregate (fluid) background channels for cluster-scale emulation.

At 1000+ emulated hosts, simulating every background flow packet-by-packet
is what makes cluster runs infeasible: event count grows with total
traffic, not with the traffic under study.  An
:class:`AggregateTraffic` models background flows as *rate sums* instead —
each flow charges its rate onto the egress ports its ECMP path traverses
(computed arithmetically via
:meth:`~repro.topology.clos.RoutingTable.flow_path`, no events), and the
ports serialize foreground segments at the residual capacity
(:meth:`~repro.topology.link.EgressPort.set_background_load`).

Only foreground flows pay packet-level event cost; background bytes are
settled analytically (``rate × elapsed``) when the scenario calls
:meth:`AggregateTraffic.settle`.  Everything is deterministic — paths come
from the same ECMP arithmetic the switches use, and no wall-clock or
address-dependent state is involved — so fleet aggregates stay
jobs-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.topology.link import EgressPort


@dataclass
class AggregateFlow:
    """One fluid background flow: a rate charged along an ECMP path."""

    flow_id: int
    src: int
    dst: int
    rate_bps: float
    started_ns: int
    #: the switch egress ports the flow's rate is charged on
    path: List[Tuple[int, int, int]]
    stopped_ns: Optional[int] = None
    bytes_settled: float = 0.0

    @property
    def active(self) -> bool:
        return self.stopped_ns is None


class AggregateTraffic:
    """Manages fluid background flows over one cluster's fabric.

    Usage::

        agg = AggregateTraffic(cluster)
        for src, dst in background_pairs:
            agg.add_flow(src, dst, rate_bps=2e9)
        agg.flush()               # install residual-bandwidth reservations
        ... run foreground traffic ...
        agg.settle()              # close byte accounting at sim-now

    Flows may start and stop mid-run; each :meth:`flush` reinstalls the
    per-port load sums for ports whose membership changed.  Endpoints do
    not need attached devices — unattached host ids route to their
    canonical ToR down-port slot, which is exactly what lets one fleet
    worker emulate a 1024-host cluster while attaching a single rack.
    """

    #: background flow ids live far above foreground QP/flow ids so the
    #: ECMP hash never aliases a studied flow's path decisions
    FLOW_ID_BASE = 1 << 40

    def __init__(self, cluster: "Cluster"):
        self.sim = cluster.sim
        self.topology = cluster.topology
        self.routing = cluster.topology.routing
        self.flows: List[AggregateFlow] = []
        self._next_flow = AggregateTraffic.FLOW_ID_BASE
        #: (role, index, port) -> charged bps
        self._port_load: Dict[Tuple[int, int, int], float] = {}
        self._dirty: Set[Tuple[int, int, int]] = set()

    # -------------------------------------------------------------- flows
    def add_flow(self, src: int, dst: int, rate_bps: float,
                 flow_id: Optional[int] = None) -> AggregateFlow:
        """Start a background flow of ``rate_bps`` from ``src`` to ``dst``."""
        if rate_bps < 0:
            raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
        if flow_id is None:
            flow_id = self._next_flow
            self._next_flow += 1
        path = self.routing.flow_path(flow_id, src, dst)
        flow = AggregateFlow(flow_id=flow_id, src=src, dst=dst,
                             rate_bps=rate_bps, started_ns=self.sim.now,
                             path=path)
        self.flows.append(flow)
        for hop in path:
            self._port_load[hop] = self._port_load.get(hop, 0.0) + rate_bps
            self._dirty.add(hop)
        return flow

    def stop_flow(self, flow: AggregateFlow) -> None:
        """Stop a flow: settle its bytes and release its rate."""
        if not flow.active:
            return
        now = self.sim.now
        flow.bytes_settled += flow.rate_bps * (now - flow.started_ns) / 8e9
        flow.stopped_ns = now
        for hop in flow.path:
            self._port_load[hop] -= flow.rate_bps
            self._dirty.add(hop)

    def flush(self) -> int:
        """Install pending load changes onto the fabric's egress ports.

        Returns the number of ports updated.  Charging is deferred to a
        flush so a setup loop adding thousands of flows touches each
        port's serialization cache once, not once per flow.
        """
        updated = 0
        for role, index, port_index in sorted(self._dirty):
            port = self._port_for(role, index, port_index)
            port.set_background_load(
                self._port_load[(role, index, port_index)])
            updated += 1
        self._dirty.clear()
        return updated

    # ---------------------------------------------------------- accounting
    def settle(self) -> float:
        """Settle active flows' byte accounting up to sim-now; returns the
        total background bytes carried so far (all flows, all time)."""
        now = self.sim.now
        for flow in self.flows:
            if flow.active:
                flow.bytes_settled += \
                    flow.rate_bps * (now - flow.started_ns) / 8e9
                flow.started_ns = now
        return self.total_bytes()

    def total_bytes(self) -> float:
        """Background bytes settled so far (call :meth:`settle` first to
        include the in-flight interval)."""
        return sum(flow.bytes_settled for flow in self.flows)

    def active_flows(self) -> int:
        return sum(1 for flow in self.flows if flow.active)

    def port_load_bps(self, role: int, index: int, port: int) -> float:
        """Charged background rate on one switch egress port."""
        return self._port_load.get((role, index, port), 0.0)

    # ------------------------------------------------------------ internal
    def _port_for(self, role: int, index: int,
                  port_index: int) -> "EgressPort":
        return self.topology.switch_for(role, index).ports[port_index]
