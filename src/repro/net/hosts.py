"""Minimal host devices for fabric-level testing and raw traffic tools.

Real endpoints are RNICs (:mod:`repro.rnic`); these lightweight hosts speak
raw segments and are used by fabric unit tests and by XR-Perf's raw mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.net.device import Device
from repro.net.packet import Segment

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.clos import ClosTopology
    from repro.topology.link import EgressPort


class SimpleHost(Device):
    """A host that records arrivals and can inject raw segments.

    Honours PFC on its single uplink, so fabric back-pressure tests can use
    it as a traffic source.
    """

    def __init__(self, host_id: int, name: str = ""):
        self.host_id = host_id
        self.name = name or f"host{host_id}"
        self.uplink: Optional["EgressPort"] = None
        self.received: List[Segment] = []
        self.rx_bytes = 0
        self.on_receive: Optional[Callable[[Segment], None]] = None

    def plug_into(self, topology: "ClosTopology",
                  bandwidth_bps: Optional[float] = None) -> None:
        """Attach to the fabric as this host id."""
        self.uplink = topology.attach(self.host_id, self,
                                      bandwidth_bps=bandwidth_bps)

    def receive(self, segment: Segment, in_port: int) -> None:
        """Record an arrival (and invoke ``on_receive`` if set)."""
        self.received.append(segment)
        self.rx_bytes += segment.size
        if self.on_receive is not None:
            self.on_receive(segment)

    def pause_port(self, port: int, priority: int, pause: bool) -> None:
        """Honour PFC by gating the named class on the single uplink."""
        if self.uplink is not None:
            self.uplink.set_paused(pause, priority)

    def send(self, segment: Segment) -> None:
        """Inject a raw segment into the fabric."""
        if self.uplink is None:
            raise RuntimeError(f"{self.name} is not plugged into a fabric")
        self.uplink.enqueue(segment)
