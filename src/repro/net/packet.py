"""The wire unit of the simulation.

The fabric is simulated at *segment* granularity: one
:class:`Segment` is at most one MTU of payload (RNICs split larger work
requests).  Control traffic — RC ACK/NAKs, CNPs, PFC pause frames — are
segments too, so everything contends for the same queues the way it does on
a real RoCEv2 network.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any


class SegmentKind(Enum):
    """What a segment carries; switches treat kinds differently."""

    DATA = auto()        #: RC payload (or payload-carrying first/only packet)
    ACK = auto()         #: RC acknowledgement / NAK
    CNP = auto()         #: DCQCN congestion-notification packet
    PAUSE = auto()       #: PFC pause/resume frame (link-local, never queued)
    CONTROL = auto()     #: connection management (rdma_cm, TCP handshakes)


@dataclass(slots=True)
class Segment:
    """One simulated wire unit.

    ``flow_id`` identifies the 5-tuple-equivalent used by ECMP hashing and
    by DCQCN (one rate limiter per flow/QP).  ``payload`` carries the
    higher-layer object (an RC packet, a CM message, ...), opaque to the
    fabric.
    """

    src: int                          #: source host id
    dst: int                          #: destination host id
    size: int                         #: payload bytes on the wire
    kind: SegmentKind = SegmentKind.DATA
    flow_id: int = 0
    priority: int = 0                 #: PFC priority class (0 = lossless RoCE)
    ecn_capable: bool = True
    ecn_marked: bool = False
    payload: Any = None
    enqueued_at: int = 0              #: set by switches for latency accounting
    hops: int = 0                     #: switch traversals so far
    #: PFC ingress accounting, stamped by the switch that queued the
    #: segment so its dequeue hook can find the right ingress counter.
    pfc_switch: Any = None
    pfc_ingress: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"segment size must be >= 0, got {self.size}")

    @property
    def is_control(self) -> bool:
        """Control segments bypass DCQCN rate limiting at the NIC."""
        return self.kind is not SegmentKind.DATA
