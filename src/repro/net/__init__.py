"""Shared wire-level types for the simulated fabric.

:mod:`repro.net` holds the types every network layer shares — the
:class:`~repro.net.packet.Segment` wire unit, the
:class:`~repro.net.device.Device` attach protocol, and the global
:class:`~repro.net.stats.NetStats` counters that the benchmarks read
(CNPs, PFC pause frames, drops — the crucial indexes of Sec. VII-C).
"""

from repro.net.aggregate import AggregateFlow, AggregateTraffic
from repro.net.device import Device
from repro.net.packet import Segment, SegmentKind
from repro.net.stats import NetStats

__all__ = ["AggregateFlow", "AggregateTraffic", "Device", "NetStats",
           "Segment", "SegmentKind"]
