"""Latency/statistics helpers shared by the tracer, monitor and tools."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile queries.

    Buckets are powers of √2 over nanoseconds, giving ~3% resolution with a
    few dozen integers — cheap enough to keep per channel.
    """

    _BASE = math.sqrt(2)

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min_ns: int = 0
        self.max_ns: int = 0

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        index = 0 if latency_ns < 1 else int(
            math.log(latency_ns, self._BASE))
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += latency_ns
        if self.count == 1:
            self.min_ns = self.max_ns = latency_ns
        else:
            self.min_ns = min(self.min_ns, latency_ns)
            self.max_ns = max(self.max_ns, latency_ns)

    @property
    def mean_ns(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0 < p ≤ 100)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return self._BASE ** (index + 0.5)
        return float(self.max_ns)  # pragma: no cover - target ≤ count

    def merge(self, other: "LatencyHistogram") -> None:
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        if other.count:
            if self.count == 0:
                self.min_ns, self.max_ns = other.min_ns, other.max_ns
            else:
                self.min_ns = min(self.min_ns, other.min_ns)
                self.max_ns = max(self.max_ns, other.max_ns)
        self.count += other.count
        self.total += other.total


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an **already sorted** sequence
    (``q`` in [0, 1]).

    Integer rank arithmetic via ``math.ceil`` — no interpolation, so the
    result is always an actual observed value and never depends on float
    summation order.  This is THE percentile routine: the fleet
    aggregator, the xr_trace CLI and the serving window engine all
    delegate here, so their numbers are comparable by construction.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def jitter_index(values: Sequence[float]) -> float:
    """Coefficient of variation — the benches' jitter measure (Fig. 12)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    if mu == 0:
        return 0.0
    variance = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / mu


def timeseries_rate(samples: List, window: int = 1) -> List[float]:
    """Convert cumulative counters [(t, v), ...] into per-interval rates."""
    rates = []
    for (t0, v0), (t1, v1) in zip(samples, samples[1:]):
        dt = (t1 - t0) or 1
        rates.append((v1 - v0) / dt)
    return rates
