"""X-RDMA's built-in analysis framework (Sec. VI).

* :class:`~repro.analysis.tracing.Tracer` — req-rsp tracing: latency
  decomposition with synchronized clocks, the poll-gap watchdog, and
  slow-segment logging.
* :class:`~repro.analysis.clocksync.ClockSync` — the clock-offset service
  the network-time decomposition needs.
* :class:`~repro.analysis.stats.LatencyHistogram` — percentile machinery.
* :class:`~repro.analysis.monitor.Monitor` — the centralized collector the
  XR-* tools and production figures read from.
* :class:`~repro.analysis.faultfilter.Filter` — error injection (drops,
  delays, duplicates) on the data plane, tunable online.
* :class:`~repro.analysis.mock.Mock` — temporary TCP fallback.
* :class:`~repro.analysis.invariants.InvariantRegistry` — the runtime
  protocol-sanitizer: inline invariant hooks plus structural deep checks,
  fatal under tests and counting under benches.
"""

from repro.analysis.clocksync import ClockSync, HostClock
from repro.analysis.faultfilter import FaultRule, Filter
from repro.analysis.invariants import (InvariantError, InvariantRegistry,
                                       verify_context)
from repro.analysis.mock import Mock
from repro.analysis.monitor import Monitor
from repro.analysis.report import series_panel, sparkline, table
from repro.analysis.stats import LatencyHistogram
from repro.analysis.tracing import TraceContext, TraceRecord, Tracer

__all__ = ["ClockSync", "FaultRule", "Filter", "HostClock",
           "InvariantError", "InvariantRegistry", "LatencyHistogram",
           "Mock", "Monitor", "TraceContext", "TraceRecord", "Tracer",
           "series_panel", "sparkline", "table", "verify_context"]
