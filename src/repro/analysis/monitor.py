"""The centralized monitor (Sec. VI-B).

Registered contexts are sampled on a cadence; the monitor accumulates the
time series behind the production figures — QP counts, IOPS, bandwidth,
memory-cache occupancy (Figs. 3, 11, 12) — plus the fabric's "crucial
indexes": CNPs, PFC pauses, queue drops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.invariants import current as _invariant_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stats import NetStats
    from repro.sim.engine import Simulator
    from repro.xrdma.context import XrdmaContext

Sample = Tuple[int, float]


class Monitor:
    """Aggregates per-context and fabric-wide series."""

    def __init__(self, sim: "Simulator", stats: "NetStats",
                 sample_interval_ns: int = 10_000_000):
        self.sim = sim
        self.stats = stats
        self.sample_interval_ns = sample_interval_ns
        self.series: Dict[str, List[Sample]] = defaultdict(list)
        self._contexts: List["XrdmaContext"] = []
        self._last_sample: Dict[int, int] = {}

    # ----------------------------------------------------------- registration
    def attach(self, ctx: "XrdmaContext") -> None:
        ctx.monitor = self
        self._contexts.append(ctx)

    # --------------------------------------------------------------- sampling
    def gauge(self, name: str, now_ns: int, value: float) -> None:
        """Record one externally-computed sample into a named series.

        Subsystems that already do their own windowing (e.g. the XR-Serve
        harness) publish through here so their series sit next to the
        sampled ones in rollups.
        """
        self.series[name].append((now_ns, float(value)))

    def maybe_sample(self, ctx: "XrdmaContext") -> None:
        """Called by the context loop; rate-limited per context."""
        last = self._last_sample.get(ctx.ctx_id, -self.sample_interval_ns)
        if self.sim.now - last < self.sample_interval_ns:
            return
        self._last_sample[ctx.ctx_id] = self.sim.now
        self.sample_context(ctx)

    def sample_context(self, ctx: "XrdmaContext") -> None:
        now = self.sim.now
        prefix = f"ctx{ctx.ctx_id}"
        snapshot = ctx.stat_snapshot()
        for key in ("channels", "mem_occupied", "mem_in_use", "mr_count",
                    "incoming_backlog"):
            self.series[f"{prefix}.{key}"].append((now, snapshot[key]))
        tx = sum(ch.stats["tx_msgs"] for ch in ctx.channels.values())
        rx = sum(ch.stats["rx_msgs"] for ch in ctx.channels.values())
        tx_bytes = sum(ch.stats["tx_bytes"] for ch in ctx.channels.values())
        rx_bytes = sum(ch.stats["rx_bytes"] for ch in ctx.channels.values())
        self.series[f"{prefix}.tx_msgs"].append((now, tx))
        self.series[f"{prefix}.rx_msgs"].append((now, rx))
        self.series[f"{prefix}.tx_bytes"].append((now, tx_bytes))
        self.series[f"{prefix}.rx_bytes"].append((now, rx_bytes))
        qp_count = len(ctx.channels) + len(ctx.qpcache)
        self.series[f"{prefix}.qp_count"].append((now, qp_count))
        # Count-mode invariant checking (Sec. VI-C): violations surface as
        # a crucial index in the production time series.
        registry = _invariant_registry()
        if registry is not None:
            self.series[f"{prefix}.invariant_violations"].append(
                (now, registry.total))
        tracer = ctx.tracer
        if tracer is not None:
            self.series[f"{prefix}.tracing.completed"].append(
                (now, tracer.latency.count))
            self.series[f"{prefix}.tracing.negative_network_clamped"].append(
                (now, tracer.negative_network_clamped))
            for stage in sorted(tracer.segment_latency):
                histogram = tracer.segment_latency[stage]
                self.series[f"{prefix}.trace.{stage}.count"].append(
                    (now, histogram.count))
                self.series[f"{prefix}.trace.{stage}.p99_ns"].append(
                    (now, histogram.percentile(99)))

    def sample_fabric(self) -> None:
        """Record the cluster-wide crucial indexes."""
        now = self.sim.now
        snapshot = self.stats.snapshot()
        for key in ("cnps_sent", "pause_frames", "drops", "ecn_marks",
                    "rnr_naks", "data_bytes_delivered", "retransmissions"):
            self.series[f"net.{key}"].append((now, snapshot[key]))

    def start_fabric_sampler(self, interval_ns: Optional[int] = None):
        """Spawn a background process sampling the fabric on a cadence."""
        interval = interval_ns or self.sample_interval_ns

        def loop():
            while True:
                self.sample_fabric()
                yield self.sim.timeout(interval)

        return self.sim.spawn(loop(), name="monitor:fabric")

    # ------------------------------------------------------------- reporting
    def values(self, name: str) -> List[float]:
        return [value for _, value in self.series[name]]

    def deltas(self, name: str) -> List[float]:
        """Per-interval increments of a cumulative series."""
        samples = self.series[name]
        return [b[1] - a[1] for a, b in zip(samples, samples[1:])]

    def rate_per_second(self, name: str) -> List[float]:
        """Per-interval increments scaled to a per-second rate."""
        samples = self.series[name]
        out = []
        for (t0, v0), (t1, v1) in zip(samples, samples[1:]):
            dt_s = (t1 - t0) / 1e9 or 1e-9
            out.append((v1 - v0) / dt_s)
        return out
