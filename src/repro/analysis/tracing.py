"""Req-rsp tracing (Sec. VI-A).

In req-rsp mode each message's header carries a trace id and the sender's
local timestamp.  The tracer then supports the paper's three case-by-case
long-latency methods:

I.   **Network decomposition** — with clock-synced hosts, the real request
     time is ``T2 - T1 - Toff``.
II.  **Poll-gap watchdog** — the context reports gaps between polling
     rounds; gaps over ``polling_warn_cycle`` become log entries (this is
     how the Pangu allocator-lock jitter of Sec. VII-D was found).
III. **Slow-segment log** — instrumented code segments exceeding
     ``slow_threshold`` are recorded with their location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.clocksync import ClockSync
from repro.analysis.stats import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.context import XrdmaContext
    from repro.xrdma.message import XrdmaMessage


@dataclass
class TraceRecord:
    """One traced message's decomposition."""

    trace_id: int
    channel_id: int
    src_host: int
    dst_host: int
    payload_size: int
    sent_local_ns: int          #: T1, sender's clock
    received_local_ns: int      #: T2, receiver's clock
    network_ns: int             #: T2 - T1 - Toff
    total_ns: int               #: send → app-level ack (sender view)


@dataclass
class SlowLogEntry:
    location: str
    duration_ns: int
    at_ns: int
    host: int


class Tracer:
    """Per-context tracing hooks; attach via ``ctx.tracer = tracer``."""

    def __init__(self, ctx: "XrdmaContext", clocksync: ClockSync):
        self.ctx = ctx
        self.clocksync = clocksync
        self.clock = clocksync.clock(ctx.nic.host_id)
        self.records: Dict[int, TraceRecord] = {}
        self.slow_log: List[SlowLogEntry] = []
        self.poll_gap_log: List[SlowLogEntry] = []
        self.latency = LatencyHistogram()
        self.network_latency = LatencyHistogram()
        ctx.tracer = self

    # ----------------------------------------------------- context callbacks
    def _sampled(self, msg: "XrdmaMessage") -> bool:
        mask = self.ctx.config.trace_sample_mask
        if mask == 0 or msg.header is None or msg.header.trace_id == 0:
            return False
        return msg.header.trace_id % mask == 0 if mask > 1 else True

    def on_message_delivered(self, channel: "XrdmaChannel",
                             msg: "XrdmaMessage") -> None:
        """Receiver side: build the network decomposition."""
        if not self._sampled(msg):
            return
        header = msg.header
        src_host = channel.remote_host
        dst_host = self.ctx.nic.host_id
        toff = self.clocksync.offset(src_host, dst_host)
        received_local = self.clock.read(self.ctx.sim.now)
        network = received_local - header.sent_at_ns - toff
        record = TraceRecord(
            trace_id=header.trace_id, channel_id=channel.channel_id,
            src_host=src_host, dst_host=dst_host,
            payload_size=header.payload_size,
            sent_local_ns=header.sent_at_ns,
            received_local_ns=received_local,
            network_ns=network, total_ns=0)
        self.records[header.trace_id] = record
        self.network_latency.record(max(network, 0))

    def on_message_acked(self, channel: "XrdmaChannel",
                         msg: "XrdmaMessage") -> None:
        """Sender side: end-to-end (send → app ack) latency."""
        if msg.header is None or msg.header.trace_id == 0:
            return
        total = self.ctx.sim.now - msg.created_at
        self.latency.record(total)
        record = self.records.get(msg.header.trace_id)
        if record is not None:
            record.total_ns = total

    def on_slow_poll(self, ctx: "XrdmaContext", gap_ns: int) -> None:
        """Method II: the polling watchdog fired."""
        self.poll_gap_log.append(SlowLogEntry(
            location="polling", duration_ns=gap_ns,
            at_ns=ctx.sim.now, host=ctx.nic.host_id))

    # --------------------------------------------------------- app-facing api
    def segment(self, location: str, duration_ns: int) -> None:
        """Method III: record an instrumented code segment's duration."""
        if duration_ns >= self.ctx.config.slow_threshold_ns:
            self.slow_log.append(SlowLogEntry(
                location=location, duration_ns=duration_ns,
                at_ns=self.ctx.sim.now, host=self.ctx.nic.host_id))

    def trace_request(self, msg: "XrdmaMessage") -> Optional[TraceRecord]:
        """The ``xrdma_trace_request`` API."""
        if msg.header is None:
            return None
        return self.records.get(msg.header.trace_id)

    # ------------------------------------------------------------- summaries
    def sent_record_sync(self, remote_host: int) -> int:
        """(Re)sync clocks with ``remote_host``; returns the estimate."""
        return self.clocksync.sync(self.ctx.nic.host_id, remote_host)
