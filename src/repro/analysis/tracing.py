"""XR-Trace: span-decomposed req-rsp tracing (Sec. VI-A).

In req-rsp mode each message's header carries a trace id, the sender's
local timestamp and — for sampled messages — a :class:`TraceContext` that
rides the header through every layer of the stack.  Each layer closes one
named span by calling :meth:`TraceContext.mark`; a completed trace
decomposes the message's whole life into contiguous segments:

========================  ====================================================
stage (span it closes)    closed by
========================  ====================================================
``window_wait``           channel pump: a seq-ack window slot was claimed
``src_alloc``             large only: source buffer registered for the read
``flowctl_queue``         flow controller issued the WR (queue + budget wait)
``post_send``             WQE entered the send queue (verbs posting overhead)
``nic_tx``                NIC engine emitted the first fragment
``wire_hop<N>``           switch N forwarded the first fragment
``rx_nic``                receiver NIC finished reassembling the message
``rx_poll``               receiver context picked the CQE up (poll pickup)
``rendezvous_read``       large only: the receiver's RDMA Read completed
``window_ready``          receiver window advanced rta past the message
``rx_deliver``            message handed to the receiving application
``ack_return``            sender saw the app-level cumulative ack
========================  ====================================================

Marks record timestamps only — they never create, drop or reorder
simulation events, so tracing is schedule-neutral by construction (the
digest-equivalence tests enforce it).  Spans are consecutive differences
between marks, so for a complete chain they sum *exactly* to the
end-to-end total; any residual means an instrumentation defect and trips
the ``tracing.span_residual`` invariant.

The tracer also keeps the paper's three case-by-case long-latency
methods:

I.   **Network decomposition** — with clock-synced hosts, the real request
     time is ``T2 - T1 - Toff``.
II.  **Poll-gap watchdog** — the context reports gaps between polling
     rounds; gaps over ``polling_warn_cycle`` become log entries (this is
     how the Pangu allocator-lock jitter of Sec. VII-D was found).
III. **Slow-segment log** — instrumented code segments exceeding
     ``slow_threshold`` are recorded with their location.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Optional,
                    Tuple)

from repro.analysis import invariants
from repro.analysis.clocksync import ClockSync
from repro.analysis.invariants import check as _invariant
from repro.analysis.stats import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.context import XrdmaContext
    from repro.xrdma.message import XrdmaHeader, XrdmaMessage

#: Stages every completed trace must contain (``wire_hop<N>`` marks are
#: topology-dependent — loopback has none — and the ``src_alloc`` /
#: ``rendezvous_read`` stages exist only on the large-message path).
REQUIRED_STAGES = frozenset((
    "window_wait", "flowctl_queue", "post_send", "nic_tx",
    "rx_nic", "rx_poll", "window_ready", "rx_deliver", "ack_return",
))

#: Extra stages required when the message went through rendezvous.
LARGE_STAGES = frozenset(("src_alloc", "rendezvous_read"))

#: Stages of a completed *setup* trace (channel establishment).  The
#: control plane decomposes the same zero-residual way the data path
#: does: address/route resolve, QP allocation + INIT (``qp_setup``), the
#: REQ/REP wait, RTR+RTS (``qp_to_rts``), the first receive-buffer MR
#: registration (``mr_reg`` — zero when the memory cache is warm) and
#: the remaining receive pre-posting (``recv_prime``).
SETUP_STAGES = frozenset((
    "cm_resolve", "qp_setup", "handshake", "qp_to_rts",
    "mr_reg", "recv_prime",
))


class TraceContext:
    """Per-sampled-message span accumulator, propagated inside the header.

    The context carries its own simulator reference so clock-less layers
    (the seq-ack window, the QP) can close spans without plumbing time
    through their APIs.  ``mark`` is idempotent per stage — middleware
    retransmits, duplicate deliveries and go-back-N replays re-enter the
    instrumented paths, and only the *first* traversal may close a span —
    and refuses non-monotonic timestamps outright.
    """

    __slots__ = ("trace_id", "sim", "marks", "_seen", "suppressed_marks",
                 "sender_record", "delivery_record")

    def __init__(self, trace_id: int, sim: "Simulator",
                 start_ns: int, anchor: str = "app_enqueue") -> None:
        self.trace_id = trace_id
        self.sim = sim
        #: (stage, timestamp); marks[0] anchors the chain (app enqueue
        #: for message traces, setup_begin for establishment traces)
        self.marks: List[Tuple[str, int]] = [(anchor, start_ns)]
        self._seen = {anchor}
        #: re-traversals that tried to close an already-closed span
        self.suppressed_marks = 0
        self.sender_record: Optional["TraceRecord"] = None
        self.delivery_record: Optional["TraceRecord"] = None

    def mark(self, stage: str) -> None:
        """Close the span ending at this stage (first traversal only)."""
        if stage in self._seen:
            self.suppressed_marks += 1
            return
        now = self.sim.now
        if not _invariant(now >= self.marks[-1][1],
                          "tracing.nonmonotonic_mark",
                          lambda: f"trace {self.trace_id}: {stage} at {now} "
                                  f"after {self.marks[-1]}"):
            self.suppressed_marks += 1
            return
        self._seen.add(stage)
        self.marks.append((stage, now))

    @property
    def start_ns(self) -> int:
        return self.marks[0][1]

    @property
    def last_ns(self) -> int:
        return self.marks[-1][1]

    def stages(self) -> List[str]:
        return [stage for stage, _ in self.marks]

    def spans(self) -> List[Tuple[str, int]]:
        """(stage, duration) pairs; each span is named by the mark that
        closed it, so the list sums to ``last_ns - start_ns`` exactly."""
        return [(stage, t1 - t0)
                for (_, t0), (stage, t1) in zip(self.marks, self.marks[1:])]


@dataclass
class TraceRecord:
    """One traced message's decomposition (the collector's view)."""

    trace_id: int
    channel_id: int
    src_host: int
    dst_host: int
    payload_size: int
    kind: str = ""
    view: str = "sender"        #: which end's tracer created the record
    sent_local_ns: int = 0      #: T1, sender's clock
    received_local_ns: int = 0  #: T2, receiver's clock
    network_ns: int = 0         #: T2 - T1 - Toff (may be negative: residual)
    total_ns: int = 0           #: app enqueue → app-level ack (sender view)
    started_at_ns: int = 0      #: sim-time send enqueue
    spans: List[Tuple[str, int]] = field(default_factory=list)
    complete: bool = False      #: delivered *and* acked; totals are final
    residual_ns: int = 0        #: total - Σ spans (zero unless a hook broke)
    tenant: str = ""            #: owning tenant (serving runs; "" otherwise)

    def dominant_span(self) -> Tuple[str, int]:
        """The longest segment — critical-path attribution for one trace."""
        if not self.spans:
            return ("", 0)
        return max(self.spans, key=lambda item: (item[1], item[0]))

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "trace_id": self.trace_id,
            "channel_id": self.channel_id,
            "src_host": self.src_host,
            "dst_host": self.dst_host,
            "payload_size": self.payload_size,
            "kind": self.kind,
            "view": self.view,
            "sent_local_ns": self.sent_local_ns,
            "received_local_ns": self.received_local_ns,
            "network_ns": self.network_ns,
            "total_ns": self.total_ns,
            "started_at_ns": self.started_at_ns,
            "spans": [[stage, duration] for stage, duration in self.spans],
            "complete": self.complete,
            "residual_ns": self.residual_ns,
        }
        if self.tenant:
            # Only serving runs tag tenants; the key is omitted otherwise
            # so untagged artifacts stay byte-identical with older ones.
            out["tenant"] = self.tenant
        return out


@dataclass
class SlowLogEntry:
    location: str
    duration_ns: int
    at_ns: int
    host: int


class Tracer:
    """Per-context tracing hooks; attach via ``Tracer(ctx, clocksync)``."""

    def __init__(self, ctx: "XrdmaContext", clocksync: ClockSync,
                 tenant: str = ""):
        self.ctx = ctx
        self.clocksync = clocksync
        #: tenant tag stamped into every record this tracer creates
        self.tenant = tenant
        self.clock = clocksync.clock(ctx.nic.host_id)
        self.records: Dict[int, TraceRecord] = {}
        #: sender-side contexts begun but not yet acked
        self.pending: Dict[int, TraceContext] = {}
        self.slow_log: List[SlowLogEntry] = []
        self.poll_gap_log: List[SlowLogEntry] = []
        self.latency = LatencyHistogram()
        self.network_latency = LatencyHistogram()
        #: end-to-end channel-establishment latency (setup traces)
        self.setup_latency = LatencyHistogram()
        #: per-stage span histograms (completed traces only)
        self.segment_latency: Dict[str, LatencyHistogram] = {}
        #: negative network decompositions (clock-sync residual larger than
        #: the true network time) — surfaced, not hidden by the clamp
        self.negative_network_clamped = 0
        #: marks suppressed across finalized traces (retransmit visibility)
        self.suppressed_marks = 0
        ctx.tracer = self

    # ----------------------------------------------------------- sampling
    def samples(self, trace_id: int) -> bool:
        """THE sampling decision — made once, on the sender, and carried to
        the receiver inside the header (symmetric by construction)."""
        mask = self.ctx.config.trace_sample_mask
        if mask == 0 or trace_id == 0:
            return False
        return trace_id % mask == 0 if mask > 1 else True

    # ------------------------------------------------------ channel hooks
    def begin_trace(self, channel: "XrdmaChannel", msg: "XrdmaMessage",
                    header: "XrdmaHeader") -> Optional[TraceContext]:
        """Sender side, called at header build time: start the span chain
        for a sampled message (returns None when unsampled)."""
        if not self.samples(header.trace_id):
            return None
        trace = TraceContext(header.trace_id, self.ctx.sim, msg.created_at)
        record = TraceRecord(
            trace_id=header.trace_id, channel_id=channel.channel_id,
            src_host=self.ctx.nic.host_id, dst_host=channel.remote_host,
            payload_size=msg.payload_size, kind=msg.kind.name,
            view="sender", sent_local_ns=header.sent_at_ns,
            started_at_ns=msg.created_at, tenant=self.tenant)
        trace.sender_record = record
        self.records[header.trace_id] = record
        self.pending[header.trace_id] = trace
        trace.mark("window_wait")
        return trace

    def on_message_delivered(self, channel: "XrdmaChannel",
                             msg: "XrdmaMessage") -> None:
        """Receiver side: build the network decomposition.

        Records if and only if the sender sampled the message — the trace
        context in the header *is* the decision, so sender and receiver
        histograms share one denominator.
        """
        header = msg.header
        trace = None if header is None else getattr(header, "trace", None)
        if trace is None or trace.delivery_record is not None:
            return
        src_host = channel.remote_host
        dst_host = self.ctx.nic.host_id
        toff = self.clocksync.offset(src_host, dst_host,
                                     now_ns=self.ctx.sim.now)
        received_local = self.clock.read(self.ctx.sim.now)
        network = received_local - header.sent_at_ns - toff
        record = self.records.get(trace.trace_id)
        if record is None:
            record = TraceRecord(
                trace_id=trace.trace_id, channel_id=channel.channel_id,
                src_host=src_host, dst_host=dst_host,
                payload_size=header.payload_size, kind=header.kind.name,
                view="receiver", sent_local_ns=header.sent_at_ns,
                started_at_ns=trace.start_ns, tenant=self.tenant)
            self.records[trace.trace_id] = record
        record.received_local_ns = received_local
        record.network_ns = network
        trace.delivery_record = record
        if network < 0:
            # Clock-sync residual exceeded the true network time.  The
            # histogram needs a non-negative value, but the event itself
            # is a crucial index (Monitor series), not something to hide.
            self.negative_network_clamped += 1
        self.network_latency.record(max(network, 0))

    def on_message_acked(self, channel: "XrdmaChannel",
                         msg: "XrdmaMessage") -> None:
        """Sender side: the app-level ack closes the chain; finalize."""
        header = msg.header
        trace = None if header is None else getattr(header, "trace", None)
        if trace is None:
            return
        trace.mark("ack_return")
        self._finalize(trace, msg)

    def _finalize(self, trace: TraceContext, msg: "XrdmaMessage") -> None:
        record = trace.sender_record
        if record is None or record.complete:
            return
        # The end-to-end total is measured independently of the marks
        # (enqueue to ack, the latency the application observes); the
        # spans must account for every nanosecond of it.
        total = self.ctx.sim.now - msg.created_at
        spans = trace.spans()
        residual = total - sum(duration for _, duration in spans)
        record.total_ns = total
        record.spans = spans
        record.residual_ns = residual
        record.complete = True
        self.pending.pop(trace.trace_id, None)
        self.suppressed_marks += trace.suppressed_marks
        self.latency.record(total)
        for stage, duration in spans:
            histogram = self.segment_latency.get(stage)
            if histogram is None:
                histogram = self.segment_latency[stage] = LatencyHistogram()
            histogram.record(duration)
        # Centralized-collector join: stamp the sender's totals into the
        # receiver-side record (the same TraceContext object reaches both
        # tracers), and the receiver's network view back into ours.
        delivery = trace.delivery_record
        if delivery is not None and delivery is not record:
            delivery.total_ns = total
            delivery.spans = spans
            delivery.residual_ns = residual
            delivery.complete = True
            record.received_local_ns = delivery.received_local_ns
            record.network_ns = delivery.network_ns
        if invariants.ENABLED:
            _invariant(residual == 0, "tracing.span_residual",
                       lambda: f"trace {trace.trace_id}: total {total} != "
                               f"Σ spans {total - residual} "
                               f"(residual {residual})")
            required = REQUIRED_STAGES
            if getattr(msg.header, "large", False):
                required = required | LARGE_STAGES
            missing = required.difference(trace.stages())
            _invariant(not missing, "tracing.incomplete_span_chain",
                       lambda: f"trace {trace.trace_id} missing "
                               f"{sorted(missing)}")

    # -------------------------------------------------------- setup tracing
    def begin_setup(self, remote_host: int,
                    service_port: int) -> Optional[TraceContext]:
        """Start a channel-establishment trace (``connect`` calls this).

        Setup traces draw ids from the same counter as message traces, so
        ``(run_id, trace_id)`` stays unique across both kinds in merged
        artifacts.  Returns None when the sample mask traces nothing.
        """
        if self.ctx.config.trace_sample_mask == 0:
            return None
        # Module-attribute lookup at call time: tests monkeypatch the
        # counter for deterministic ids, and late import avoids a cycle.
        from repro.xrdma import channel as _channel_mod
        trace_id = next(_channel_mod._trace_ids)
        now = self.ctx.sim.now
        trace = TraceContext(trace_id, self.ctx.sim, now,
                             anchor="setup_begin")
        record = TraceRecord(
            trace_id=trace_id, channel_id=0,
            src_host=self.ctx.nic.host_id, dst_host=remote_host,
            payload_size=0, kind="SETUP", view="setup",
            started_at_ns=now, tenant=self.tenant)
        trace.sender_record = record
        self.records[trace_id] = record
        self.pending[trace_id] = trace
        return trace

    def finalize_setup(self, trace: TraceContext) -> None:
        """Close a setup trace (establishment finished and channel primed).

        A failed connect simply never finalizes: the record stays
        incomplete, which is exactly what ``incomplete_count`` reports.
        """
        record = trace.sender_record
        if record is None or record.complete:
            return
        total = self.ctx.sim.now - trace.start_ns
        spans = trace.spans()
        residual = total - sum(duration for _, duration in spans)
        record.total_ns = total
        record.spans = spans
        record.residual_ns = residual
        record.complete = True
        self.pending.pop(trace.trace_id, None)
        self.suppressed_marks += trace.suppressed_marks
        self.setup_latency.record(total)
        for stage, duration in spans:
            histogram = self.segment_latency.get(stage)
            if histogram is None:
                histogram = self.segment_latency[stage] = LatencyHistogram()
            histogram.record(duration)
        if invariants.ENABLED:
            _invariant(residual == 0, "tracing.setup_span_residual",
                       lambda: f"setup trace {trace.trace_id}: total "
                               f"{total} != Σ spans {total - residual} "
                               f"(residual {residual})")
            missing = SETUP_STAGES.difference(trace.stages())
            _invariant(not missing, "tracing.setup_incomplete_chain",
                       lambda: f"setup trace {trace.trace_id} missing "
                               f"{sorted(missing)}")

    # ----------------------------------------------------- context callbacks
    def on_slow_poll(self, ctx: "XrdmaContext", gap_ns: int) -> None:
        """Method II: the polling watchdog fired."""
        self.poll_gap_log.append(SlowLogEntry(
            location="polling", duration_ns=gap_ns,
            at_ns=ctx.sim.now, host=ctx.nic.host_id))

    # --------------------------------------------------------- app-facing api
    def segment(self, location: str, duration_ns: int) -> None:
        """Method III: record an instrumented code segment's duration."""
        if duration_ns >= self.ctx.config.slow_threshold_ns:
            self.slow_log.append(SlowLogEntry(
                location=location, duration_ns=duration_ns,
                at_ns=self.ctx.sim.now, host=self.ctx.nic.host_id))

    def trace_request(self, msg: "XrdmaMessage") -> Optional[TraceRecord]:
        """The ``xrdma_trace_request`` API."""
        if msg.header is None:
            return None
        return self.records.get(msg.header.trace_id)

    # ------------------------------------------------------------- summaries
    def incomplete_count(self) -> int:
        """Sampled traces that never closed (dropped, unacked, in flight)."""
        return sum(1 for record in self.records.values()
                   if not record.complete)

    def export_records(self) -> List[Dict[str, Any]]:
        """Every record as a JSONL-ready dict, ordered by trace id."""
        return [self.records[trace_id].as_dict()
                for trace_id in sorted(self.records)]

    def sent_record_sync(self, remote_host: int) -> int:
        """(Re)sync clocks with ``remote_host``; returns the estimate."""
        return self.clocksync.sync(self.ctx.nic.host_id, remote_host,
                                   now_ns=self.ctx.sim.now)


# ------------------------------------------------------------- run artifact
def merged_trace_records(tracers: Iterable[Tracer]) -> List[Dict[str, Any]]:
    """One dict per trace across many tracers, sender view preferred.

    Sender and receiver tracers each hold a record for the same trace id;
    after the finalize join they agree on spans and totals, so the export
    keeps a single line per trace (deterministic order: by trace id).
    """
    by_id: Dict[int, Dict[str, Any]] = {}
    for tracer in tracers:
        for record in tracer.export_records():
            existing = by_id.get(record["trace_id"])
            if existing is None or (existing["view"] != "sender"
                                    and record["view"] == "sender"):
                by_id[record["trace_id"]] = record
    return [by_id[trace_id] for trace_id in sorted(by_id)]


def export_jsonl(path: Any, tracers: Iterable[Tracer],
                 meta: Optional[Dict[str, Any]] = None) -> int:
    """Write one trace artifact: a meta line, then one line per trace.

    Returns the number of trace lines written.  The format is what
    ``repro.tools.xr_trace`` reads and what fleet runs attach per unit.
    """
    tracers = list(tracers)
    records = merged_trace_records(tracers)
    header: Dict[str, Any] = {
        "records": len(records),
        "incomplete": sum(1 for record in records
                          if not record["complete"]),
        "negative_network_clamped": sum(
            tracer.negative_network_clamped for tracer in tracers),
        "suppressed_marks": sum(
            tracer.suppressed_marks for tracer in tracers),
    }
    if meta:
        header.update(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"meta": header}, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)
