"""Mock: temporary TCP fallback (Sec. VI-C, "Switch between RDMA and TCP").

When the RDMA data plane misbehaves (heavy congestion, incast storms,
protocol-stack collapse) X-RDMA can reroute a channel's traffic over kernel
TCP.  Throughput drops, but the service survives.

Engage per channel pair::

    mock = Mock(cluster)
    yield from mock.engage(client_ctx, client_ch, server_ctx, server_ch)
    client_ctx.send_msg(client_ch, 4096)      # now travels over TCP
    mock.disengage(client_ch)                  # back to RDMA
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Tuple

from repro.baselines.tcpstack import TcpAgent
from repro.xrdma.message import MessageKind, XrdmaHeader, XrdmaMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.xrdma.channel import XrdmaChannel
    from repro.xrdma.context import XrdmaContext

_mock_ports = itertools.count(52000)


class Mock:
    """Routes a channel's messages over a parallel TCP connection."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self._agents: Dict[int, TcpAgent] = {}
        self._routes: Dict[int, Tuple] = {}     # channel_id -> (socket, ctx)
        self.engaged_count = 0

    def _agent(self, host_id: int) -> TcpAgent:
        agent = self._agents.get(host_id)
        if agent is None:
            agent = self.cluster.tcp_agent(host_id)
            self._agents[host_id] = agent
        return agent

    def engage(self, ctx_a: "XrdmaContext", ch_a: "XrdmaChannel",
               ctx_b: "XrdmaContext", ch_b: "XrdmaChannel"):
        """Generator: open the TCP detour and patch both channels' sends."""
        port = next(_mock_ports)
        agent_a = self._agent(ctx_a.nic.host_id)
        agent_b = self._agent(ctx_b.nic.host_id)
        listener = agent_b.listen(port)
        socket_a = yield from agent_a.connect(ctx_b.nic.host_id, port)
        socket_b = yield listener.accepted.get()
        self._patch(ctx_a, ch_a, socket_a)
        self._patch(ctx_b, ch_b, socket_b)
        self.sim.spawn(self._rx_loop(ctx_a, ch_a, socket_a))
        self.sim.spawn(self._rx_loop(ctx_b, ch_b, socket_b))
        self.engaged_count += 1

    def disengage(self, channel: "XrdmaChannel") -> None:
        route = self._routes.pop(channel.channel_id, None)
        if route is None:
            return
        socket, original_queue = route
        channel.queue_message = original_queue       # restore RDMA path
        socket.close()

    def is_engaged(self, channel: "XrdmaChannel") -> bool:
        return channel.channel_id in self._routes

    # ------------------------------------------------------------- internals
    def _patch(self, ctx: "XrdmaContext", channel: "XrdmaChannel",
               socket) -> None:
        original_queue = channel.queue_message

        def tcp_queue(msg: XrdmaMessage) -> XrdmaMessage:
            msg.channel = channel
            msg.created_at = self.sim.now
            msg.header = XrdmaHeader(
                kind=msg.kind, seq=-1, ack=-1, msg_id=msg.msg_id,
                payload_size=msg.payload_size,
                request_msg_id=msg.request_msg_id,
                user_payload=msg.payload)
            msg.acked = self.sim.event("mock:acked")
            msg.acked.defused = True
            if msg.kind is MessageKind.REQUEST:
                msg.response = self.sim.event("mock:resp")
                msg.response.defused = True
                channel.pending_requests[msg.msg_id] = msg
            self.sim.spawn(self._tcp_send(channel, socket, msg))
            return msg

        channel.queue_message = tcp_queue
        self._routes[channel.channel_id] = (socket, original_queue)

    def _tcp_send(self, channel: "XrdmaChannel", socket, msg: XrdmaMessage):
        yield from socket.send(msg.payload_size, payload=msg)
        channel.stats["tx_msgs"] += 1
        channel.stats["tx_bytes"] += msg.payload_size
        if msg.acked is not None and not msg.acked.triggered:
            # TCP delivery is kernel-acked; treat send completion as ack.
            msg.acked.succeed(0)

    def _rx_loop(self, ctx: "XrdmaContext", channel: "XrdmaChannel", socket):
        while not socket.closed:
            nbytes, sent_msg = yield socket.recv()
            if sent_msg is None:
                continue
            delivered = XrdmaMessage(
                kind=sent_msg.kind, payload_size=nbytes,
                payload=sent_msg.payload, channel=channel,
                request_msg_id=sent_msg.request_msg_id)
            delivered.header = sent_msg.header
            delivered.delivered_at = self.sim.now
            channel.stats["rx_msgs"] += 1
            channel.stats["rx_bytes"] += nbytes
            if delivered.kind is MessageKind.RESPONSE:
                request = channel.pending_requests.pop(
                    sent_msg.request_msg_id, None)
                if request is not None and request.response is not None \
                        and not request.response.triggered:
                    request.response.succeed(delivered)
                    continue
            if delivered.kind is MessageKind.REQUEST \
                    and channel.on_request is not None:
                channel.on_request(delivered)
                continue
            ctx.deliver(delivered)
