"""Clock synchronization for latency decomposition (Sec. VI-A, method I).

Each host's clock runs at a fixed skew from simulated time; the tracer's
``T2 - T1 - Toff`` decomposition needs ``Toff`` estimated the way the
production service does — an NTP-style exchange whose residual error is
bounded by the RTT asymmetry, not assumed to be zero.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


class HostClock:
    """A host's local clock: simulated time plus a fixed offset."""

    def __init__(self, host_id: int, offset_ns: int):
        self.host_id = host_id
        self.offset_ns = offset_ns

    def read(self, sim_now: int) -> int:
        return sim_now + self.offset_ns


class ClockSync:
    """Cluster clock service: true offsets plus NTP-style estimates."""

    #: bound on the estimate's residual error (one-way asymmetry)
    RESIDUAL_BOUND_NS = 2_000

    def __init__(self, rng: "RngRegistry", max_skew_ns: int = 1_000_000):
        self._rng = rng.stream("clocksync")
        self.max_skew_ns = max_skew_ns
        self._clocks: Dict[int, HostClock] = {}
        self._estimates: Dict[Tuple[int, int], int] = {}

    def clock(self, host_id: int) -> HostClock:
        existing = self._clocks.get(host_id)
        if existing is None:
            offset = self._rng.randint(-self.max_skew_ns, self.max_skew_ns)
            existing = HostClock(host_id, offset)
            self._clocks[host_id] = existing
        return existing

    def true_offset(self, a: int, b: int) -> int:
        """Exact ``clock_b - clock_a`` (ground truth, for tests)."""
        return self.clock(b).offset_ns - self.clock(a).offset_ns

    def sync(self, a: int, b: int) -> int:
        """Run one NTP exchange; returns (and caches) the estimated offset.

        The estimate equals the true offset plus a bounded residual from
        path asymmetry.
        """
        residual = self._rng.randint(-self.RESIDUAL_BOUND_NS,
                                     self.RESIDUAL_BOUND_NS)
        estimate = self.true_offset(a, b) + residual
        self._estimates[(a, b)] = estimate
        self._estimates[(b, a)] = -estimate
        return estimate

    def offset(self, a: int, b: int) -> int:
        """Last synced estimate, syncing first if never done."""
        found = self._estimates.get((a, b))
        if found is None:
            return self.sync(a, b)
        return found
