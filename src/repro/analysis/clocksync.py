"""Clock synchronization for latency decomposition (Sec. VI-A, method I).

Each host's clock runs at a fixed skew from simulated time; the tracer's
``T2 - T1 - Toff`` decomposition needs ``Toff`` estimated the way the
production service does — an NTP-style exchange whose residual error is
bounded by the RTT asymmetry, not assumed to be zero.

Estimates are cached per host pair and stamped with the sync time; with a
``resync_after_ns`` policy the cache ages and long runs re-estimate
instead of trusting an exchange from minutes ago.  Self-offsets are exact
zero by definition — no exchange, no residual.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


class HostClock:
    """A host's local clock: simulated time plus a fixed offset."""

    def __init__(self, host_id: int, offset_ns: int):
        self.host_id = host_id
        self.offset_ns = offset_ns

    def read(self, sim_now: int) -> int:
        return sim_now + self.offset_ns


class ClockSync:
    """Cluster clock service: true offsets plus NTP-style estimates."""

    #: bound on the estimate's residual error (one-way asymmetry)
    RESIDUAL_BOUND_NS = 2_000

    def __init__(self, rng: "RngRegistry", max_skew_ns: int = 1_000_000,
                 resync_after_ns: Optional[int] = None):
        self._rng = rng.stream("clocksync")
        self.max_skew_ns = max_skew_ns
        #: estimates older than this are re-synced by :meth:`offset`
        #: (None: cached estimates never age — the seed behaviour)
        self.resync_after_ns = resync_after_ns
        self._clocks: Dict[int, HostClock] = {}
        #: (a, b) -> (estimated offset, synced-at timestamp)
        self._estimates: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.exchanges = 0      #: NTP exchanges run (resync visibility)

    def clock(self, host_id: int) -> HostClock:
        existing = self._clocks.get(host_id)
        if existing is None:
            offset = self._rng.randint(-self.max_skew_ns, self.max_skew_ns)
            existing = HostClock(host_id, offset)
            self._clocks[host_id] = existing
        return existing

    def true_offset(self, a: int, b: int) -> int:
        """Exact ``clock_b - clock_a`` (ground truth, for tests)."""
        return self.clock(b).offset_ns - self.clock(a).offset_ns

    def sync(self, a: int, b: int, now_ns: int = 0) -> int:
        """Run one NTP exchange; returns (and caches) the estimated offset.

        The estimate equals the true offset plus a bounded residual from
        path asymmetry.  A host's offset to itself is exactly zero — no
        exchange happens (and no entropy is consumed), so self-sync can
        never report phantom skew.
        """
        if a == b:
            self._estimates[(a, a)] = (0, now_ns)
            return 0
        residual = self._rng.randint(-self.RESIDUAL_BOUND_NS,
                                     self.RESIDUAL_BOUND_NS)
        estimate = self.true_offset(a, b) + residual
        self._estimates[(a, b)] = (estimate, now_ns)
        self._estimates[(b, a)] = (-estimate, now_ns)
        self.exchanges += 1
        return estimate

    def offset(self, a: int, b: int, now_ns: Optional[int] = None) -> int:
        """Last synced estimate, syncing first if never done.

        With ``resync_after_ns`` set and a caller-supplied ``now_ns``, an
        estimate older than the policy is refreshed before use.
        """
        found = self._estimates.get((a, b))
        if found is None:
            return self.sync(a, b, now_ns if now_ns is not None else 0)
        estimate, synced_at = found
        if (self.resync_after_ns is not None and now_ns is not None
                and now_ns - synced_at >= self.resync_after_ns):
            return self.sync(a, b, now_ns)
        return estimate

    def estimate_age_ns(self, a: int, b: int, now_ns: int) -> Optional[int]:
        """Age of the cached (a, b) estimate, or None if never synced."""
        found = self._estimates.get((a, b))
        if found is None:
            return None
        return now_ns - found[1]
