"""Sim-hygiene rules (XR3xx).

Processes inside the discrete-event simulator must cooperate with it:
blocking the host thread stalls every simulated host at once, yielding a
non-event crashes the process with a ``TypeError`` at resume time, and a
handler broad enough to catch :class:`~repro.sim.engine.SimulationError`
or :class:`~repro.analysis.invariants.InvariantError` turns a detected
corruption back into silence.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.lint.core import FileContext, Finding, Rule, register
from repro.analysis.lint.flow import functions_in, is_generator
from repro.analysis.lint.rules_resources import _iter_scope

#: host-blocking calls by resolved dotted name
_BLOCKING_EXACT = {
    "time.sleep", "os.system", "os.wait", "os.waitpid", "input",
    "socket.socket", "socket.create_connection", "select.select",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "http.client.")

#: event-factory methods whose presence marks a generator as a sim process
_EVENT_FACTORIES = {"timeout", "event", "any_of", "all_of", "get", "put"}

_BROAD_TYPES = {"Exception", "BaseException"}


@register
class BlockingCallRule(Rule):
    """No host-blocking calls — they freeze simulated time itself."""

    name = "blocking-call"
    code = "XR301"
    summary = ("time.sleep()/subprocess/socket call blocks the host "
               "thread; use sim.timeout / simulated I/O")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee, resolved = ctx.resolved_name(node.func)
            if callee is None:
                continue
            # Builtins (input) resolve without an import; module-dotted
            # patterns must come through one, or a local named `requests`
            # would match the HTTP library.
            if not resolved and callee != "input":
                continue
            if callee in _BLOCKING_EXACT \
                    or callee.startswith(_BLOCKING_PREFIXES):
                yield self.finding(
                    ctx, node,
                    f"{callee}() blocks the host thread, stalling every "
                    f"simulated host at once; processes advance time only "
                    f"via sim.timeout()/events")


def _yield_nodes(func: ast.AST) -> List[ast.Yield]:
    return [node for node in _iter_scope(func)
            if isinstance(node, ast.Yield)]


def _is_sim_process(func: ast.AST) -> bool:
    """A generator yielding at least one event-factory call result."""
    for node in _iter_scope(func):
        value = None
        if isinstance(node, ast.Yield):
            value = node.value
        elif isinstance(node, ast.YieldFrom):
            continue
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _EVENT_FACTORIES:
            return True
    return False


@register
class NonEventYieldRule(Rule):
    """Sim processes must yield Event instances, never bare constants.

    ``yield`` / ``yield 5`` inside a process resumes through
    :meth:`~repro.sim.process.Process._resume`, which kills the process
    with ``TypeError: processes must yield Event instances`` — but only at
    runtime, on the path that reaches it.  Flagged statically instead.
    Pure data generators (every yield a constant) are left alone.
    """

    name = "non-event-yield"
    code = "XR302"
    summary = ("bare/constant yield inside a sim-process generator "
               "(processes must yield Events)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_sim_process(node):
                continue
            for yield_node in _yield_nodes(node):
                value = yield_node.value
                if value is None or isinstance(value, ast.Constant):
                    shown = ("bare yield" if value is None
                             else f"yield {value.value!r}")
                    yield self.finding(
                        ctx, yield_node,
                        f"{shown} in sim process {node.name!r}: the engine "
                        f"rejects non-Event yields with a TypeError at "
                        f"resume time; yield sim.timeout(...)/an Event")


@register
class GeneratorAnnotatedNoneRule(Rule):
    """A generator must not be annotated ``-> None``.

    Calling a generator function returns a generator object, always — an
    annotation of ``-> None`` is a lie the sim makes expensive: readers
    (and the ``yield from`` call sites the annotation documents) see a
    plain method, so a refactor that "simplifies" a call to
    ``self._finish_rendezvous(seq)`` without the ``yield from`` silently
    drops every event the body would have scheduled.  The pre-PR-10
    ``_finish_rendezvous`` carried exactly this annotation.  mypy strict
    catches the class too, but mypy does not run over this tree in CI —
    this rule pins the convention: annotate sim processes with
    ``ProcessGenerator`` (or a ``Generator``/``Iterator`` type).
    """

    name = "generator-annotated-none"
    code = "XR304"
    summary = ("generator function annotated `-> None` (calling it "
               "returns a generator; the annotation hides the required "
               "`yield from`)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_in(tree):
            if not isinstance(func, ast.FunctionDef):
                continue        # async generators annotate differently
            returns = func.returns
            if returns is None or not is_generator(func):
                continue
            if isinstance(returns, ast.Constant) and returns.value is None:
                yield self.finding(
                    ctx, returns,
                    f"{func.name!r} is a generator (it yields) but is "
                    f"annotated `-> None`: calling it returns a generator "
                    f"object, and the annotation invites call sites to "
                    f"drop the required `yield from`; annotate it "
                    f"ProcessGenerator")


def _broad_names(ctx: FileContext, type_node: ast.AST) -> Set[str]:
    """Which of Exception/BaseException an except clause catches."""
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    caught: Set[str] = set()
    for node in nodes:
        name = ctx.qualified_name(node)
        if name in _BROAD_TYPES:
            caught.add(name)
    return caught


@register
class SwallowedErrorRule(Rule):
    """No handler broad enough to eat SimulationError/InvariantError.

    A bare ``except:`` or an ``except Exception:`` that never re-raises
    also catches the simulator's own failure signals — a detected
    invariant violation or deadlock silently becomes "the probe failed".
    Catch the specific errors the code actually expects
    (``ChannelBroken``, ``ConnectError``, ``OutOfMemory``, ...), or
    re-raise.
    """

    name = "swallowed-error"
    code = "XR303"
    summary = ("bare except / except Exception without re-raise swallows "
               "SimulationError and InvariantError")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare except: catches everything, including "
                    "SimulationError and InvariantError; name the "
                    "exceptions this site expects")
                continue
            caught = _broad_names(ctx, node.type)
            if not caught:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue        # inspects/logs, then re-raises: fine
            shown = "/".join(sorted(caught))
            yield self.finding(
                ctx, node,
                f"except {shown}: without re-raise swallows "
                f"SimulationError and InvariantError along with the "
                f"error it meant to handle; catch the specific "
                f"exceptions instead")
