"""Finding renderers: terminal text, machine-readable JSON, and GitHub
workflow annotations."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, List, Sequence

from repro.analysis.lint.core import Finding


def render_text(findings: Sequence[Finding],
                errors: Iterable[str] = ()) -> str:
    """flake8-style one-line-per-finding report with a summary footer."""
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.code}[{finding.rule}] {finding.message}")
    for error in errors:
        lines.append(f"ERROR {error}")
    if findings:
        by_rule = Counter(f"{f.code}[{f.rule}]" for f in findings)
        breakdown = ", ".join(f"{name}×{count}"
                              for name, count in sorted(by_rule.items()))
        lines.append(f"xr-lint: {len(findings)} finding(s) — {breakdown}")
    else:
        lines.append("xr-lint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                errors: Iterable[str] = ()) -> str:
    """Stable JSON for CI annotation tooling."""
    payload = {
        "findings": [
            {
                "rule": finding.rule,
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in findings
        ],
        "errors": list(errors),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _gh_escape(text: str, in_property: bool = False) -> str:
    """Escape data for GitHub workflow commands (their own %-encoding)."""
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if in_property:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


def render_gh(findings: Sequence[Finding],
              errors: Iterable[str] = ()) -> str:
    """GitHub Actions annotations: one ``::error`` workflow command per
    finding, so findings surface inline on the PR diff."""
    lines: List[str] = []
    for finding in findings:
        title = _gh_escape(f"{finding.code}[{finding.rule}]",
                           in_property=True)
        lines.append(
            f"::error file={_gh_escape(finding.path, in_property=True)},"
            f"line={finding.line},col={finding.col + 1},title={title}"
            f"::{_gh_escape(finding.message)}")
    for error in errors:
        lines.append(f"::error title=xr-lint::{_gh_escape(error)}")
    if not lines:
        return "xr-lint: clean"
    return "\n".join(lines)
