"""Finding renderers: terminal text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, List, Sequence

from repro.analysis.lint.core import Finding


def render_text(findings: Sequence[Finding],
                errors: Iterable[str] = ()) -> str:
    """flake8-style one-line-per-finding report with a summary footer."""
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.code}[{finding.rule}] {finding.message}")
    for error in errors:
        lines.append(f"ERROR {error}")
    if findings:
        by_rule = Counter(f"{f.code}[{f.rule}]" for f in findings)
        breakdown = ", ".join(f"{name}×{count}"
                              for name, count in sorted(by_rule.items()))
        lines.append(f"xr-lint: {len(findings)} finding(s) — {breakdown}")
    else:
        lines.append("xr-lint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                errors: Iterable[str] = ()) -> str:
    """Stable JSON for CI annotation tooling."""
    payload = {
        "findings": [
            {
                "rule": finding.rule,
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in findings
        ],
        "errors": list(errors),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
