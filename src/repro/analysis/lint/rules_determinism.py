"""Determinism rules (XR1xx).

The simulator's bit-reproducibility contract: the only time source is
``sim.now``, the only randomness is a seeded
:class:`~repro.sim.rng.RngStream`, and nothing observable may depend on
CPython object identity (``id()``/``hash()`` values change between
interpreter runs, and iterating a set of them yields a different order
every run even when membership is identical).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.lint.core import (FileContext, Finding, Rule,
                                      contains_id_call, register,
                                      walk_functions)

#: wall-clock reads that leak host time into simulated behaviour
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: module-level stdlib RNG entry points (process-global hidden state)
_STDLIB_RANDOM = {
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.expovariate", "random.gauss", "random.normalvariate",
    "random.seed", "random.getrandbits", "random.betavariate",
    "random.paretovariate",
}

#: numpy global-state RNG entry points (same hazard, numpy flavour)
_NUMPY_RANDOM_PREFIX = "numpy.random."
_NUMPY_RANDOM_OK = {
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox",
}


@register
class WallClockRule(Rule):
    """No host wall-clock reads — simulated time comes from ``sim.now``."""

    name = "wall-clock"
    code = "XR101"
    summary = ("wall-clock read (time.time / datetime.now / ...) in "
               "sim-reachable code; use sim.now")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee, resolved = ctx.resolved_name(node.func)
            if resolved and callee in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"{callee}() reads the host wall clock; simulated "
                    f"components must use sim.now (ns)")


@register
class GlobalRandomRule(Rule):
    """No module-global RNG state — randomness must come from a seeded
    stream so two runs with one root seed are identical."""

    name = "global-random"
    code = "XR102"
    summary = ("module-level random.* / numpy.random.* call or unseeded "
               "default_rng(); use RngRegistry.stream(name)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee, resolved = ctx.resolved_name(node.func)
            if callee is None or not resolved:
                continue
            if callee in _STDLIB_RANDOM:
                yield self.finding(
                    ctx, node,
                    f"{callee}() draws from the process-global stdlib RNG; "
                    f"use a named RngStream from the cluster's RngRegistry")
            elif callee == "random.Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed is entropy-seeded; "
                    "pass an explicit seed or use RngRegistry")
            elif callee == "numpy.random.default_rng" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "numpy.random.default_rng() without a seed is "
                    "entropy-seeded; derive the seed from the root seed")
            elif callee.startswith(_NUMPY_RANDOM_PREFIX) \
                    and callee not in _NUMPY_RANDOM_OK:
                yield self.finding(
                    ctx, node,
                    f"{callee}() uses numpy's global RNG state; "
                    f"use a seeded Generator (RngStream)")


def _is_id_keyed_collection(node: ast.AST) -> bool:
    """A set/dict display or call whose elements/keys come from ``id()``."""
    if isinstance(node, ast.SetComp):
        return contains_id_call(node.elt)
    if isinstance(node, ast.DictComp):
        return contains_id_call(node.key)
    if isinstance(node, ast.Set):
        return any(contains_id_call(elt) for elt in node.elts)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset") and node.args:
        return contains_id_call(node.args[0])
    return False


#: consuming calls whose output order follows the argument's iteration order
_ORDER_SENSITIVE_CALLS = {"sorted", "list", "tuple", "min", "max"}


@register
class IdOrderRule(Rule):
    """No iteration over collections keyed by object identity.

    ``{id(x) for x in ...}`` is fine as a membership probe (the
    ``MemCache.shrink`` pattern) but iterating it — in a ``for``, a
    comprehension, or via ``sorted``/``list``/``min``/``max`` — makes
    behaviour depend on CPython address assignment, which differs between
    runs even under one root seed.
    """

    name = "id-order"
    code = "XR103"
    summary = ("iteration over an id()-keyed set/dict: order depends on "
               "object addresses, not the root seed")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for func in walk_functions(tree):
            yield from self._check_scope(ctx, func.body)
        yield from self._check_scope(
            ctx, [n for n in tree.body
                  if not isinstance(n, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))])

    def _check_scope(self, ctx: FileContext,
                     body: List[ast.stmt]) -> Iterator[Finding]:
        tainted: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) \
                        and _is_id_keyed_collection(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
                yield from self._check_iteration(ctx, node, tainted)

    def _iter_message(self, how: str) -> str:
        return (f"{how} an id()-keyed collection: identity values are "
                f"fresh every interpreter run, so this order is "
                f"non-deterministic; key by a stable field "
                f"(buffer_id, qpn, channel_id) instead")

    def _check_iteration(self, ctx: FileContext, node: ast.AST,
                         tainted: Set[str]) -> Iterator[Finding]:
        def is_tainted(expr: ast.AST) -> bool:
            return _is_id_keyed_collection(expr) or (
                isinstance(expr, ast.Name) and expr.id in tainted)

        if isinstance(node, ast.For) and is_tainted(node.iter):
            yield self.finding(ctx, node.iter,
                               self._iter_message("for-loop over"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if is_tainted(gen.iter):
                    yield self.finding(ctx, gen.iter,
                                       self._iter_message("comprehension over"))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SENSITIVE_CALLS \
                and node.args and is_tainted(node.args[0]):
            yield self.finding(
                ctx, node, self._iter_message(f"{node.func.id}() over"))


def _key_is_identity(keyword: ast.keyword) -> bool:
    """``key=id`` / ``key=hash`` / ``key=lambda x: id(x)`` and friends."""
    value = keyword.value
    if isinstance(value, ast.Name) and value.id in ("id", "hash"):
        return True
    if isinstance(value, ast.Lambda):
        body = value.body
        return (isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id in ("id", "hash"))
    return False


@register
class HashOrderRule(Rule):
    """No ordering by ``hash()`` or ``id()`` of objects."""

    name = "hash-order"
    code = "XR104"
    summary = "sorted()/sort()/min()/max() keyed by hash() or id()"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            is_sorted_like = (
                isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "min", "max"))
            is_sort_method = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort")
            if not (is_sorted_like or is_sort_method):
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and _key_is_identity(keyword):
                    yield self.finding(
                        ctx, node,
                        "ordering by object identity/hash changes between "
                        "interpreter runs; sort by a stable attribute")


@register
class ClassCounterRule(Rule):
    """No mutation of class-level counters from methods.

    ``XrPerf._sender_seq += 1`` style state survives across driver
    instances in one process, so the Nth run of a scenario sees different
    RNG stream names than the 1st — same root seed, different behaviour.
    Keep the counter per-instance (``self._sender_seq``) or derive names
    from seeded state.
    """

    name = "class-counter"
    code = "XR105"
    summary = ("class attribute mutated via ClassName.attr: hidden "
               "cross-run state breaks seed reproducibility")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_level: Set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            class_level.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    class_level.add(stmt.target.id)
            yield from self._check_mutations(ctx, node, class_level)

    def _check_mutations(self, ctx: FileContext, cls: ast.ClassDef,
                         class_level: Set[str]) -> Iterator[Finding]:
        for node in ast.walk(cls):
            if not isinstance(node, ast.AugAssign):
                continue
            target = node.target
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == cls.name \
                    and target.attr in class_level:
                yield self.finding(
                    ctx, node,
                    f"{cls.name}.{target.attr} is class-level state mutated "
                    f"at runtime; a second driver in the same process "
                    f"diverges from a fresh one under the same seed — make "
                    f"it per-instance")


#: per-file map, re-exported for the CLI --list-rules output ordering
FAMILY = "determinism"
RULES: Dict[str, str] = {
    cls.name: cls.summary
    for cls in (WallClockRule, GlobalRandomRule, IdOrderRule, HashOrderRule,
                ClassCounterRule)
}
