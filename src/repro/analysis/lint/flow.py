"""Generator-CFG primitives for the flow-sensitive XR4xx rules.

The model (documented in DESIGN.md §"Interprocedural analysis"): a
generator-based sim process is a CFG whose extra edge kind is the
**preemption edge** — every ``yield`` and every ``yield from`` whose
delegate may itself yield is a point where the whole rest of the
simulation runs before the next statement.  Any state read before a
preemption edge is *stale* after it; any resource held across one can be
orphaned by the exception the resumed yield re-raises.

Rules do not build explicit basic blocks.  They walk statement lists in
source order (which inside one block *is* execution order) with three
shared vocabularies defined here:

* ``attr_paths_read`` — the dotted object paths a condition depends on
  (``len(self._pool) >= self.capacity`` reads ``self._pool`` and
  ``self.capacity``).  Bare locals are excluded on purpose: no other
  process can mutate a local between yields, so a "stale" local is not a
  race.
* ``is_preemption`` / ``preemption_in`` — the yield-as-preemption-edge
  test, call-graph-refined for ``yield from``.
* mutation detection — writes and growth-method calls against a path.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.lint.callgraph import CallGraph, last_component

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_BARRIERS = _FUNC_DEFS + (ast.ClassDef, ast.Lambda)

#: method names that mutate their receiver in place (growth and shrink —
#: either invalidates a guard computed before a preemption edge)
MUTATOR_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "push",
    "pop", "popleft", "remove", "discard", "clear", "update",
    "setdefault", "put_nowait",
}


def attr_path(node: ast.AST) -> Optional[str]:
    """Dotted path of a pure Name/Attribute chain: ``self._pool`` →
    ``"self._pool"``; anything else (calls, subscripts) → None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def attr_paths_read(expr: ast.AST) -> Set[str]:
    """Every dotted attribute path loaded anywhere in an expression.

    Only paths with at least one dot qualify — shared state lives behind
    an object, and bare locals cannot race (see module docstring).
    """
    paths: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            path = attr_path(node)
            if path is not None and "." in path:
                paths.add(path)
    return paths


def identifier_parts(expr: ast.AST) -> Set[str]:
    """Lower-cased underscore-split words of every identifier in ``expr``
    (``close_drain_timeout_ns`` contributes ``close``, ``drain``,
    ``timeout``, ``ns``) — the vocabulary XR403 classifies loop exit
    conditions with."""
    words: Set[str] = set()
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            words.update(part for part in name.lower().split("_") if part)
    return words


def normalize(expr: ast.AST) -> str:
    """Structural fingerprint of an expression (position-free)."""
    return ast.dump(expr)


def condition_fingerprints(test: ast.AST) -> Set[str]:
    """The whole test plus each comparison inside it, normalized.

    A re-check may restate only the load-bearing comparison of a compound
    guard (``a >= b`` out of ``a >= b or flag``), so both granularities
    participate in re-check matching.
    """
    prints = {normalize(test)}
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            prints.add(normalize(node))
    return prints


def is_preemption(node: ast.AST, graph: Optional[CallGraph]) -> bool:
    """Is this Yield/YieldFrom a preemption edge?

    Plain ``yield`` always is.  ``yield from <call>`` is unless the call
    graph proves every function of that name yield-free; without a graph
    the conservative answer is yes.
    """
    if isinstance(node, ast.Yield):
        return True
    if isinstance(node, ast.YieldFrom):
        if graph is None or not isinstance(node.value, ast.Call):
            return True
        return graph.may_preempt(last_component(node.value.func))
    return False


def iter_own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """All descendants without entering nested defs/classes/lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        yield sub
        if not isinstance(sub, _SCOPE_BARRIERS):
            stack.extend(ast.iter_child_nodes(sub))


def preemption_in(nodes: Iterable[ast.AST],
                  graph: Optional[CallGraph]) -> Optional[ast.AST]:
    """First preemption edge found under ``nodes`` (own scope), or None."""
    for node in nodes:
        for sub in iter_own_scope(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) \
                    and is_preemption(sub, graph):
                return sub
    return None


def is_generator(func: ast.AST) -> bool:
    """Does the function body contain a yield at its own scope?"""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in iter_own_scope(func))


def functions_in(tree: ast.Module) -> Iterator[ast.AST]:
    """Every (possibly nested) function definition in a module."""
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_DEFS):
            yield node


def is_terminal(body: Sequence[ast.stmt]) -> bool:
    """Does a block unconditionally leave the enclosing flow?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue))


def mutates_path(stmt: ast.stmt, paths: Set[str]) -> Optional[str]:
    """The guarded path a statement writes/grows, or None.

    Catches direct rebinding (``self.x = ...``, ``self.x += ...``),
    subscript stores (``self.x[k] = ...``), and in-place mutator calls
    (``self.x.append(...)``).
    """
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, (ast.Starred,)):
            target = target.value
        if isinstance(target, ast.Subscript):
            target = target.value
        path = attr_path(target)
        if path is not None and path in paths:
            return path
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            path = attr_path(func.value)
            if path is not None and path in paths:
                return path
    return None


def block_lists(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """The statement lists a compound statement owns, in execution order
    (Try: body, else, handlers, finally)."""
    if isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
        return [stmt.body, stmt.orelse]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [stmt.body]
    if isinstance(stmt, ast.Try):
        blocks = [stmt.body, stmt.orelse]
        blocks.extend(handler.body for handler in stmt.handlers)
        blocks.append(stmt.finalbody)
        return blocks
    return []


def iter_blocks(func: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list in a function, own scope only."""
    pending: List[List[ast.stmt]] = [func.body]
    while pending:
        block = pending.pop()
        yield block
        for stmt in block:
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            pending.extend(block_lists(stmt))
