"""Interprocedural yield-point race & resource-escape rules (XR4xx).

PR 6 fixed three production-shaped concurrency defects by hand — the
``QpCache.put``/``prewarm`` check-yield-append race, the QP leak on the
``ConnectError`` edge of ``XrdmaContext.connect``, and the unbounded
``close_channel`` drain loop.  All three share one root cause: a
generator-based sim process was written as if the world holds still
between its statements, but every yield point hands the scheduler to
*every other process* first.  These rules make that whole defect family
machine-checkable over the generator CFG (:mod:`.flow`) and the project
call graph (:mod:`.callgraph`):

* **XR401 stale-guard** — a capacity/length/state guard is read before a
  preemption edge and relied on after it without a re-check; the same
  rule also covers the *alloc-install* variant (the PR 10 channel
  rendezvous races), where the stale fact is the implicit "this channel
  is alive" established before an allocator yield.
* **XR402 exception-edge-leak** — a resource acquired from a cache/
  allocator can be orphaned when a later call raises a *handled*
  exception, because no except/finally on that edge releases it.
* **XR403 unbounded-yield-loop** — a wait loop yields forever with no
  deadline, lifecycle flag, or exit edge reachable in its condition.
* **XR404 yield-in-critical-section** — a preemption edge sits between a
  counter/budget mutation and the paired mutation that restores the
  invariant, so concurrent processes observe the broken intermediate
  state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.callgraph import CallGraph, last_component
from repro.analysis.lint.core import FileContext, Finding, Rule, register
from repro.analysis.lint.flow import (MUTATOR_METHODS, attr_path,
                                      attr_paths_read, block_lists,
                                      condition_fingerprints, functions_in,
                                      identifier_parts, is_generator,
                                      is_terminal, iter_own_scope,
                                      mutates_path, normalize, preemption_in)

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_BARRIERS = _FUNC_DEFS + (ast.ClassDef, ast.Lambda)
_LOOPS = (ast.While, ast.For, ast.AsyncFor)


# =========================================================== XR401
#: allocator methods whose yield opens the alloc-install race window —
#: deliberately narrower than XR402's acquire vocabulary: connect/
#: create_qp results are handed off, not installed into channel maps
_ALLOC_METHODS = {"alloc", "try_alloc"}


@dataclass
class _GuardState:
    guarded: Set[str]
    fingerprints: Set[str]
    graph: Optional[CallGraph]
    preempted: bool = False
    hit: Optional[Tuple[ast.stmt, str]] = None
    done: bool = False


@register
class StaleGuardRule(Rule):
    """A guard checked before a yield must be re-checked after it.

    The exact shape of the pre-PR-6 ``QpCache.put`` race: ``if
    len(self._pool) >= self.capacity`` guards an append, but a
    ``modify_qp`` yield sits in between, and a concurrent recycler can
    claim the last slot while this process is suspended.  A guard over
    shared object state (attribute paths — locals cannot race) is *stale*
    after any preemption edge; the mutation it protects must re-validate
    it first.

    The rule's second scan covers the *implicit* guard variant — the
    pre-PR-10 ``_start_rendezvous``/``_send_announce`` races: a buffer
    comes back from ``yield from memcache.alloc(...)`` and is installed
    into shared channel state (``self._rendezvous[seq] = ...``,
    ``msg.src_buffer = buffer``) with no lifecycle re-check in between.
    The guard here was never written down: the channel was READY when the
    generator was dispatched, but ``mark_broken`` can run during the
    alloc yield, sweep the maps, and the resumed install both leaks the
    buffer and resurrects state on a dead channel.  Clean exits: a
    lifecycle/state re-check with a terminal body before the install, a
    ``free(...)`` of the buffer, or returning it to the caller.
    """

    name = "stale-guard"
    code = "XR401"
    summary = ("guard read before a yield point and relied on after it "
               "without re-checking (QpCache.put/prewarm race shape), or "
               "an alloc-yield result installed into shared state with "
               "no lifecycle re-check (rendezvous alloc-race shape)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_in(tree):
            if not is_generator(func):
                continue
            yield from self._check_function(ctx, func)
            yield from self._check_alloc_installs(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        graph = ctx.callgraph
        blocks: List[List[ast.stmt]] = [func.body]
        while blocks:
            block = blocks.pop()
            for stmt in block:
                if isinstance(stmt, _SCOPE_BARRIERS):
                    continue
                blocks.extend(block_lists(stmt))
            for index, stmt in enumerate(block):
                guard = self._as_guard(stmt)
                if guard is None:
                    continue
                guarded, prints = guard
                state = _GuardState(guarded=guarded, fingerprints=prints,
                                    graph=graph)
                self._scan(block[index + 1:], state)
                if state.hit is not None:
                    mut, path = state.hit
                    yield self.finding(
                        ctx, mut,
                        f"{path!r} is mutated here relying on the guard at "
                        f"line {stmt.lineno}, but a yield point sits in "
                        f"between — another process may have changed "
                        f"{path!r} while this one was suspended; re-check "
                        f"the guard after the last yield (the "
                        f"QpCache.put/prewarm race shape)")

    # ------------------------------------------------- alloc-install scan
    def _check_alloc_installs(self, ctx: FileContext,
                              func: ast.AST) -> Iterator[Finding]:
        for chain, stmt in _assignments_with_chains(func):
            if not isinstance(stmt, ast.Assign) \
                    or not isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                continue
            call = _acquisition_call(stmt.value)
            if call is None or last_component(call.func) not in _ALLOC_METHODS:
                continue
            names: Set[str] = set()
            for target in stmt.targets:
                base = (target.value if isinstance(target, ast.Subscript)
                        else target)
                path = attr_path(base)
                if path is not None and "." in path:
                    # The install is fused into the acquire itself: the
                    # buffer lands in shared state before any statement
                    # could re-check the channel.
                    yield self._alloc_finding(ctx, stmt, stmt.lineno, path)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
            if not names:
                continue
            hit = self._scan_install(_tail_from_chain(chain), names)
            if isinstance(hit, tuple):
                site, path = hit
                yield self._alloc_finding(ctx, site, stmt.lineno, path)

    def _alloc_finding(self, ctx: FileContext, site: ast.stmt,
                       alloc_line: int, path: str) -> Finding:
        return self.finding(
            ctx, site,
            f"buffer from the alloc yield at line {alloc_line} is "
            f"installed into {path!r} with no lifecycle re-check after "
            f"the yield — mark_broken may have run and swept this state "
            f"while the process was suspended, so the install leaks the "
            f"buffer onto a dead channel; re-check the channel state "
            f"after the alloc, free the buffer, and bail (the rendezvous "
            f"alloc-race shape)")

    def _scan_install(self, stmts: Sequence[ast.stmt], names: Set[str]):
        """First decisive event after an alloc yield: an install site
        ``(stmt, path)``, the string ``"clean"``, or None (nothing
        decisive in this block)."""
        for stmt in stmts:
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            if isinstance(stmt, ast.Return):
                return "clean"      # escapes to the caller: XR402's domain
            if self._releases_any(stmt, names):
                return "clean"
            if isinstance(stmt, ast.If):
                if identifier_parts(stmt.test) & _ALLOC_GUARD_WORDS \
                        and is_terminal(stmt.body):
                    return "clean"  # the lifecycle re-check exists
                # Other branches only *find* installs; a return inside
                # (`if buffer is None: return`) ends that path, not the
                # fall-through this scan follows.
                for block in (stmt.body, stmt.orelse):
                    hit = self._scan_install(block, names)
                    if isinstance(hit, tuple):
                        return hit
                continue
            if isinstance(stmt, ast.Assign) \
                    and all(isinstance(t, ast.Name) for t in stmt.targets) \
                    and self._mentions_any(stmt.value, names):
                # `rendezvous = _Rendezvous(..., buffer=buffer)` makes the
                # wrapper a live handle on the allocation.
                names |= {t.id for t in stmt.targets
                          if isinstance(t, ast.Name)}
                continue
            path = self._install_path(stmt, names)
            if path is not None:
                return stmt, path
            for block in block_lists(stmt):
                hit = self._scan_install(block, names)
                if isinstance(hit, tuple):
                    return hit
        return None

    def _install_path(self, stmt: ast.stmt,
                      names: Set[str]) -> Optional[str]:
        """The dotted shared-state path a statement installs a tracked
        name into, or None.  Bare locals (``buffers.append(x)``) are not
        installs — nothing else can reach them."""
        if isinstance(stmt, ast.Assign) \
                and self._mentions_any(stmt.value, names):
            for target in stmt.targets:
                base = (target.value if isinstance(target, ast.Subscript)
                        else target)
                path = attr_path(base)
                if path is not None and "." in path:
                    return path
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute) \
                    and call.func.attr in MUTATOR_METHODS:
                path = attr_path(call.func.value)
                if path is not None and "." in path and any(
                        self._mentions_any(arg, names)
                        for arg in call.args):
                    return path
        return None

    def _releases_any(self, stmt: ast.stmt, names: Set[str]) -> bool:
        for sub in iter_own_scope(stmt):
            if isinstance(sub, ast.Call) \
                    and last_component(sub.func) in _RELEASE_CALLS:
                for arg in list(sub.args) \
                        + [kw.value for kw in sub.keywords]:
                    if self._mentions_any(arg, names):
                        return True
        return False

    @staticmethod
    def _mentions_any(node: ast.AST, names: Set[str]) -> bool:
        return any(isinstance(sub, ast.Name) and sub.id in names
                   for sub in ast.walk(node))

    @staticmethod
    def _as_guard(stmt: ast.stmt) -> Optional[Tuple[Set[str], Set[str]]]:
        """An early-exit ``if`` over shared state: its guarded paths and
        condition fingerprints, or None."""
        if not isinstance(stmt, ast.If) or stmt.orelse:
            return None
        if not is_terminal(stmt.body):
            return None
        guarded = attr_paths_read(stmt.test)
        if not guarded:
            return None
        return guarded, condition_fingerprints(stmt.test)

    def _scan(self, stmts: Sequence[ast.stmt], state: _GuardState) -> None:
        for stmt in stmts:
            if state.done:
                return
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            path = mutates_path(stmt, state.guarded)
            if path is not None:
                # The first mutation that relies on the guard decides.
                if state.preempted:
                    state.hit = (stmt, path)
                state.done = True
                return
            if isinstance(stmt, ast.If):
                self._scan(stmt.body, state)
                self._scan(stmt.orelse, state)
                if state.done:
                    return
                if condition_fingerprints(stmt.test) & state.fingerprints \
                        and (is_terminal(stmt.body)
                             or preemption_in(stmt.body, state.graph)
                             is None):
                    # Falling past an equivalent early-exit check means the
                    # condition was freshly evaluated: the guard is live
                    # again until the next preemption edge.
                    state.preempted = False
            elif isinstance(stmt, _LOOPS):
                self._scan(stmt.body, state)
                self._scan(stmt.orelse, state)
                if not state.done and isinstance(stmt, ast.While) \
                        and condition_fingerprints(stmt.test) \
                        & state.fingerprints:
                    # Leaving `while <guard>:` re-evaluated the condition.
                    state.preempted = False
            elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
                for block in block_lists(stmt):
                    self._scan(block, state)
            else:
                if preemption_in([stmt], state.graph) is not None:
                    state.preempted = True


# =========================================================== XR402
#: acquisition vocabulary: allocation-like methods, plus `.get()` on a
#: receiver that names a cache/pool (the QP-cache fast path)
_ACQUIRE_METHODS = {"alloc", "try_alloc", "reg_mem", "create_qp", "connect"}
_CACHE_RECEIVER_WORDS = ("cache", "pool")
#: release vocabulary, shared with the XR2xx pairing rules
_RELEASE_CALLS = {"free", "dereg_mem", "release", "close_channel",
                  "destroy_qp", "disconnect", "put", "recycle"}
_RELEASE_RECEIVER_METHODS = {"close", "disconnect", "destroy", "free",
                             "release", "put"}


def _acquisition_call(value: ast.AST) -> Optional[ast.Call]:
    node = value
    if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
        node = node.value
    if isinstance(node, ast.Await):
        node = node.value
    return node if isinstance(node, ast.Call) else None


def _is_acquire(call: ast.Call) -> bool:
    name = last_component(call.func)
    if name in _ACQUIRE_METHODS:
        return True
    if name == "get" and isinstance(call.func, ast.Attribute):
        receiver = last_component(call.func.value)
        return receiver is not None and any(
            word in receiver.lower() for word in _CACHE_RECEIVER_WORDS)
    return False


def _contains_release(nodes: Sequence[ast.stmt]) -> bool:
    """Does a handler/finally block call anything release-shaped?"""
    for stmt in nodes:
        for sub in iter_own_scope(stmt):
            if not isinstance(sub, ast.Call):
                continue
            name = last_component(sub.func)
            if name in _RELEASE_CALLS or name in _RELEASE_RECEIVER_METHODS:
                return True
    return False


def _protection_map(func: ast.AST) -> Dict[int, bool]:
    """id(stmt) → is the statement under a try whose except/finally
    releases resources (so its exception edge is compensated)."""
    protected: Dict[int, bool] = {}

    def walk(stmts: Sequence[ast.stmt], shielded: bool) -> None:
        for stmt in stmts:
            protected[id(stmt)] = shielded
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            if isinstance(stmt, ast.Try):
                releasing = (_contains_release(stmt.finalbody)
                             or any(_contains_release(h.body)
                                    for h in stmt.handlers))
                walk(stmt.body, shielded or releasing)
                walk(stmt.orelse, shielded or releasing)
                for handler in stmt.handlers:
                    walk(handler.body, shielded)
                walk(stmt.finalbody, shielded)
            else:
                for block in block_lists(stmt):
                    walk(block, shielded)

    walk(func.body, False)
    return protected


@dataclass
class _EscapeState:
    names: Set[str]
    graph: CallGraph
    protected: Dict[int, bool]
    acquired_via: str
    acquire_line: int
    outcome: Optional[Tuple[str, ast.stmt, str]] = None  # (kind, stmt, text)
    tested_depth: int = 0   #: inside an `if` whose test reads the resource


@register
class ExceptionEdgeLeakRule(Rule):
    """Acquired resources must survive every *handled* exception edge.

    The interprocedural upgrade of the XR2xx escape analysis, built for
    the pre-PR-6 ``XrdmaContext.connect`` leak: a recycled QP was handed
    to ``cm.connect``, which raises ``ConnectError`` on timeout — an
    exception the project demonstrably catches — so every failed connect
    orphaned a QP.  The rule follows acquire→release pairing through
    ``yield from`` delegation (call-graph-resolved), ``try/except/
    finally`` compensation, and early-return/raise edges.  Exception
    classes nobody specifically catches are fatal by project convention
    and do not create edges.
    """

    name = "exception-edge-leak"
    code = "XR402"
    summary = ("acquired resource orphaned when a later call raises a "
               "handled exception (ConnectError QP-leak shape)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        graph = ctx.callgraph
        if graph is None:       # pragma: no cover — runner always sets it
            return
        for func in functions_in(tree):
            yield from self._check_function(ctx, func, graph)

    def _check_function(self, ctx: FileContext, func: ast.AST,
                        graph: CallGraph) -> Iterator[Finding]:
        protected = _protection_map(func)
        for chain, stmt in _assignments_with_chains(func):
            if not isinstance(stmt, ast.Assign):
                continue
            call = _acquisition_call(stmt.value)
            if call is None or not _is_acquire(call):
                continue
            names = {t.id for t in stmt.targets if isinstance(t, ast.Name)}
            if not names:
                continue
            via = last_component(call.func) or "?"
            state = _EscapeState(names=names, graph=graph,
                                 protected=protected, acquired_via=via,
                                 acquire_line=stmt.lineno)
            self._scan(_tail_from_chain(chain), state)
            if state.outcome is not None and state.outcome[0] == "flag":
                _, site, text = state.outcome
                name = sorted(names)[0]
                yield self.finding(
                    ctx, site,
                    f"{name!r} acquired via {via}() at line "
                    f"{stmt.lineno} {text} — the exception edge leaves "
                    f"this function with the resource unreleased; release "
                    f"it in an except/finally handler on that edge, or "
                    f"attach it to the raised exception (the ConnectError "
                    f"QP-leak shape)")

    # ------------------------------------------------------------- scanning
    def _scan(self, stmts: Sequence[ast.stmt], state: _EscapeState) -> None:
        for stmt in stmts:
            if state.outcome is not None:
                return
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            if isinstance(stmt, ast.If):
                tests_resource = any(
                    isinstance(sub, ast.Name) and sub.id in state.names
                    for sub in ast.walk(stmt.test))
                if tests_resource:
                    state.tested_depth += 1
                self._scan(stmt.body, state)
                self._scan(stmt.orelse, state)
                if tests_resource:
                    state.tested_depth -= 1
                continue
            if isinstance(stmt, (ast.Try, ast.With, ast.AsyncWith)) \
                    or isinstance(stmt, _LOOPS):
                self._classify(stmt, state, header_only=True)
                if state.outcome is not None:
                    return
                for block in block_lists(stmt):
                    self._scan(block, state)
                continue
            self._classify(stmt, state, header_only=False)

    def _classify(self, stmt: ast.stmt, state: _EscapeState,
                  header_only: bool) -> None:
        """Decide what one simple statement (or a compound header) does to
        the tracked resource.  Priority: alias < release < raise <
        flagged call < handoff/escape < early return."""
        nodes = (self._header_nodes(stmt) if header_only
                 else list(iter_own_scope(stmt)) + [stmt])
        # 1. alias/component tracking: `qp2 = qp` extends the name set, and
        # `addr = allocation.addr` makes the local a live derived handle
        # (later handing `addr` to a callee transfers the resource with it)
        if not header_only and isinstance(stmt, ast.Assign) \
                and all(isinstance(t, ast.Name) for t in stmt.targets):
            value = stmt.value
            is_alias = isinstance(value, ast.Name) \
                and value.id in state.names
            is_component = any(
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in state.names
                for sub in ast.walk(value))
            if is_alias or is_component:
                for target in stmt.targets:
                    state.names.add(target.id)
                return
        calls = [n for n in nodes if isinstance(n, ast.Call)]
        # 2. release: the resource reaches the release vocabulary
        for call in calls:
            if self._releases(call, state):
                state.outcome = ("clean", stmt, "released")
                return
        # 3. raise edges: escape via the exception, or a dropping raise
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            if self._mentions(stmt, state):
                state.outcome = ("clean", stmt, "escapes via exception")
                return
            raised = last_component(
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc)
            if raised in state.graph.caught_exceptions \
                    and not state.protected.get(id(stmt), False):
                state.outcome = (
                    "flag", stmt,
                    f"is dropped when {raised} is raised here")
            return
        # 4. a call that may raise a handled exception, unprotected
        if not state.protected.get(id(stmt), False):
            for call in calls:
                callee = last_component(call.func)
                if state.graph.may_raise_handled(callee):
                    state.outcome = (
                        "flag", stmt,
                        f"can be orphaned when {callee}() raises here")
                    return
        # 5. handoff / escape: stored, returned, yielded, or passed on
        if self._escapes(stmt, calls, state):
            state.outcome = ("clean", stmt, "escapes")
            return
        # 6. early return that drops a live resource
        if isinstance(stmt, ast.Return) and not header_only \
                and state.tested_depth == 0:
            state.outcome = (
                "flag", stmt,
                "is dropped by this early return")

    @staticmethod
    def _header_nodes(stmt: ast.stmt) -> List[ast.AST]:
        """Expression nodes of a compound statement's header (loop test,
        with items) — its blocks are scanned separately."""
        headers: List[ast.AST] = []
        if isinstance(stmt, ast.While):
            headers.append(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            headers.append(stmt.iter)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            headers.extend(item.context_expr for item in stmt.items)
        nodes: List[ast.AST] = []
        for header in headers:
            nodes.extend(ast.walk(header))
        return nodes

    @staticmethod
    def _mentions(node: ast.AST, state: _EscapeState) -> bool:
        return any(isinstance(sub, ast.Name) and sub.id in state.names
                   for sub in ast.walk(node))

    def _releases(self, call: ast.Call, state: _EscapeState) -> bool:
        name = last_component(call.func)
        if name in _RELEASE_CALLS:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if self._mentions(arg, state):
                    return True
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _RELEASE_RECEIVER_METHODS \
                and isinstance(call.func.value, ast.Name) \
                and call.func.value.id in state.names:
            return True
        return False

    def _escapes(self, stmt: ast.stmt, calls: Sequence[ast.Call],
                 state: _EscapeState) -> bool:
        # passed (bare) to any callable: the callee is assumed to own it
        for call in calls:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Name) and arg.id in state.names:
                    return True
        # returned / yielded to the caller
        if isinstance(stmt, ast.Return) and stmt.value is not None \
                and self._mentions(stmt.value, state):
            return True
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)) \
                and stmt.value.value is not None \
                and self._mentions(stmt.value.value, state):
            return True
        # stored into an attribute, subscript, or container
        if isinstance(stmt, ast.Assign) and self._mentions(stmt.value, state):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript,
                                       ast.Tuple, ast.List)):
                    return True
        return False


def _assignments_with_chains(func: ast.AST):
    """Every statement in a function paired with its block chain:
    ``[(block, index), ...]`` innermost-last."""
    results: List[Tuple[List[Tuple[List[ast.stmt], int, ast.stmt]],
                        ast.stmt]] = []

    def walk(block: List[ast.stmt],
             chain: List[Tuple[List[ast.stmt], int, ast.stmt]]) -> None:
        for index, stmt in enumerate(block):
            here = chain + [(block, index, stmt)]
            results.append((here, stmt))
            if isinstance(stmt, _SCOPE_BARRIERS):
                continue
            for sub in block_lists(stmt):
                walk(sub, here)

    walk(func.body, [])
    return results


def _tail_from_chain(
        chain: List[Tuple[List[ast.stmt], int, ast.stmt]]
) -> List[ast.stmt]:
    """Statements executing after the chain's innermost statement, in
    order: the rest of its block, then (walking outward) try else/finally
    blocks and the rest of each enclosing block.  Loop back-edges are
    ignored — each iteration must settle its own acquisitions."""
    tail: List[ast.stmt] = []
    for depth in range(len(chain) - 1, -1, -1):
        block, index, stmt = chain[depth]
        tail.extend(block[index + 1:])
        if depth > 0:
            owner = chain[depth - 1][2]
            if isinstance(owner, ast.Try) and block is owner.body:
                tail.extend(owner.orelse)
                tail.extend(owner.finalbody)
    return tail


# =========================================================== XR403
#: words that make a wait-loop's exit condition *bounded*
_DEADLINE_WORDS = {
    "deadline", "timeout", "budget", "limit", "remaining", "retries",
    "retry", "attempt", "attempts", "expires", "expiry", "now", "left",
    "max", "until", "end",
}
#: words that mark an intentionally externally-terminated lifecycle loop —
#: ``ready`` included: ``while channel.state is ChannelState.READY`` waits
#: are exited by the keepalive/on_broken machinery flipping the state
_LIFECYCLE_WORDS = {
    "stop", "stopped", "stopping", "running", "run", "shutdown", "done",
    "closed", "closing", "alive", "started", "active", "draining", "halt",
    "quit", "exit", "ready",
}
#: what XR401's alloc-install scan accepts as a post-alloc lifecycle
#: re-check: the lifecycle vocabulary plus the state-comparison words
#: (`channel.state is not ChannelState.READY`, `self.broken`)
_ALLOC_GUARD_WORDS = _LIFECYCLE_WORDS | {"state", "broken"}


@register
class UnboundedYieldLoopRule(Rule):
    """A wait loop that yields must be able to give up.

    The pre-PR-6 ``close_channel`` drain shape: ``while qp.sq or
    qp.outstanding: yield sim.timeout(...)`` spins forever against a
    wedged QP.  A ``while`` whose body yields is flagged when nothing
    bounds it: no ``break``/``return``/``raise`` exit edge in the body,
    no deadline/budget vocabulary and no lifecycle flag in the
    condition, and no statement in the body that could advance the
    condition itself.
    """

    name = "unbounded-yield-loop"
    code = "XR403"
    summary = ("while-loop yields with no deadline, exit edge, or "
               "progress toward its condition (close-drain shape)")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_in(tree):
            for node in iter_own_scope(func):
                if isinstance(node, ast.While):
                    finding = self._check_loop(ctx, node)
                    if finding is not None:
                        yield finding

    def _check_loop(self, ctx: FileContext,
                    loop: ast.While) -> Optional[Finding]:
        if isinstance(loop.test, ast.Constant):
            return None         # `while True:` — an intentional process loop
        if preemption_in(loop.body, ctx.callgraph) is None:
            return None         # no yield: host-side loop, not our concern
        if self._has_exit_edge(loop):
            return None
        words = identifier_parts(loop.test)
        if words & _DEADLINE_WORDS or words & _LIFECYCLE_WORDS:
            return None
        if self._makes_progress(loop):
            return None
        return self.finding(
            ctx, loop,
            "this loop yields until its condition changes, but nothing "
            "bounds it: no deadline or iteration budget in the exit "
            "condition, no break/raise escape, and the body never "
            "touches the state it waits on — a wedged peer wedges this "
            "process forever (the close-drain shape); bound it with a "
            "deadline and escalate on expiry")

    @staticmethod
    def _has_exit_edge(loop: ast.While) -> bool:
        def scan(stmts: Sequence[ast.stmt], own_loop: bool) -> bool:
            for stmt in stmts:
                if isinstance(stmt, _SCOPE_BARRIERS):
                    continue
                if isinstance(stmt, (ast.Return, ast.Raise)):
                    return True
                if own_loop and isinstance(stmt, ast.Break):
                    return True
                nested_loop = isinstance(stmt, _LOOPS)
                for block in block_lists(stmt):
                    if scan(block, own_loop and not nested_loop):
                        return True
            return False

        return scan(loop.body, True)

    @staticmethod
    def _makes_progress(loop: ast.While) -> bool:
        """Could the body advance the loop condition on its own?"""
        reads = attr_paths_read(loop.test)
        reads |= {node.id for node in ast.walk(loop.test)
                  if isinstance(node, ast.Name)}

        def related(path: Optional[str]) -> bool:
            if path is None:
                return False
            for read in reads:
                if path == read or read.startswith(path + ".") \
                        or path.startswith(read + "."):
                    return True
            return False

        for stmt in loop.body:
            for sub in iter_own_scope(stmt):
                if isinstance(sub, (ast.Assign, ast.AugAssign,
                                    ast.AnnAssign)):
                    targets = (sub.targets if isinstance(sub, ast.Assign)
                               else [sub.target])
                    for target in targets:
                        if isinstance(target, ast.Subscript):
                            target = target.value
                        if related(attr_path(target)):
                            return True
                elif isinstance(sub, ast.Delete):
                    return True
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if isinstance(func, ast.Attribute) \
                            and related(attr_path(func.value)):
                        return True     # method call on the waited state
                    for arg in list(sub.args) \
                            + [kw.value for kw in sub.keywords]:
                        if related(attr_path(arg)):
                            return True  # waited state handed to a callee
        return False


# =========================================================== XR404
@register
class YieldInCriticalSectionRule(Rule):
    """No preemption edge between paired invariant mutations.

    ``self.resident_pages += n`` … yield … ``self.free_pages -= n`` is a
    transfer: between the two halves the conservation invariant is
    broken, and the yield schedules every other process — including
    invariant checkers and capacity guards — against the broken state.
    Same-attribute charge/release pairs (``x += n`` … yield … ``x -= n``)
    are the *intended* in-flight accounting idiom and are exempt; the
    reversed order (un-charge, yield, re-charge) and cross-attribute
    transfers are flagged.
    """

    name = "yield-in-critical-section"
    code = "XR404"
    summary = ("yield point between a counter/budget mutation and its "
               "paired invariant-restoring mutation")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for func in functions_in(tree):
            if not is_generator(func):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        events = self._linearize(func, ctx.callgraph)
        muts = [(i, ev) for i, ev in enumerate(events) if ev[1] == "mut"]
        for a, (i, first) in enumerate(muts):
            for j, second in muts[a + 1:]:
                hit = self._pair_hit(events, i, j, first, second)
                if hit is not None:
                    key_y, first_stmt, second_stmt, p1, p2 = hit
                    yield self.finding(
                        ctx, key_y,
                        f"yield point between paired mutations of {p1!r} "
                        f"(line {first_stmt.lineno}) and {p2!r} (line "
                        f"{second_stmt.lineno}): every other process runs "
                        f"here and observes the broken invariant; keep "
                        f"both halves on the same side of the yield, or "
                        f"re-derive the state after resuming")
                    break

    def _pair_hit(self, events, i, j, first, second):
        _, _, stmt1, key1, path1, sign1, value1 = first
        _, _, stmt2, key2, path2, sign2, value2 = second
        if sign1 == sign2 or value1 != value2:
            return None
        if not _branches_compatible(key1, key2):
            return None
        if path1 == path2:
            if not (sign1 < 0 < sign2):
                return None     # x += n … x -= n: in-flight idiom, exempt
        elif path1.split(".")[0] != path2.split(".")[0]:
            return None         # unrelated roots: not one object's invariant
        for k in range(i + 1, j):
            index, kind, node, key, *_rest = events[k]
            if kind == "yield" and _branches_compatible(key, key1) \
                    and _branches_compatible(key, key2):
                return node, stmt1, stmt2, path1, path2
        return None

    @staticmethod
    def _linearize(func: ast.AST, graph: Optional[CallGraph]):
        """(index, kind, node, branch_key, path, sign, value_print) events
        in source order; branch keys make exclusive `if` arms and except
        handlers incomparable."""
        events: List[Tuple] = []

        def emit(kind, node, key, path="", sign=0, vprint=""):
            events.append((len(events), kind, node, key, path, sign, vprint))

        def walk(stmts: Sequence[ast.stmt], key: Tuple) -> None:
            for stmt in stmts:
                if isinstance(stmt, _SCOPE_BARRIERS):
                    continue
                if isinstance(stmt, ast.AugAssign) \
                        and isinstance(stmt.op, (ast.Add, ast.Sub)):
                    path = attr_path(stmt.target)
                    if path is not None and "." in path:
                        sign = 1 if isinstance(stmt.op, ast.Add) else -1
                        emit("mut", stmt, key, path, sign,
                             normalize(stmt.value))
                        continue
                if isinstance(stmt, ast.If):
                    walk(stmt.body, key + ((id(stmt), 0),))
                    walk(stmt.orelse, key + ((id(stmt), 1),))
                    continue
                if isinstance(stmt, ast.Try):
                    walk(stmt.body, key)
                    walk(stmt.orelse, key)
                    for n, handler in enumerate(stmt.handlers):
                        walk(handler.body, key + ((id(stmt), 2 + n),))
                    walk(stmt.finalbody, key)
                    continue
                if isinstance(stmt, _LOOPS + (ast.With, ast.AsyncWith)):
                    if preemption_in([stmt.iter] if isinstance(
                            stmt, (ast.For, ast.AsyncFor)) else [], graph):
                        emit("yield", stmt, key)
                    for block in block_lists(stmt):
                        walk(block, key)
                    continue
                node = preemption_in([stmt], graph)
                if node is not None:
                    emit("yield", node, key)

        walk(func.body, ())
        return events


def _branches_compatible(key1: Tuple, key2: Tuple) -> bool:
    """Two events can lie on one execution path iff they never take
    different arms of the same branch point."""
    arms: Dict[int, int] = dict(key1)
    return all(arms.get(branch, arm) == arm for branch, arm in key2)
