"""xr-lint: project-specific static analysis (the compile-time sanitizer).

The runtime invariant registry (:mod:`repro.analysis.invariants`) catches
protocol corruption while a scenario runs; this package catches the code
patterns that *cause* it before anything runs.  The entire repro band rests
on the discrete-event simulator being bit-reproducible — seeded
:class:`~repro.sim.rng.RngStream` draws and the heap's ``(time, priority,
sequence)`` tie-break — and on paired resource lifecycles (every
``MemCache.alloc`` freed, every QP destroyed or recycled).  Neither
property is enforced by Python itself, so xr-lint enforces them over the
AST.

Four rule families (plus the XR001 suppression audit):

* **determinism** — no wall-clock reads, no module-global RNG state, no
  iteration ordered by object identity or ``hash()``.
* **resource pairing** — flow-sensitive intra-function escape analysis
  over ``alloc``/``free`` and ``connect``/``close_channel`` pairs.
* **sim hygiene** — no blocking calls inside processes, every process
  yields real simulator events, no handler broad enough to swallow
  :class:`~repro.sim.engine.SimulationError`.
* **flow/interprocedural (XR4xx)** — yield-point races over the
  generator CFG and project call graph (:mod:`.flow`,
  :mod:`.callgraph`): stale guards across yields, resource escapes on
  handled-exception edges, unbounded yield loops, yields inside
  invariant-critical sections.

Suppress a finding with a trailing ``# xr-lint: disable=<rule>[,<rule>]``
comment on the offending line, or ``# xr-lint: disable-file=<rule>`` on a
line of its own for whole-file scope.  CLI: ``python -m
repro.tools.xr_lint``.
"""

from repro.analysis.lint.callgraph import CallGraph
from repro.analysis.lint.core import (Finding, LintRunner, Rule,
                                      all_rules, get_rule, register)
from repro.analysis.lint.reporter import render_gh, render_json, render_text

# Importing the rule modules populates the registry.
from repro.analysis.lint import rules_determinism  # noqa: F401,E402
from repro.analysis.lint import rules_resources    # noqa: F401,E402
from repro.analysis.lint import rules_sim          # noqa: F401,E402
from repro.analysis.lint import rules_flow         # noqa: F401,E402

__all__ = [
    "CallGraph", "Finding", "LintRunner", "Rule", "all_rules", "get_rule",
    "register", "render_gh", "render_json", "render_text",
]
