"""The xr-lint engine: rule registry, suppressions, file walking.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects.  The :class:`LintRunner` parses each file once, hands the same
tree to every enabled rule, and drops findings suppressed by
``# xr-lint: disable=...`` comments.  Rules never import the modules they
check — analysis is purely syntactic, so the linter can run over broken
or import-cycle-ridden code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple, Type)

#: matches the suppression comment anywhere in a physical line
_SUPPRESS_RE = re.compile(
    r"#\s*xr-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\- ]+)")

#: directories never walked
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".ruff_cache", ".pytest_cache", "results"}

#: Per-tree rule exemptions (the flake8 per-file-ignores analogue): any
#: path with one of these directory components skips the listed rules.
#: Unit tests deliberately exercise bare acquire paths — the cluster
#: fixture owns teardown — so the leak-pairing rules stay out of tests/.
PATH_RULE_EXEMPTIONS: Dict[str, frozenset] = {
    "tests": frozenset({"memcache-leak", "qp-leak"}),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str            #: rule name, e.g. ``wall-clock``
    code: str            #: stable code, e.g. ``XR101``
    path: str            #: file the finding is in
    line: int            #: 1-based line
    col: int             #: 0-based column
    message: str         #: human explanation with the offending expression

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)


class Rule:
    """Base class: subclass, set the class attributes, implement check().

    ``name`` is the suppression/selection handle (kebab-case), ``code`` a
    stable short identifier grouped by family (XR1xx determinism, XR2xx
    resource pairing, XR3xx sim hygiene).
    """

    name: str = ""
    code: str = ""
    summary: str = ""

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.name, code=self.code, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name or not cls.code:
        raise ValueError(f"rule {cls.__name__} needs name and code")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by code."""
    return sorted(_REGISTRY.values(), key=lambda cls: cls.code)


def get_rule(name: str) -> Type[Rule]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r}; known rules: {known}") from None


@dataclass
class FileContext:
    """Per-file state shared by every rule: source, imports, suppressions."""

    path: str
    source: str
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)
    #: local name -> dotted module/object it refers to (import tracking)
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "FileContext":
        ctx = cls(path=path, source=source)
        ctx._scan_suppressions()
        ctx._scan_imports(tree)
        return ctx

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            scope, names = match.groups()
            rules = {name.strip() for name in names.split(",") if name.strip()}
            if scope == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def _scan_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds a.b.
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    # ----------------------------------------------------------- resolution
    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain with imports resolved.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
        file holds ``import numpy as np``.  Returns None for non-name
        expressions (calls, subscripts, ...).
        """
        name, _ = self.resolved_name(node)
        return name

    def resolved_name(self, node: ast.AST) -> Tuple[Optional[str], bool]:
        """Like :meth:`qualified_name`, plus whether the chain's root went
        through an import in this file.

        Module-dotted patterns (``time.sleep``, ``requests.get``) must only
        match import-resolved names — a local list named ``requests`` makes
        ``requests.append(...)`` look like the HTTP library otherwise.
        Undotted builtins (``input``) resolve with ``False``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None, False
        parts.append(node.id)
        parts.reverse()
        root = self.imports.get(parts[0])
        if root is not None:
            parts[0:1] = root.split(".")
        return ".".join(parts), root is not None

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_suppressions \
                or "all" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(finding.line)
        return bool(rules) and (finding.rule in rules or "all" in rules)


class LintRunner:
    """Parses files and runs every enabled rule over them."""

    def __init__(self, rules: Optional[Sequence[Type[Rule]]] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 path_exemptions: Optional[Dict[str, frozenset]] = None):
        self.path_exemptions = (PATH_RULE_EXEMPTIONS
                                if path_exemptions is None
                                else path_exemptions)
        chosen = list(rules) if rules is not None else all_rules()
        if select:
            wanted = set(select)
            for name in wanted:
                get_rule(name)  # validate
            chosen = [cls for cls in chosen if cls.name in wanted]
        if ignore:
            dropped = set(ignore)
            for name in dropped:
                get_rule(name)  # validate
            chosen = [cls for cls in chosen if cls.name not in dropped]
        self.rules: List[Rule] = [cls() for cls in chosen]
        self.errors: List[str] = []     #: files that failed to parse

    # ------------------------------------------------------------- running
    def run_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory module; the workhorse for file and fixture
        linting alike."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append(f"{path}: syntax error: {exc.msg} "
                               f"(line {exc.lineno})")
            return []
        ctx = FileContext.build(path, source, tree)
        exempt = self._exempt_rules(path)
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.name in exempt:
                continue
            for finding in rule.check(tree, ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings

    def _exempt_rules(self, path: str) -> Set[str]:
        exempt: Set[str] = set()
        for part in Path(path).parts:
            exempt |= self.path_exemptions.get(part, frozenset())
        return exempt

    def run_file(self, path: Path) -> List[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            self.errors.append(f"{path}: unreadable: {exc}")
            return []
        return self.run_source(source, str(path))

    def run_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Lint every ``*.py`` under each path (files accepted directly)."""
        findings: List[Finding] = []
        for raw in paths:
            root = Path(raw)
            if root.is_file():
                findings.extend(self.run_file(root))
                continue
            if not root.is_dir():
                self.errors.append(f"{root}: no such file or directory")
                continue
            for file in sorted(root.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in file.parts):
                    continue
                findings.extend(self.run_file(file))
        findings.sort(key=Finding.sort_key)
        return findings


# --------------------------------------------------------------- AST helpers
def call_name(ctx: FileContext, node: ast.Call) -> Optional[str]:
    """Resolved dotted name of a call's callee, or None."""
    return ctx.qualified_name(node.func)


def contains_id_call(node: ast.AST) -> bool:
    """True if any sub-expression is a call to the ``id`` builtin."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id == "id":
            return True
    return False


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
