"""The xr-lint engine: rule registry, suppressions, file walking.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects.  The :class:`LintRunner` parses each file once, hands the same
tree to every enabled rule, and drops findings suppressed by
``# xr-lint: disable=...`` comments.  Rules never import the modules they
check — analysis is purely syntactic, so the linter can run over broken
or import-cycle-ridden code.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple, Type)

from repro.analysis.lint.callgraph import CallGraph

#: matches the suppression comment (applied to COMMENT tokens, so
#: suppression text inside string literals — lint-test fixtures, help
#: epilogs — is never mistaken for a live suppression)
_SUPPRESS_RE = re.compile(
    r"#\s*xr-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\- ]+)")

#: directories never walked — ``lint_fixtures`` holds deliberately
#: defective sources (the pre-fix PR 6 code) that the rule tests lint
#: explicitly via ``run_source``
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".ruff_cache", ".pytest_cache", "results",
              "lint_fixtures"}

#: Per-tree rule exemptions (the flake8 per-file-ignores analogue): any
#: path with one of these directory components skips the listed rules.
#: Unit tests deliberately exercise bare acquire paths — the cluster
#: fixture owns teardown — so the leak-pairing rules stay out of tests/;
#: the same reasoning exempts the interprocedural exception-edge rule
#: there and in benchmarks/.  Wait-loops in tests and benchmarks run
#: under an explicit ``Simulator.run(until=...)`` / ``run_until_event``
#: horizon, so the unbounded-yield-loop doctrine is enforced by the
#: harness, not the loop.  Examples are didactic happy paths whose
#: cluster teardown reclaims every resource.
PATH_RULE_EXEMPTIONS: Dict[str, frozenset] = {
    "tests": frozenset({"memcache-leak", "qp-leak", "exception-edge-leak",
                        "unbounded-yield-loop"}),
    "benchmarks": frozenset({"exception-edge-leak", "unbounded-yield-loop"}),
    "examples": frozenset({"exception-edge-leak"}),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str            #: rule name, e.g. ``wall-clock``
    code: str            #: stable code, e.g. ``XR101``
    path: str            #: file the finding is in
    line: int            #: 1-based line
    col: int             #: 0-based column
    message: str         #: human explanation with the offending expression

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)


class Rule:
    """Base class: subclass, set the class attributes, implement check().

    ``name`` is the suppression/selection handle (kebab-case), ``code`` a
    stable short identifier grouped by family (XR1xx determinism, XR2xx
    resource pairing, XR3xx sim hygiene).
    """

    name: str = ""
    code: str = ""
    summary: str = ""

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.name, code=self.code, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name or not cls.code:
        raise ValueError(f"rule {cls.__name__} needs name and code")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by code."""
    return sorted(_REGISTRY.values(), key=lambda cls: cls.code)


def get_rule(name: str) -> Type[Rule]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r}; known rules: {known}") from None


@register
class StaleSuppressionRule(Rule):
    """A ``# xr-lint: disable=`` comment must still suppress something.

    Suppressions rot: the excused code moves or gets fixed, the comment
    stays, and the next *real* finding on that line is silently eaten.
    The engine audits every suppression after the per-file rule runs
    (:meth:`FileContext.stale_suppressions`) and reports the ones that
    matched zero findings, plus ones naming rules that do not exist.
    ``check()`` is intentionally empty — this rule exists so the audit
    shows up in ``--list-rules`` and participates in select/ignore like
    any other rule; its findings come from the engine.
    """

    name = "stale-suppression"
    code = "XR001"
    summary = ("suppression comment matches no finding (rotten "
               "`# xr-lint: disable=` audit)")

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())


@dataclass
class SuppressionEntry:
    """One ``# xr-lint: disable[-file]=...`` comment and its usage."""

    lineno: int                  #: line the comment sits on
    scope: str                   #: ``disable`` | ``disable-file``
    rules: Tuple[str, ...]       #: rule names as written, in order
    used: Set[str] = field(default_factory=set)
    #: the subset of ``rules`` that actually matched a finding


@dataclass
class FileContext:
    """Per-file state shared by every rule: source, imports, suppressions."""

    path: str
    source: str
    suppressions: List[SuppressionEntry] = field(default_factory=list)
    #: local name -> dotted module/object it refers to (import tracking)
    imports: Dict[str, str] = field(default_factory=dict)
    #: project call graph (set by the runner; rules_flow consumes it)
    callgraph: Optional[CallGraph] = None

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module,
              callgraph: Optional[CallGraph] = None) -> "FileContext":
        ctx = cls(path=path, source=source, callgraph=callgraph)
        ctx._scan_suppressions()
        ctx._scan_imports(tree)
        return ctx

    def _scan_suppressions(self) -> None:
        for lineno, comment in self._comment_tokens():
            match = _SUPPRESS_RE.search(comment)
            if not match:
                continue
            scope, names = match.groups()
            rules = tuple(name.strip() for name in names.split(",")
                          if name.strip())
            if rules:
                self.suppressions.append(
                    SuppressionEntry(lineno=lineno, scope=scope, rules=rules))

    def _comment_tokens(self) -> Iterator[Tuple[int, str]]:
        """(lineno, text) of each comment — tokenizer-accurate, so
        suppression lookalikes inside string literals don't count."""
        readline = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(readline):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Tokenization can fail where ast.parse succeeded only in
            # exotic cases; fall back to the physical-line scan.
            for lineno, line in enumerate(self.source.splitlines(), start=1):
                if "#" in line:
                    yield lineno, line[line.index("#"):]

    def _scan_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds a.b.
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    # ----------------------------------------------------------- resolution
    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain with imports resolved.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
        file holds ``import numpy as np``.  Returns None for non-name
        expressions (calls, subscripts, ...).
        """
        name, _ = self.resolved_name(node)
        return name

    def resolved_name(self, node: ast.AST) -> Tuple[Optional[str], bool]:
        """Like :meth:`qualified_name`, plus whether the chain's root went
        through an import in this file.

        Module-dotted patterns (``time.sleep``, ``requests.get``) must only
        match import-resolved names — a local list named ``requests`` makes
        ``requests.append(...)`` look like the HTTP library otherwise.
        Undotted builtins (``input``) resolve with ``False``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None, False
        parts.append(node.id)
        parts.reverse()
        root = self.imports.get(parts[0])
        if root is not None:
            parts[0:1] = root.split(".")
        return ".".join(parts), root is not None

    def suppressed(self, finding: Finding) -> bool:
        """Does a suppression cover this finding?  Marks every covering
        entry used (feeding the stale-suppression audit) — so no
        short-circuiting."""
        hit = False
        for entry in self.suppressions:
            if entry.scope == "disable" and entry.lineno != finding.line:
                continue
            for name in entry.rules:
                # The `all` wildcard never covers the audit's own
                # findings — a stale comment can't self-excuse; waiving
                # the audit takes an explicit `stale-suppression`.
                wildcard = (name == "all"
                            and finding.rule != StaleSuppressionRule.name)
                if name == finding.rule or wildcard:
                    entry.used.add(name)
                    hit = True
        return hit

    def stale_suppressions(self, checkable: Set[str]) -> Iterator[Finding]:
        """Audit findings for suppression entries that earned no keep.

        ``checkable`` is the set of rule names that actually ran on this
        file (enabled and not path-exempt): a suppression of a rule that
        didn't run is unprovable either way and stays silent.  Rule names
        nobody registered are always reported — they suppress nothing
        today and mask a typo'd intent.
        """
        for entry in self.suppressions:
            for name in entry.rules:
                if name in entry.used:
                    continue
                if name == "all":
                    if not entry.used:
                        yield self._stale_finding(
                            entry, "suppresses no findings — delete it or "
                            "narrow it to the rule it was meant for")
                elif name not in _REGISTRY:
                    yield self._stale_finding(
                        entry, f"names unknown rule {name!r} — it can never "
                        f"suppress anything (typo?)")
                elif name in checkable:
                    yield self._stale_finding(
                        entry, f"suppresses no {name!r} finding — the code "
                        f"it excused has moved or been fixed; delete the "
                        f"comment so future findings surface")

    def _stale_finding(self, entry: SuppressionEntry, detail: str) -> Finding:
        return Finding(
            rule=StaleSuppressionRule.name, code=StaleSuppressionRule.code,
            path=self.path, line=entry.lineno, col=0,
            message=f"`# xr-lint: {entry.scope}={','.join(entry.rules)}` "
                    f"{detail}")


class LintRunner:
    """Parses files and runs every enabled rule over them.

    Directory runs are two-phase: every file is collected (deduplicated,
    globally sorted — output is byte-identical across filesystems) and
    parsed first, a project :class:`CallGraph` is built over all trees,
    and only then do rules run, so the interprocedural XR4xx family sees
    the whole linted set regardless of file order.
    """

    def __init__(self, rules: Optional[Sequence[Type[Rule]]] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 path_exemptions: Optional[Dict[str, frozenset]] = None,
                 check_suppressions: bool = True):
        self.path_exemptions = (PATH_RULE_EXEMPTIONS
                                if path_exemptions is None
                                else path_exemptions)
        self.check_suppressions = check_suppressions
        chosen = list(rules) if rules is not None else all_rules()
        if select:
            wanted = set(select)
            for name in wanted:
                get_rule(name)  # validate
            chosen = [cls for cls in chosen if cls.name in wanted]
        if ignore:
            dropped = set(ignore)
            for name in dropped:
                get_rule(name)  # validate
            chosen = [cls for cls in chosen if cls.name not in dropped]
        self.rules: List[Rule] = [cls() for cls in chosen]
        self.errors: List[str] = []     #: files that failed to parse

    # ------------------------------------------------------------- running
    def run_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory module; the workhorse for fixture linting.

        The call graph covers just this module — interprocedural facts
        resolve against the fixture itself (tests embed callee stubs and
        handler sites directly in the fixture source).
        """
        tree = self._parse(source, path)
        if tree is None:
            return []
        graph = CallGraph.build([(path, tree)])
        findings = self._run_module(path, source, tree, graph)
        findings.sort(key=Finding.sort_key)
        return findings

    def _parse(self, source: str, path: str) -> Optional[ast.Module]:
        try:
            return ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append(f"{path}: syntax error: {exc.msg} "
                               f"(line {exc.lineno})")
            return None

    def _run_module(self, path: str, source: str, tree: ast.Module,
                    graph: CallGraph) -> List[Finding]:
        ctx = FileContext.build(path, source, tree, callgraph=graph)
        exempt = self._exempt_rules(path)
        findings: List[Finding] = []
        ran: Set[str] = set()
        for rule in self.rules:
            if rule.name in exempt:
                continue
            ran.add(rule.name)
            for finding in rule.check(tree, ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)
        if self.check_suppressions and StaleSuppressionRule.name in ran:
            for finding in ctx.stale_suppressions(checkable=ran):
                if not ctx.suppressed(finding):
                    findings.append(finding)
        return findings

    def _exempt_rules(self, path: str) -> Set[str]:
        exempt: Set[str] = set()
        for part in Path(path).parts:
            exempt |= self.path_exemptions.get(part, frozenset())
        return exempt

    def run_file(self, path: Path) -> List[Finding]:
        source = self._read(path)
        if source is None:
            return []
        return self.run_source(source, str(path))

    def _read(self, path: Path) -> Optional[str]:
        try:
            return path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            self.errors.append(f"{path}: unreadable: {exc}")
            return None

    def _collect_files(self, paths: Iterable[str]) -> List[Path]:
        """Every ``*.py`` under the given paths: deduplicated and sorted
        by path string, so the walk (and therefore every report) is
        deterministic across filesystems and argument orders."""
        seen: Dict[str, Path] = {}
        for raw in paths:
            root = Path(raw)
            if root.is_file():
                seen.setdefault(str(root), root)
                continue
            if not root.is_dir():
                self.errors.append(f"{root}: no such file or directory")
                continue
            for file in root.rglob("*.py"):
                if any(part in _SKIP_DIRS for part in file.parts):
                    continue
                seen.setdefault(str(file), file)
        return [seen[key] for key in sorted(seen)]

    def run_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Lint every ``*.py`` under each path (files accepted directly)."""
        parsed: List[Tuple[str, str, ast.Module]] = []
        for file in self._collect_files(paths):
            source = self._read(file)
            if source is None:
                continue
            tree = self._parse(source, str(file))
            if tree is not None:
                parsed.append((str(file), source, tree))
        graph = CallGraph.build((path, tree) for path, _, tree in parsed)
        findings: List[Finding] = []
        for path, source, tree in parsed:
            findings.extend(self._run_module(path, source, tree, graph))
        findings.sort(key=Finding.sort_key)
        return findings


# --------------------------------------------------------------- AST helpers
def call_name(ctx: FileContext, node: ast.Call) -> Optional[str]:
    """Resolved dotted name of a call's callee, or None."""
    return ctx.qualified_name(node.func)


def contains_id_call(node: ast.AST) -> bool:
    """True if any sub-expression is a call to the ``id`` builtin."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id == "id":
            return True
    return False


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
