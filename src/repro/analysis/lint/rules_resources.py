"""Resource-pairing rules (XR2xx).

The paper's keepAlive/resource-leak motivation (Sec. IV-D, Table 2): QPs
and registered memory leaked by "plausible-looking" code were the dominant
production failure mode.  These rules run a flow-sensitive, intra-function
escape analysis: a value acquired from an allocation-like call must either
be *released* (reach a paired ``free``-style call) or *escape* the
function (returned, yielded, stored into an attribute/subscript/container,
or handed to another callable, which is then assumed to own it).  A value
that is only ever read — attribute access, subscripting, comparisons — and
never released is a leak.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding, Rule, register

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_BARRIERS = _FUNC_DEFS + (ast.ClassDef, ast.Lambda)


def _iter_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_BARRIERS):
            stack.extend(ast.iter_child_nodes(node))


def _parent_map(func: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        if node is not func and isinstance(node, _SCOPE_BARRIERS):
            continue
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            stack.append(child)
    return parents


def _callee_method(call: ast.Call) -> Optional[str]:
    """Last component of the callee name: ``cache.alloc`` -> ``alloc``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _acquisition_call(stmt_value: ast.AST) -> Optional[ast.Call]:
    """The Call inside ``x = obj.alloc(...)`` / ``x = yield from
    obj.alloc(...)`` / ``x = yield obj.create_qp(...)``, if any."""
    node = stmt_value
    if isinstance(node, (ast.YieldFrom, ast.Yield)) and node.value is not None:
        node = node.value
    if isinstance(node, ast.Await):
        node = node.value
    return node if isinstance(node, ast.Call) else None


class PairingRule(Rule):
    """Shared engine; subclasses define the acquire/release vocabulary."""

    acquire_methods: Set[str] = set()
    #: subset of acquisitions flagged when the result is discarded — only
    #: where no callee-side owner tracks the resource (XrdmaContext.connect
    #: registers the channel in ctx.channels, so a discarded connect is
    #: recoverable; a discarded raw create_qp/alloc is not)
    discard_methods: Set[str] = set()
    #: call names (last component) that count as releasing any argument
    release_calls: Set[str] = set()
    #: method names that release their receiver (``conn.disconnect()``)
    release_receiver_methods: Set[str] = set()
    resource_noun: str = "resource"
    fix_hint: str = ""

    # ------------------------------------------------------------- checking
    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, _FUNC_DEFS):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        parents = _parent_map(func)
        acquisitions: List[Tuple[str, ast.AST]] = []   # (var, site)
        for node in _iter_scope(func):
            # x = <acquire>(...)  — tracked for leak analysis
            if isinstance(node, ast.Assign):
                call = _acquisition_call(node.value)
                if call is not None and self._acquires(call):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            acquisitions.append((target.id, node))
            # bare <acquire>(...) as a statement — result discarded
            elif isinstance(node, ast.Expr):
                call = _acquisition_call(node.value)
                if call is not None \
                        and _callee_method(call) in self.discard_methods:
                    yield self.finding(
                        ctx, node,
                        f"result of {_callee_method(call)}() is discarded: "
                        f"the {self.resource_noun} can never be released; "
                        f"{self.fix_hint}")
        aliases = self._alias_map(func)
        for var, site in acquisitions:
            names = {var} | aliases.get(var, set())
            if not self._released_or_escapes(func, parents, names, site):
                call = _acquisition_call(site.value)
                yield self.finding(
                    ctx, site,
                    f"{var!r} acquired via {_callee_method(call)}() is "
                    f"never freed, returned, or stored — the "
                    f"{self.resource_noun} leaks when this function "
                    f"returns; {self.fix_hint}")

    def _acquires(self, call: ast.Call) -> bool:
        return _callee_method(call) in self.acquire_methods

    # --------------------------------------------------------------- escape
    def _alias_map(self, func: ast.AST) -> Dict[str, Set[str]]:
        """``qp = conn.qp`` makes releasing ``qp`` count for ``conn``."""
        aliases: Dict[str, Set[str]] = {}
        for node in _iter_scope(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            root = value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and (value is root
                                               or isinstance(value,
                                                             ast.Attribute)):
                aliases.setdefault(root.id, set()).add(node.targets[0].id)
        return aliases

    def _released_or_escapes(self, func: ast.AST,
                             parents: Dict[ast.AST, ast.AST],
                             names: Set[str], site: ast.AST) -> bool:
        for node in _iter_scope(func):
            if not (isinstance(node, ast.Name) and node.id in names
                    and isinstance(node.ctx, ast.Load)):
                continue
            if self._is_release_use(node, parents):
                return True
            if self._is_escape_use(node, parents):
                return True
        return False

    def _is_release_use(self, name: ast.Name,
                        parents: Dict[ast.AST, ast.AST]) -> bool:
        # conn.disconnect() — receiver of a releasing method
        parent = parents.get(name)
        if isinstance(parent, ast.Attribute) and parent.value is name \
                and parent.attr in self.release_receiver_methods:
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return True
        # free(buf) / memcache.free(buf.addr) — anywhere inside the args
        # of a call whose name is in the release vocabulary
        node: ast.AST = name
        while node in parents:
            up = parents[node]
            if isinstance(up, ast.Call) and node is not up.func \
                    and _callee_method(up) in self.release_calls:
                return True
            if isinstance(up, ast.stmt):
                break
            node = up
        return False

    def _is_escape_use(self, name: ast.Name,
                       parents: Dict[ast.AST, ast.AST]) -> bool:
        """A *bare* use handing the value somewhere that outlives the
        function.  ``buf.addr`` / ``buf[0]`` / ``buf is None`` are reads."""
        parent = parents.get(name)
        if isinstance(parent, (ast.Attribute, ast.Subscript)) \
                and parent.value is name:
            return False                        # read through the handle
        if isinstance(parent, ast.Compare):
            return False                        # identity/None test
        node: ast.AST = name
        while node in parents:
            up = parents[node]
            if isinstance(up, ast.Call) and node is not up.func:
                return True                     # argument to any callable
            if isinstance(up, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True                     # handed to the caller
            if isinstance(up, ast.Assign) and node is not up.targets[0]:
                # stored into an attribute, container, or subscript
                for target in up.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript,
                                           ast.Tuple, ast.List)):
                        return True
                if not isinstance(node, ast.Name):
                    return True                 # packed into a container
            if isinstance(up, ast.stmt):
                break
            node = up
        return False


@register
class MemcacheLeakRule(PairingRule):
    """Every ``MemCache.alloc``/``reg_mem`` result must reach ``free``."""

    name = "memcache-leak"
    code = "XR201"
    summary = ("alloc()/try_alloc()/reg_mem() result neither freed nor "
               "escaping the function")
    acquire_methods = {"alloc", "try_alloc", "reg_mem"}
    discard_methods = {"alloc", "try_alloc", "reg_mem"}
    release_calls = {"free", "dereg_mem", "release"}
    release_receiver_methods = {"free", "release"}
    resource_noun = "buffer (and its MR accounting)"
    fix_hint = ("pair it with memcache.free()/dereg_mem(), or return/store "
                "the buffer so the owner can")


@register
class QpLeakRule(PairingRule):
    """Every ``connect``/``create_qp`` acquisition needs a teardown path."""

    name = "qp-leak"
    code = "XR202"
    summary = ("connect()/create_qp() result has no destroy/recycle/close "
               "path and never escapes")
    acquire_methods = {"connect", "create_qp"}
    discard_methods = {"create_qp"}
    release_calls = {"close_channel", "destroy_qp", "disconnect", "put",
                     "recycle"}
    release_receiver_methods = {"close", "disconnect", "destroy"}
    resource_noun = "QP/channel (NIC-side state included)"
    fix_hint = ("close_channel()/destroy_qp() it on every path, or hand "
                "it to an owner that will")
