"""Project-wide call graph for the interprocedural XR4xx rules.

The XR1xx–XR3xx families look at one module at a time.  The concurrency
rules cannot: whether ``yield from self.cm.connect(...)`` is a preemption
point depends on whether *any* ``connect`` in the project yields, and
whether it is a live exception edge depends on whether ``connect`` can
raise something the project actually handles.  This module builds that
index once per lint run, from the already-parsed trees — no imports, no
execution, so it works over broken or cycle-ridden code exactly like the
rest of xr-lint.

Resolution is by *method name* (the last dotted component), the same
convention the XR2xx pairing vocabulary uses: ``self.cm.connect`` maps to
every function/method named ``connect`` anywhere in the linted set, and
properties are unioned conservatively.  Two fixpoints are computed at
build time:

* **may-preempt** — a function suspends its caller if it contains a
  ``yield``, or ``yield from``-delegates (transitively) to one that does.
  Unresolved names are assumed preempting: ``yield from`` of an unknown
  callee must be treated as a preemption edge.
* **may-raise-handled** — a function owns a live exception edge if it
  raises an exception class that some *specific* ``except`` clause in the
  linted set catches (``except ConnectError:`` counts; ``except
  Exception:`` does not), or ``yield from``-delegates to one that does.
  Exceptions nobody catches are fatal by project convention
  (InvariantError, assertion-style ValueErrors): a resource lost on a
  dying-simulation edge is not a leak worth a finding.

Precision therefore scales with the linted set — lint ``src tests
benchmarks examples`` together (as the CLI default, the self-check, and
CI all do) and the handled-exception vocabulary is complete.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: handlers broad enough to catch anything — they do not make an
#: exception class "handled" (XR303 already polices them), and a raise
#: beneath one does not propagate.
_BROAD_HANDLERS = {"Exception", "BaseException"}

#: builtin exception classes never count as "handled": an in-tree
#: ``raise ValueError``/``KeyError`` is an assert-style programming-error
#: guard (fatal by project convention), not a protocol edge.  The
#: robustness story is carried by project-defined classes — ConnectError,
#: ChannelBroken, OutOfMemory, QpStateError, ... — and those are exactly
#: the names this set leaves in.
_BUILTIN_EXCEPTIONS = {
    name for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
}

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_BARRIERS = _FUNC_DEFS + (ast.ClassDef, ast.Lambda)


def last_component(node: ast.AST) -> Optional[str]:
    """``self.cm.connect`` → ``connect``; ``connect`` → ``connect``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _iter_own_scope(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without entering nested defs/classes/lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_BARRIERS):
            stack.extend(ast.iter_child_nodes(node))


def _handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """Exception class names an ``except`` clause lists (last components)."""
    if handler.type is None:
        return set(_BROAD_HANDLERS)     # bare except behaves like broad
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: Set[str] = set()
    for node in nodes:
        name = last_component(node)
        if name is not None:
            names.add(name)
    return names


@dataclass
class FunctionInfo:
    """Per-function facts the fixpoints and rules consume."""

    qualname: str                 #: e.g. ``QpCache.put``
    name: str                     #: last component, e.g. ``put``
    path: str                     #: file the definition lives in
    node: ast.AST                 #: the FunctionDef itself
    yields: int = 0               #: own-scope ``yield`` count
    delegates: Set[str] = field(default_factory=set)
    #: callee names of own-scope ``yield from <call>`` expressions
    raised: Set[str] = field(default_factory=set)
    #: exception class names raised outside any matching local handler


class CallGraph:
    """Name-indexed project view with preempt/raise fixpoints."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self.caught_exceptions: Set[str] = set()
        self._preempting: Set[str] = set()
        self._raising: Set[str] = set()

    # ------------------------------------------------------------- building
    @classmethod
    def build(cls, modules: Iterable[Tuple[str, ast.Module]]) -> "CallGraph":
        graph = cls()
        for path, tree in modules:
            graph._index_module(path, tree)
        graph._solve_preempt()
        graph._solve_raise()
        return graph

    def _index_module(self, path: str, tree: ast.Module) -> None:
        self._index_scope(path, tree, prefix="")
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                self.caught_exceptions |= (_handler_names(node)
                                           - _BROAD_HANDLERS
                                           - _BUILTIN_EXCEPTIONS)

    def _index_scope(self, path: str, scope: ast.AST, prefix: str) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, _FUNC_DEFS):
                qual = f"{prefix}{node.name}"
                self._index_function(path, node, qual)
                self._index_scope(path, node, prefix=f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                self._index_scope(path, node, prefix=f"{prefix}{node.name}.")
            elif not isinstance(node, ast.Lambda):
                self._index_scope(path, node, prefix=prefix)

    def _index_function(self, path: str, func: ast.AST, qual: str) -> None:
        info = FunctionInfo(qualname=qual, name=func.name, path=path,
                            node=func)
        self._scan_function(func, info, enclosing_tries=())
        self.functions.append(info)
        self.by_name.setdefault(info.name, []).append(info)

    def _scan_function(self, node: ast.AST, info: FunctionInfo,
                       enclosing_tries: Tuple[ast.Try, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_BARRIERS):
                continue
            if isinstance(child, ast.Yield):
                info.yields += 1
            elif isinstance(child, ast.YieldFrom):
                if isinstance(child.value, ast.Call):
                    name = last_component(child.value.func)
                    if name is not None:
                        info.delegates.add(name)
                else:
                    # `yield from some_iterable` — unresolvable, treat as
                    # a plain preemption source.
                    info.yields += 1
            elif isinstance(child, ast.Raise) and child.exc is not None:
                exc = child.exc
                name = last_component(exc.func if isinstance(exc, ast.Call)
                                      else exc)
                if name is not None \
                        and not self._locally_caught(enclosing_tries, name):
                    info.raised.add(name)
            if isinstance(child, ast.Try):
                body_tries = (enclosing_tries + (child,) if child.handlers
                              else enclosing_tries)
                for stmt in child.body + child.orelse:
                    self._scan_function(stmt, info, body_tries)
                for handler in child.handlers:
                    for stmt in handler.body:
                        self._scan_function(stmt, info, enclosing_tries)
                for stmt in child.finalbody:
                    self._scan_function(stmt, info, enclosing_tries)
            else:
                self._scan_function(child, info, enclosing_tries)

    @staticmethod
    def _locally_caught(enclosing_tries: Tuple[ast.Try, ...],
                        name: str) -> bool:
        for try_node in enclosing_tries:
            for handler in try_node.handlers:
                caught = _handler_names(handler)
                if name in caught or caught & _BROAD_HANDLERS:
                    return True
        return False

    # ------------------------------------------------------------ fixpoints
    def _solve_preempt(self) -> None:
        """Names whose functions can suspend a ``yield from`` caller."""
        preempting = {info.name for info in self.functions if info.yields}
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                if info.name in preempting:
                    continue
                for callee in info.delegates:
                    # Unresolved delegate: conservatively preempting.
                    if callee not in self.by_name or callee in preempting:
                        preempting.add(info.name)
                        changed = True
                        break
        self._preempting = preempting

    def _solve_raise(self) -> None:
        """Names whose functions may raise a *handled* exception class.

        Propagation follows ``yield from`` delegation only: generator
        delegation is transparent control flow, so the delegator's caller
        stands on the same exception edge.  Plain calls do NOT propagate —
        with name-based resolution one raising ``get`` would taint every
        ``get`` call site in the project, and each raising callee already
        gets flagged where it is called directly.
        """
        raising = {info.name for info in self.functions
                   if info.raised & self.caught_exceptions}
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                if info.name in raising:
                    continue
                if any(callee in raising for callee in info.delegates):
                    raising.add(info.name)
                    changed = True
        self._raising = raising

    # -------------------------------------------------------------- queries
    def resolve(self, name: str) -> List[FunctionInfo]:
        return self.by_name.get(name, [])

    def may_preempt(self, name: Optional[str]) -> bool:
        """Can ``yield from <name>(...)`` suspend the caller?

        Unknown names answer True — an unresolved delegate must be treated
        as a preemption edge.  A resolved, provably yield-free callee
        answers False (the precision win the call graph buys).
        """
        if name is None or name not in self.by_name:
            return True
        return name in self._preempting

    def may_raise_handled(self, name: Optional[str]) -> bool:
        """Can calling ``<name>`` raise an exception the project handles?

        Unknown names answer False: we cannot prove a live exception edge
        through a callee we cannot see, and flagging on ignorance would
        drown the signal.
        """
        return name is not None and name in self._raising
