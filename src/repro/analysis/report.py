"""Text rendering for monitor series — the dashboards of Figs. 3/8/11/12.

Production X-RDMA feeds a graphical monitoring system; here the benches
and examples render the same series as unicode sparklines and compact
tables so a terminal shows the shapes the paper's screenshots show.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a one-line unicode sparkline."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        # Downsample by averaging fixed-size chunks.
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):max(int((i + 1) * chunk),
                                          int(i * chunk) + 1)])
            / max(len(values[int(i * chunk):max(int((i + 1) * chunk),
                                                int(i * chunk) + 1)]), 1)
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        _BARS[min(int((value - low) / span * (len(_BARS) - 1)),
                  len(_BARS) - 1)]
        for value in values)


def series_panel(title: str, samples: List[Tuple[int, float]],
                 unit: str = "", width: int = 60) -> str:
    """A labelled sparkline with min/max annotations."""
    if not samples:
        return f"{title}: (no samples)"
    values = [value for _, value in samples]
    line = sparkline(values, width=width)
    t0, t1 = samples[0][0], samples[-1][0]
    return (f"{title} [{t0 / 1e6:.0f}..{t1 / 1e6:.0f} ms]\n"
            f"  {line}\n"
            f"  min={min(values):.4g}{unit} max={max(values):.4g}{unit} "
            f"last={values[-1]:.4g}{unit}")


def table(headers: Sequence[str], rows: Sequence[Sequence],
          widths: Sequence[int] = None) -> str:
    """Fixed-width text table."""
    if widths is None:
        widths = [max(len(str(header)),
                      max((len(str(row[i])) for row in rows), default=0)) + 2
                  for i, header in enumerate(headers)]
    lines = ["".join(f"{str(header):>{width}}"
                     for header, width in zip(headers, widths))]
    for row in rows:
        lines.append("".join(f"{str(cell):>{width}}"
                             for cell, width in zip(row, widths)))
    return "\n".join(lines)
