"""Filter: data-plane fault injection (Sec. VI-C, "Emulate Fault").

Linux netfilter cannot see RDMA traffic, so X-RDMA injects faults in the
middleware: dropping or delaying messages per rule.  Rules can be enabled
and disabled online (through XR-Adm in production; directly here).

Attach via ``ctx.filter = Filter(...)``; the context consults it on every
delivered completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.rnic.wqe import Completion
    from repro.sim.rng import RngStream
    from repro.xrdma.channel import XrdmaChannel


@dataclass
class FaultRule:
    """One injection rule; ``channel_id=None`` matches every channel."""

    drop_probability: float = 0.0
    delay_ns: int = 0
    delay_probability: float = 0.0
    #: deliver the message twice (a middleware-level retransmit arriving
    #: after the original made it through — the receiver must dedup)
    duplicate_probability: float = 0.0
    channel_id: Optional[int] = None
    enabled: bool = True

    def matches(self, channel: "XrdmaChannel") -> bool:
        return self.enabled and (self.channel_id is None
                                 or self.channel_id == channel.channel_id)


class Filter:
    """The per-context fault injector."""

    def __init__(self, rng: "RngStream"):
        self.rng = rng
        self.rules: List[FaultRule] = []
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def clear(self) -> None:
        self.rules.clear()

    # ------------------------------------------------------- context queries
    def should_drop(self, channel: "XrdmaChannel",
                    completion: "Completion") -> bool:
        for rule in self.rules:
            if rule.matches(channel) and rule.drop_probability > 0 \
                    and self.rng.bernoulli(rule.drop_probability):
                self.dropped += 1
                return True
        return False

    def delay_for(self, channel: "XrdmaChannel",
                  completion: "Completion") -> int:
        for rule in self.rules:
            if rule.matches(channel) and rule.delay_ns > 0:
                probability = rule.delay_probability or 1.0
                if self.rng.bernoulli(probability):
                    self.delayed += 1
                    return rule.delay_ns
        return 0

    def should_duplicate(self, channel: "XrdmaChannel",
                         completion: "Completion") -> bool:
        for rule in self.rules:
            if rule.matches(channel) and rule.duplicate_probability > 0 \
                    and self.rng.bernoulli(rule.duplicate_probability):
                self.duplicated += 1
                return True
        return False
