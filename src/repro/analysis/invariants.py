"""Runtime protocol-invariant checking (the sanitizer layer, Sec. VI-C).

X-RDMA's production lesson is that RDMA middleware must *detect its own
corruption*: leaked QPs, stuck windows, out-of-bound buffers and drifting
flow-control accounting never show up in happy-path benchmarks, only in
churn.  This module is the simulation-world analogue of the sanitizer
wiring a C++ code base would get from ASAN — cheap inline hooks at every
protocol mutation plus structural deep checks run at sampling points and
at scenario quiescence.

Two pieces:

* :class:`InvariantRegistry` — collects violations.  In ``fatal`` mode a
  violation raises :class:`InvariantError` on the spot (tests); in
  ``count`` mode it is recorded and execution continues with the call
  site containing the damage (benches — the Monitor samples the running
  totals so a violation shows up in the production time series).
* **Hooks** — instrumented modules (``xrdma.seqack``, ``xrdma.flowctl``,
  ``xrdma.memcache``, ``xrdma.channel``, ``rnic.qp``) call the
  module-level :func:`check`/:func:`note` functions.  With no registry
  installed both are near-free, so library users pay nothing.

Like a sanitizer, the active registry is process-global: tests install a
fatal registry via an autouse fixture, benchmarks a counting one.  Deep
checks are pluggable — :meth:`InvariantRegistry.add_check` registers a
callable run against every subject handed to
:meth:`InvariantRegistry.run_checks` (or :func:`verify_context`).

This module must not import anything from ``repro`` at module level: the
instrumented modules import it, and it sits below all of them.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

_MODES = ("fatal", "count")
#: First-N violation details kept verbatim (counts are always exact).
_DETAIL_KEEP = 64

#: A structural check: subject -> iterable of violation detail strings.
CheckFn = Callable[[Any], Iterable[str]]


class InvariantError(AssertionError):
    """A protocol invariant was violated (fatal mode)."""


class InvariantRegistry:
    """Violation collector with ``fatal`` / ``count`` escalation modes."""

    def __init__(self, mode: str = "fatal"):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}: {mode!r}")
        self.mode = mode
        self.counts: Counter = Counter()
        self.details: List[Tuple[str, str]] = []
        self._checks: List[Tuple[str, CheckFn]] = []

    # ------------------------------------------------------------- recording
    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def ok(self) -> bool:
        return not self.counts

    def reset(self) -> None:
        self.counts.clear()
        self.details.clear()

    def note(self, name: str, detail: str = "") -> None:
        """Record a violation without escalating (the call site raises its
        own, more specific error — e.g. :class:`~repro.rnic.qp.QpStateError`)."""
        self.counts[name] += 1
        if len(self.details) < _DETAIL_KEEP:
            self.details.append((name, detail))

    def record(self, name: str, detail: str = "") -> None:
        """Record a violation; raise in fatal mode."""
        self.note(name, detail)
        if self.mode == "fatal":
            raise InvariantError(f"invariant {name!r} violated: {detail}")

    def check(self, condition: bool, name: str, detail: Any = "") -> bool:
        """Assert ``condition``; ``detail`` may be a callable built lazily."""
        if condition:
            return True
        self.record(name, detail() if callable(detail) else str(detail))
        return False

    # ----------------------------------------------------- structural checks
    def add_check(self, name: str, fn: CheckFn) -> None:
        """Register a pluggable deep check (run by :meth:`run_checks`)."""
        self._checks.append((name, fn))

    def run_checks(self, *subjects: Any) -> int:
        """Run every registered deep check against every subject; returns
        the number of violations found (fatal mode raises on the first)."""
        found = 0
        for subject in subjects:
            for name, fn in self._checks:
                for detail in fn(subject) or ():
                    found += 1
                    self.record(name, detail)
        return found

    def summary(self) -> str:
        if self.ok:
            return "invariants: clean"
        lines = [f"invariants: {self.total} violation(s)"]
        for name, count in sorted(self.counts.items()):
            lines.append(f"  {name}: {count}")
        for name, detail in self.details[:8]:
            lines.append(f"    e.g. {name}: {detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------- active hook
_active: Optional[InvariantRegistry] = None

#: Mirror of ``_active is not None``, maintained by install()/uninstall().
#: Hot call sites gate *pure assertion* blocks on this flag so a disabled
#: sanitizer costs one module-attribute load instead of building detail
#: closures and calling :func:`check`.  Sites whose violated branch also
#: *clamps* state must not be gated — they stay correct by constructing
#: their detail lazily inside the violated branch instead.
ENABLED = False


def install(registry: Optional[InvariantRegistry] = None,
            mode: str = "fatal") -> InvariantRegistry:
    """Make ``registry`` (or a fresh one in ``mode``) the active sanitizer."""
    global _active, ENABLED
    _active = registry if registry is not None else InvariantRegistry(mode)
    ENABLED = True
    return _active


def uninstall() -> Optional[InvariantRegistry]:
    """Deactivate checking; returns the registry that was active."""
    global _active, ENABLED
    registry, _active = _active, None
    ENABLED = False
    return registry


def current() -> Optional[InvariantRegistry]:
    """The active registry, or None when checking is off."""
    return _active


def enabled() -> bool:
    return _active is not None


def check(condition: bool, name: str, detail: Any = "") -> bool:
    """Hot-path hook: no-op when no registry is installed.

    Returns ``condition`` either way, so call sites can *contain* the
    damage in count mode (``if not check(x >= 0, ...): x = 0``) instead of
    silently clamping up front — the clamp still happens, but only after
    the violation has been surfaced.
    """
    if condition:
        return True
    if _active is not None:
        _active.record(name, detail() if callable(detail) else str(detail))
    return False


def note(name: str, detail: str = "") -> None:
    """Record-only hook for sites that raise their own error anyway."""
    if _active is not None:
        _active.note(name, detail)


# ============================================================== deep checks
# Structural validators over live protocol objects.  They are duck-typed
# (no repro imports) and yield ``(name, detail)`` pairs; use
# :func:`verify_context` to run and record them in one call.

def seqack_violations(window) -> Iterator[Tuple[str, str]]:
    """Sender/receiver counters of one seq-ack window are consistent."""
    if not window.acked <= window.seq:
        yield ("seqack.acked_gt_seq",
               f"acked={window.acked} seq={window.seq}")
    if not 0 <= window.in_flight <= window.depth:
        yield ("seqack.in_flight_bounds",
               f"in_flight={window.in_flight} depth={window.depth}")
    if not window.rta <= window.wta:
        yield ("seqack.rta_gt_wta", f"rta={window.rta} wta={window.wta}")
    if not window.sent_ack <= window.rta:
        yield ("seqack.sent_ack_gt_rta",
               f"sent_ack={window.sent_ack} rta={window.rta}")
    for seq in window._pending_rx:
        if seq < window.rta:
            yield ("seqack.pending_below_rta",
                   f"pending seq {seq} < rta {window.rta}")


def flow_violations(controller) -> Iterator[Tuple[str, str]]:
    """One channel's flow-control counters are sane."""
    if controller.outstanding < 0:
        yield ("flowctl.outstanding_negative",
               f"outstanding={controller.outstanding}")
    if controller.budget_held < 0:
        yield ("flowctl.budget_held_negative",
               f"budget_held={controller.budget_held}")
    if controller.budget_held > controller.outstanding + controller._abandoned:
        yield ("flowctl.budget_held_gt_outstanding",
               f"budget_held={controller.budget_held} "
               f"outstanding={controller.outstanding}")


def budget_violations(budget) -> Iterator[Tuple[str, str]]:
    """The shared WR budget equals the sum of per-channel holdings."""
    if not 0 <= budget.in_use <= budget.capacity:
        yield ("flowctl.budget_bounds",
               f"in_use={budget.in_use} capacity={budget.capacity}")
    held = sum(c.budget_held for c in budget.controllers)
    if budget.in_use != held:
        yield ("flowctl.budget_mismatch",
               f"in_use={budget.in_use} sum(budget_held)={held}")


def memcache_violations(cache) -> Iterator[Tuple[str, str]]:
    """Arena accounting: in-use equals live bytes, free lists are exact."""
    live = sum(buffer.size for _, buffer in cache._live.values())
    if cache.in_use_bytes != live:
        yield ("memcache.in_use_mismatch",
               f"in_use_bytes={cache.in_use_bytes} live_bytes={live}")
    arena_ids = {id(arena) for arena in cache._arenas}
    for arena, buffer in cache._live.values():
        if id(arena) not in arena_ids:
            yield ("memcache.live_in_reclaimed_arena",
                   f"buffer id={buffer.buffer_id} addr={buffer.addr:#x}")
        elif not (arena.mr.addr <= buffer.addr
                  and buffer.addr + buffer.size
                  <= arena.mr.addr + arena.mr.length):
            yield ("memcache.buffer_out_of_arena",
                   f"buffer id={buffer.buffer_id} addr={buffer.addr:#x} "
                   f"size={buffer.size}")
    spans = []
    for arena in cache._arenas:
        base, length = arena.mr.addr, arena.mr.length
        spans.append((base, length))
        free_total = 0
        previous_end = base
        for addr, size in sorted(arena.free):
            if addr < previous_end:
                yield ("memcache.free_list_overlap",
                       f"entry ({addr:#x}, {size}) overlaps below "
                       f"{previous_end:#x}")
            if addr < base or addr + size > base + length:
                yield ("memcache.free_list_out_of_bounds",
                       f"entry ({addr:#x}, {size}) outside arena "
                       f"[{base:#x}, {base + length:#x})")
            previous_end = addr + size
            free_total += size
        if arena.used_bytes < 0:
            yield ("memcache.used_underflow",
                   f"used_bytes={arena.used_bytes}")
        if free_total + arena.used_bytes != length:
            yield ("memcache.arena_accounting",
                   f"free={free_total} used={arena.used_bytes} "
                   f"length={length}")
    spans.sort()
    for (a0, l0), (a1, _l1) in zip(spans, spans[1:]):
        if a0 + l0 > a1:
            yield ("memcache.arena_alias",
                   f"arenas at {a0:#x}(+{l0}) and {a1:#x} overlap")


def qp_violations(qp) -> Iterator[Tuple[str, str]]:
    """Queue-pair software state matches its verbs state machine."""
    if len(qp.sq) + len(qp.outstanding) > qp.sq_depth:
        yield ("qp.sq_overflow",
               f"qpn={qp.qpn} sq={len(qp.sq)} "
               f"outstanding={len(qp.outstanding)} depth={qp.sq_depth}")
    if len(qp.rq) > qp.rq_depth:
        yield ("qp.rq_overflow",
               f"qpn={qp.qpn} rq={len(qp.rq)} depth={qp.rq_depth}")
    if qp.state.name == "RESET" and (qp.sq or qp.outstanding
                                     or qp.current_tx is not None):
        yield ("qp.reset_with_work",
               f"qpn={qp.qpn} holds work in RESET")


def channel_violations(channel) -> Iterator[Tuple[str, str]]:
    """Channel send/delivery bookkeeping matches its window."""
    window = channel.window
    for seq in channel.sent:
        if not window.acked <= seq < window.seq:
            yield ("channel.sent_outside_window",
                   f"sent seq {seq} outside [{window.acked}, {window.seq})")
    if channel._next_deliver_seq > window.rta:
        yield ("channel.delivery_ahead_of_rta",
               f"next_deliver={channel._next_deliver_seq} rta={window.rta}")
    for seq in channel._pending_delivery:
        if seq < channel._next_deliver_seq:
            yield ("channel.stale_pending_delivery",
                   f"pending seq {seq} already delivered "
                   f"(next={channel._next_deliver_seq})")
    for seq in channel._rendezvous:
        if seq < window.rta:
            yield ("channel.rendezvous_behind_rta",
                   f"rendezvous seq {seq} < rta {window.rta}")
    yield from seqack_violations(window)
    yield from flow_violations(channel.flow)
    yield from qp_violations(channel.qp)


def context_violations(ctx) -> Iterator[Tuple[str, str]]:
    """Everything a context owns: channels, budget, memory cache."""
    for channel in ctx.channels.values():
        yield from channel_violations(channel)
    yield from budget_violations(ctx.wr_budget)
    yield from memcache_violations(ctx.memcache)


def verify_context(ctx, registry: Optional[InvariantRegistry] = None
                   ) -> List[Tuple[str, str]]:
    """Run the structural deep checks against ``ctx`` and record every
    violation in ``registry`` (default: the active one).  Returns the
    violations; in fatal mode the first one raises."""
    reg = registry if registry is not None else _active
    found: List[Tuple[str, str]] = []
    for name, detail in context_violations(ctx):
        found.append((name, detail))
        if reg is not None:
            reg.record(name, detail)
    if reg is not None:
        for check_name, fn in reg._checks:
            for detail in fn(ctx) or ():
                found.append((check_name, detail))
                reg.record(check_name, detail)
    return found
