"""Quickstart: a ping-pong on X-RDMA in a few dozen lines.

Contrast with ``pingpong_raw_verbs.py``, which does the same thing on the
native verbs API — the Sec. VII-B programming-simplification claim,
measured by ``benchmarks/test_sec7b_loc.py``.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.sim import SECONDS

ITERATIONS = 100
SIZE = 64


def main():
    cluster = build_cluster(n_hosts=2)
    client = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    server.listen(7000)
    latencies = []

    def server_loop():
        while True:
            msg = yield server.incoming.get()
            server.send_response(msg, msg.payload_size)

    def client_loop():
        channel = yield from client.connect(1, 7000)
        for _ in range(ITERATIONS):
            t0 = cluster.sim.now
            request = client.send_request(channel, SIZE, payload="ping")
            yield request.response
            latencies.append((cluster.sim.now - t0) / 2)

    cluster.sim.spawn(server_loop())
    done = cluster.sim.spawn(client_loop())
    cluster.sim.run_until_event(done, limit=60 * SECONDS)

    mean_us = sum(latencies) / len(latencies) / 1000
    print(f"{ITERATIONS} ping-pongs of {SIZE} B")
    print(f"mean one-way latency: {mean_us:.2f} us")


if __name__ == "__main__":
    main()
