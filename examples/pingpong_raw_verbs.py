"""The same ping-pong as ``quickstart.py``, written against raw verbs.

This is the "complex ritual" of Sec. II-A: allocate a PD, register memory,
create CQs and a QP, walk the QP state machine through the rdma_cm
handshake, pre-post receives, post sends, poll completions, replenish
receive buffers — all by hand, per connection.

Run:  python examples/pingpong_raw_verbs.py
"""

from repro.cluster import build_cluster
from repro.rnic import AccessFlags, Opcode, WorkRequest
from repro.sim import SECONDS

ITERATIONS = 100
SIZE = 64
RECV_DEPTH = 16


def main():
    cluster = build_cluster(n_hosts=2)
    client_host = cluster.host(0)
    server_host = cluster.host(1)
    sim = cluster.sim
    latencies = []

    # ---- server side: PD, CQ, MR, listener ------------------------------
    server_pd = server_host.verbs.alloc_pd()
    server_cq = server_host.verbs.create_cq(depth=256)
    listener = server_host.cm.listen(7000, server_pd, server_cq, server_cq)

    def server_loop():
        # Register a buffer pool by hand.
        pool = server_host.memory.alloc(RECV_DEPTH * (SIZE + 64))
        pool_mr = yield server_host.verbs.reg_mr(server_pd, pool.addr,
                                                 pool.length,
                                                 AccessFlags.all_remote())
        conn = yield listener.accepted.get()
        qp = conn.qp
        # Pre-post the receive ring.
        for slot in range(RECV_DEPTH):
            yield server_host.verbs.post_recv(qp, WorkRequest(
                opcode=Opcode.RECV, length=SIZE + 64,
                local_addr=pool.addr + slot * (SIZE + 64)))
        served = 0
        while served < ITERATIONS:
            completions = server_host.verbs.poll_cq(qp.recv_cq)
            if not completions:
                yield sim.timeout(200)
                continue
            for completion in completions:
                if completion.opcode is not Opcode.RECV:
                    continue
                served += 1
                # Replenish the consumed receive before answering.
                yield server_host.verbs.post_recv(qp, WorkRequest(
                    opcode=Opcode.RECV, length=SIZE + 64,
                    local_addr=completion.addr))
                yield server_host.verbs.post_send(qp, WorkRequest(
                    opcode=Opcode.SEND, length=completion.byte_len,
                    signaled=False))
        # Teardown is part of the ritual too: deregister, then free.
        yield server_host.verbs.dereg_mr(server_pd, pool_mr)
        server_host.memory.free(pool.addr)

    # ---- client side: PD, CQ, MR, connect, ping loop ---------------------
    client_pd = client_host.verbs.alloc_pd()
    client_cq = client_host.verbs.create_cq(depth=256)

    def client_loop():
        send_buf = client_host.memory.alloc(SIZE)
        send_mr = yield client_host.verbs.reg_mr(client_pd, send_buf.addr,
                                                 send_buf.length,
                                                 AccessFlags.all_remote())
        recv_pool = client_host.memory.alloc(RECV_DEPTH * (SIZE + 64))
        recv_mr = yield client_host.verbs.reg_mr(client_pd, recv_pool.addr,
                                                 recv_pool.length,
                                                 AccessFlags.all_remote())
        conn = yield from client_host.cm.connect(
            1, 7000, client_pd, client_cq, client_cq)
        qp = conn.qp
        for slot in range(RECV_DEPTH):
            yield client_host.verbs.post_recv(qp, WorkRequest(
                opcode=Opcode.RECV, length=SIZE + 64,
                local_addr=recv_pool.addr + slot * (SIZE + 64)))
        for _ in range(ITERATIONS):
            t0 = sim.now
            yield client_host.verbs.post_send(qp, WorkRequest(
                opcode=Opcode.SEND, length=SIZE,
                local_addr=send_buf.addr, signaled=False))
            # Spin on the CQ for the pong.
            while True:
                completions = client_host.verbs.poll_cq(qp.recv_cq)
                if completions:
                    break
                yield sim.timeout(200)
            yield client_host.verbs.post_recv(qp, WorkRequest(
                opcode=Opcode.RECV, length=SIZE + 64,
                local_addr=completions[0].addr))
            latencies.append((sim.now - t0) / 2)
        # Release in reverse order of the setup ritual.
        yield client_host.verbs.dereg_mr(client_pd, recv_mr)
        yield client_host.verbs.dereg_mr(client_pd, send_mr)
        client_host.memory.free(recv_pool.addr)
        client_host.memory.free(send_buf.addr)

    sim.spawn(server_loop())
    done = sim.spawn(client_loop())
    sim.run_until_event(done, limit=60 * SECONDS)

    mean_us = sum(latencies) / len(latencies) / 1000
    print(f"{ITERATIONS} ping-pongs of {SIZE} B over raw verbs")
    print(f"mean one-way latency: {mean_us:.2f} us")


if __name__ == "__main__":
    main()
