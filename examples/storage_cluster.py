"""A scaled-down Pangu/ESSD storage cluster (the Sec. II-C workload).

Builds a Clos fabric, deploys block servers and chunk servers, runs an
ESSD front-end and an X-DB front-end against them, and prints the
utilization/latency picture plus XR-Stat's per-channel table.

Run:  python examples/storage_cluster.py
"""

from statistics import mean

from repro.apps import EssdFrontend, PanguDeployment, XdbFrontend
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.tools import XrStat


def main():
    cluster = build_cluster(n_hosts=10, tors_per_pod=2, hosts_per_tor=5)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[2, 3, 4, 5], replicas=3)

    elapsed_ns = deployment.establish_mesh()
    print(f"full mesh of {deployment.total_connections} connections "
          f"established in {elapsed_ns / 1e6:.1f} ms")

    essd = EssdFrontend(cluster, host_id=6, block_server_host=0,
                        io_bytes=128 * 1024, queue_depth=8)
    xdb = XdbFrontend(cluster, host_id=7, block_server_host=1)

    essd_proc = cluster.sim.spawn(essd.run_closed_loop(400))
    xdb_proc = cluster.sim.spawn(xdb.run_transactions(200))
    cluster.sim.run_until_event(
        cluster.sim.all_of([essd_proc, xdb_proc]),
        limit=cluster.sim.now + 120 * SECONDS)

    essd_latencies = [lat for _, lat in essd.completions]
    xdb_latencies = [lat for _, lat in xdb.txn_completions]
    print(f"ESSD: {len(essd_latencies)} x 128 KB writes, "
          f"mean latency {mean(essd_latencies) / 1000:.0f} us")
    print(f"X-DB: {len(xdb_latencies)} transactions, "
          f"mean latency {mean(xdb_latencies) / 1000:.0f} us")
    replicated = sum(cs.chunks_written for cs in deployment.chunk_servers)
    print(f"chunk servers persisted {replicated} chunk writes "
          f"(3-way replication)")

    stat = XrStat(cluster)
    for block_server in deployment.block_servers:
        stat.attach(block_server.ctx)
    print()
    print(stat.format())


if __name__ == "__main__":
    main()
