"""Incast with and without X-RDMA's flow control (the Fig. 10 story).

32 connections blast 128 KB messages at one sink over shallow-buffered
switches; we print goodput and the fabric's crucial indexes with flow
control off and on.

Run:  python examples/incast_flow_control.py
"""

from repro.cluster import build_cluster
from repro.sim.params import congested_params
from repro.tools import XrPerf
from repro.xrdma import XrdmaConfig

SOURCES = [src for src in range(8) for _ in range(4)]
SINK = 8


def run(flow_control: bool):
    cluster = build_cluster(9, params=congested_params())
    perf = XrPerf(cluster)
    result = perf.run_incast(
        SOURCES, SINK, size=128 * 1024, messages_per_source=15,
        config=XrdmaConfig(flow_control=flow_control))
    return result


def main():
    baseline = run(flow_control=False)
    with_fc = run(flow_control=True)

    print(f"{'':<16}{'goodput':>10}{'CNP':>8}{'TX pause':>10}{'retx':>7}")
    for name, result in (("no flow control", baseline),
                         ("with fc", with_fc)):
        print(f"{name:<16}{result.goodput_gbps:>8.2f}Gb"
              f"{result.crucial['cnps_sent']:>8}"
              f"{result.crucial['pause_frames']:>10}"
              f"{result.crucial['retransmissions']:>7}")
    gain = with_fc.goodput_gbps / baseline.goodput_gbps - 1
    print(f"\nflow control improves goodput by {gain:.0%} "
          f"(paper: ~24%), CNPs fall to "
          f"{with_fc.crucial['cnps_sent'] / baseline.crucial['cnps_sent']:.0%}"
          f" of baseline, pause frames to "
          f"{with_fc.crucial['pause_frames']} "
          f"(from {baseline.crucial['pause_frames']})")


if __name__ == "__main__":
    main()
