"""ERPC: the protobuf RPC framework over X-RDMA (Sec. VII-B).

A small key-value service: typed methods, serialization costs, error
propagation and bulk responses over the rendezvous path — all in a page
of application code, which is the Sec. VII-B point ("saved at least 70%
of man-month from development to maintenance").

Run:  python examples/erpc_service.py
"""

from repro.apps import ErpcClient, ErpcError, ErpcServer, ErpcService
from repro.cluster import build_cluster
from repro.sim import SECONDS


def main():
    cluster = build_cluster(n_hosts=2)

    # ---- service definition ---------------------------------------------
    kv = ErpcService("kv")
    store = {}

    @kv.method
    def put(request):
        store[request["key"]] = request["value"]
        return {"ok": True}, 64

    @kv.method
    def get(request):
        return {"value": store[request["key"]]}, 256

    @kv.method
    def scan(request):
        # A bulk response: travels via announce + RDMA Read automatically.
        return {"rows": len(store)}, 2 << 20

    server = ErpcServer(cluster.xrdma_context(1))
    server.register(kv)
    server.serve(port=9800)

    # ---- client ----------------------------------------------------------
    client = ErpcClient(cluster.xrdma_context(0))

    def scenario():
        yield from client.connect(1, 9800)
        for key in ("alpha", "beta", "gamma"):
            yield from client.call("kv.put", {"key": key, "value": key.upper()},
                                   request_bytes=128)
        reply = yield from client.call("kv.get", {"key": "beta"},
                                       request_bytes=64)
        print(f"kv.get(beta) -> {reply['value']}")
        t0 = cluster.sim.now
        reply = yield from client.call("kv.scan", {}, request_bytes=64)
        elapsed_us = (cluster.sim.now - t0) / 1000
        print(f"kv.scan -> {reply['rows']} rows, 2 MiB response "
              f"in {elapsed_us:.0f} us (rendezvous read)")
        try:
            yield from client.call("kv.missing", {}, request_bytes=64)
        except ErpcError as error:
            print(f"kv.missing -> ErpcError: {error}")

    done = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(done, limit=60 * SECONDS)
    print(f"server served {server.calls_served} calls, "
          f"{server.errors_returned} errors")


if __name__ == "__main__":
    main()
