"""The analysis framework end to end (Sec. VI).

* req-rsp tracing with clock-synced network-time decomposition,
* the poll-gap watchdog catching an injected application stall
  (the Sec. VII-D allocator-lock case study),
* Filter dropping messages on demand,
* Mock falling back to TCP and returning.

Run:  python examples/tracing_and_faults.py
"""

from repro.analysis import ClockSync, Filter, Mock, Tracer
from repro.analysis.faultfilter import FaultRule
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig


def main():
    cluster = build_cluster(2)
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(7100)

    sync = ClockSync(cluster.rng)
    client_tracer = Tracer(client, sync)
    server_tracer = Tracer(server, sync)
    print(f"host clocks skewed by "
          f"{abs(sync.true_offset(0, 1)) / 1000:.0f} us; "
          f"sync residual bound {sync.RESIDUAL_BOUND_NS / 1000:.1f} us")

    def scenario():
        channel = yield from client.connect(1, 7100)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)

        # 1) Traced request: decompose where the time went.
        request = client.send_request(channel, 4096)
        yield request.response
        record = next(iter(server_tracer.records.values()))
        print(f"traced request: network time {record.network_ns / 1000:.2f} "
              f"us of the end-to-end path")

        # 2) Stall the client thread; the watchdog must notice.
        client.inject_stall(2 * MILLIS)
        yield cluster.sim.timeout(30 * MILLIS)
        gap = client_tracer.poll_gap_log[-1]
        print(f"poll watchdog flagged a {gap.duration_ns / 1e6:.1f} ms gap "
              f"(threshold {config.polling_warn_cycle_ns / 1e6:.1f} ms)")

        # 3) Drop a message via the Filter.
        server.filter = Filter(cluster.rng.stream("demo"))
        rule = server.filter.add_rule(FaultRule(drop_probability=1.0))
        client.send_msg(channel, 64)
        yield cluster.sim.timeout(20 * MILLIS)
        print(f"filter dropped {server.filter.dropped} message(s); "
              f"application saw {len(server.incoming.items)}")
        rule.enabled = False

        # 4) Fall back to TCP via Mock, then return to RDMA.
        mock = Mock(cluster)
        yield from mock.engage(client, channel, server, server_channel)
        request = client.send_request(channel, 4096)
        response = yield request.response
        print(f"mock: request answered over TCP "
              f"({response.payload_size} B response)")
        mock.disengage(channel)
        mock.disengage(server_channel)

    done = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(done, limit=60 * SECONDS)
    print("analysis framework demo complete")


if __name__ == "__main__":
    main()
