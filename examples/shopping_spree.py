"""The annual sales event, scaled down (Sec. VII: "the peak throughput
reaches 35.78 million requests per second during the shopping spree").

ESSD and X-DB front-ends ride a pressure profile that triples the load
mid-run; the Monitor records the series and the terminal shows the
dashboard shapes of Figs. 3/12 as sparklines.

Run:  python examples/shopping_spree.py
"""

from statistics import mean

from repro.analysis import Monitor, series_panel
from repro.apps import EssdFrontend, PanguDeployment, XdbFrontend
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.workloads.traces import burst_profile

DURATION = 900 * MILLIS
BURST_START = 300 * MILLIS
BURST_LEN = 300 * MILLIS


def main():
    cluster = build_cluster(10)
    monitor = Monitor(cluster.sim, cluster.stats,
                      sample_interval_ns=30 * MILLIS)
    monitor.start_fabric_sampler(30 * MILLIS)

    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[2, 3, 4, 5], replicas=3)
    deployment.establish_mesh()
    for block_server in deployment.block_servers:
        monitor.attach(block_server.ctx)

    essd = EssdFrontend(cluster, host_id=6, block_server_host=0,
                        io_bytes=128 * 1024)
    xdb = XdbFrontend(cluster, host_id=7, block_server_host=1)
    essd_profile = burst_profile(DURATION, base=400, burst=1200,
                                 burst_start_ns=BURST_START,
                                 burst_len_ns=BURST_LEN)
    xdb_profile = burst_profile(DURATION, base=250, burst=750,
                                burst_start_ns=BURST_START,
                                burst_len_ns=BURST_LEN)
    cluster.sim.spawn(essd.run_profile(essd_profile, DURATION))
    cluster.sim.spawn(xdb.run_profile(xdb_profile, DURATION))
    cluster.sim.run(until=DURATION + 100 * MILLIS)

    print(series_panel("ESSD IOPS", essd.iops_timeline(50 * MILLIS)))
    print(series_panel("X-DB TPS", xdb.tps_timeline(50 * MILLIS)))
    ctx = deployment.block_servers[0].ctx
    rx = monitor.series[f"ctx{ctx.ctx_id}.rx_bytes"]
    rates = [(t, v) for (t, v) in zip(
        [t for t, _ in rx[1:]], monitor.rate_per_second(
            f"ctx{ctx.ctx_id}.rx_bytes"))]
    print(series_panel("block0 ingest B/s", rates))

    calm = essd.latencies_in(50 * MILLIS, BURST_START)
    burst = essd.latencies_in(BURST_START, BURST_START + BURST_LEN)
    print(f"\nESSD latency: calm mean {mean(calm) / 1000:.0f} us, "
          f"under 3x pressure {mean(burst) / 1000:.0f} us "
          f"(anti-jitter: no significant increment)")
    snapshot = cluster.stats.snapshot()
    print(f"fabric: cnp={snapshot['cnps_sent']} "
          f"pause={snapshot['pause_frames']} drops={snapshot['drops']} "
          f"rnr={snapshot['rnr_naks']}")


if __name__ == "__main__":
    main()
