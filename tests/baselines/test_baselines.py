"""Baseline middlewares and the TCP stack."""

from statistics import mean

import pytest

from repro.baselines import (IbvPingPong, LibfabricEndpoint,
                             RsocketEndpoint, UcxEndpoint, XioEndpoint)
from repro.baselines.common import run_pingpong
from repro.baselines.tcpstack import TcpAgent, TcpError
from repro.cluster import build_cluster
from repro.sim import MICROS, MILLIS, SECONDS
from tests.conftest import run_process


# ------------------------------------------------------------- middlewares

def test_ibv_pingpong_latency_calibration():
    cluster = build_cluster(2)
    latencies = run_pingpong(cluster, IbvPingPong, size=64, iterations=20)
    one_way_us = mean(latencies) / 1000
    # Calibration target: ~5 µs one-way at 64 B (paper's Fig. 7 range).
    assert 4.0 < one_way_us < 6.5


def test_middleware_ordering_matches_paper():
    results = {}
    for cls in (IbvPingPong, UcxEndpoint, LibfabricEndpoint, XioEndpoint):
        cluster = build_cluster(2)
        latencies = run_pingpong(cluster, cls, size=64, iterations=16)
        results[cls.NAME] = mean(latencies)
    assert results["ibv-pingpong"] < results["ucx-am-rc"]
    assert results["ucx-am-rc"] < results["libfabric"]
    assert results["libfabric"] < results["xio"]


def test_rsocket_sits_between_middleware_and_tcp():
    """Related work: a thin socket wrapper — slower than UCX (copies),
    far faster than kernel TCP."""
    rsocket = mean(run_pingpong(build_cluster(2), RsocketEndpoint, 4096, 16))
    ucx = mean(run_pingpong(build_cluster(2), UcxEndpoint, 4096, 16))
    assert rsocket > ucx
    # TCP RTT for the same size is dominated by per-message syscalls.
    cluster = build_cluster(2)
    agent_a = TcpAgent(cluster.sim, cluster.params, cluster.host(0).nic)
    agent_b = TcpAgent(cluster.sim, cluster.params, cluster.host(1).nic)
    listener = agent_b.listen(5000)

    def tcp_roundtrip():
        socket = yield from agent_a.connect(1, 5000)
        peer = yield listener.accepted.get()
        t0 = cluster.sim.now
        yield from socket.send(4096)
        yield peer.recv()
        yield from peer.send(4096)
        yield socket.recv()
        return (cluster.sim.now - t0) // 2

    tcp = run_process(cluster, tcp_roundtrip(), limit=SECONDS)
    assert rsocket < tcp


def test_xio_copy_cost_scales_with_size():
    small = mean(run_pingpong(build_cluster(2), XioEndpoint, 64, 16))
    large = mean(run_pingpong(build_cluster(2), XioEndpoint, 16384, 16))
    ucx_small = mean(run_pingpong(build_cluster(2), UcxEndpoint, 64, 16))
    ucx_large = mean(run_pingpong(build_cluster(2), UcxEndpoint, 16384, 16))
    # xio's per-byte copies make its size-scaling worse than ucx's.
    assert (large - small) > (ucx_large - ucx_small)


# ---------------------------------------------------------------- TCP stack

@pytest.fixture
def tcp_pair():
    cluster = build_cluster(2)
    agent_a = TcpAgent(cluster.sim, cluster.params, cluster.host(0).nic)
    agent_b = TcpAgent(cluster.sim, cluster.params, cluster.host(1).nic)
    return cluster, agent_a, agent_b


def test_tcp_connect_is_fast(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair
    agent_b.listen(5000)
    t0 = cluster.sim.now

    def connector():
        socket = yield from agent_a.connect(1, 5000)
        return socket

    socket = run_process(cluster, connector(), limit=SECONDS)
    elapsed_us = (cluster.sim.now - t0) / 1000
    # Paper Sec. III: ~100 µs for TCP vs ~4 ms for rdma_cm.
    assert 90 < elapsed_us < 300
    assert socket.remote_host == 1


def test_tcp_send_recv_roundtrip(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair
    listener = agent_b.listen(5000)

    def scenario():
        socket = yield from agent_a.connect(1, 5000)
        peer = yield listener.accepted.get()
        yield from socket.send(100_000, payload={"k": 1})
        nbytes, payload = yield peer.recv()
        return nbytes, payload

    nbytes, payload = run_process(cluster, scenario(), limit=SECONDS)
    assert nbytes == 100_000
    assert payload == {"k": 1}


def test_tcp_connect_refused(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair

    def connector():
        yield from agent_a.connect(1, 5999)

    with pytest.raises(TcpError, match="refused"):
        run_process(cluster, connector(), limit=SECONDS)


def test_tcp_connect_to_dead_host_times_out(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair
    cluster.host(1).nic.crash()

    def connector():
        yield from agent_a.connect(1, 5000, timeout_ns=20 * MILLIS)

    with pytest.raises(TcpError, match="timed out"):
        run_process(cluster, connector(), limit=SECONDS)


def test_tcp_close_propagates(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair
    listener = agent_b.listen(5000)

    def scenario():
        socket = yield from agent_a.connect(1, 5000)
        peer = yield listener.accepted.get()
        socket.close()
        yield cluster.sim.timeout(1 * MILLIS)
        return socket, peer

    socket, peer = run_process(cluster, scenario(), limit=SECONDS)
    assert socket.closed
    assert peer.closed


def test_tcp_send_on_closed_socket_raises(tcp_pair):
    cluster, agent_a, agent_b = tcp_pair
    listener = agent_b.listen(5000)

    def scenario():
        socket = yield from agent_a.connect(1, 5000)
        socket.close()
        yield from socket.send(10)

    with pytest.raises(TcpError):
        run_process(cluster, scenario(), limit=SECONDS)


def test_tcp_slower_than_rdma_for_bulk(tcp_pair):
    """Sanity: the fallback path really is the slow path."""
    cluster, agent_a, agent_b = tcp_pair
    listener = agent_b.listen(5000)

    def scenario():
        socket = yield from agent_a.connect(1, 5000)
        peer = yield listener.accepted.get()
        t0 = cluster.sim.now
        yield from socket.send(1 << 20)
        yield peer.recv()
        return cluster.sim.now - t0

    elapsed = run_process(cluster, scenario(), limit=SECONDS)
    # 1 MB at ~0.35 ns/B of copies each side + wire: ≥ 0.9 ms.
    assert elapsed > 900 * MICROS
