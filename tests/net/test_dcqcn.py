"""Unit tests for the DCQCN rate controller and CNP governor."""

from repro.sim import SimParams, Simulator
from repro.transport import CnpGovernor, DcqcnRateLimiter

LINE = 25e9


def make(params=None):
    sim = Simulator()
    return sim, DcqcnRateLimiter(sim, params or SimParams(), LINE)


def advance(sim, ns):
    sim.spawn(_sleep(sim, ns))
    sim.run()


def _sleep(sim, ns):
    yield sim.timeout(ns)


def test_starts_at_line_rate():
    _, limiter = make()
    assert limiter.rate_bps() == LINE


def test_cnp_cuts_rate():
    _, limiter = make()
    limiter.on_cnp()
    # alpha starts at 1.0, so the first cut halves the rate (alpha/2 ≈ 0.5).
    assert limiter.rate_bps() < 0.6 * LINE


def test_repeated_cnps_cut_further():
    sim, limiter = make()
    limiter.on_cnp()
    r1 = limiter.current_rate
    advance(sim, 10_000)
    limiter.on_cnp()
    assert limiter.current_rate < r1


def test_rate_never_below_floor():
    params = SimParams()
    sim, limiter = make(params)
    for _ in range(200):
        limiter.on_cnp()
    assert limiter.current_rate >= params.dcqcn_min_rate_bps


def test_rate_recovers_after_quiet_period():
    params = SimParams()
    sim, limiter = make(params)
    limiter.on_cnp()
    cut = limiter.current_rate
    advance(sim, 50 * params.dcqcn_rate_increase_ns)
    assert limiter.rate_bps() > cut


def test_recovery_is_capped_at_line_rate():
    params = SimParams()
    sim, limiter = make(params)
    limiter.on_cnp()
    advance(sim, 10_000 * params.dcqcn_rate_increase_ns)
    assert limiter.rate_bps() <= LINE


def test_alpha_decays_without_cnps():
    params = SimParams()
    sim, limiter = make(params)
    limiter.on_cnp()
    alpha_after_cnp = limiter.alpha
    advance(sim, 100 * params.dcqcn_alpha_update_ns)
    limiter.rate_bps()  # triggers lazy advance
    assert limiter.alpha < alpha_after_cnp


def test_reserve_paces_transmissions():
    sim, limiter = make()
    limiter.on_cnp()  # rate ≈ line/2
    rate = limiter.rate_bps()
    t0 = limiter.reserve(4096)
    t1 = limiter.reserve(4096)
    expected_gap = 4096 * 8 / rate * 1e9
    assert t0 == 0
    assert abs((t1 - t0) - expected_gap) <= 1


def test_reserve_at_line_rate_has_no_extra_gap():
    sim, limiter = make()
    t0 = limiter.reserve(4096)
    t1 = limiter.reserve(4096)
    assert (t1 - t0) * 1e-9 * LINE / 8 - 4096 < 1


def test_reserve_disabled_returns_now():
    params = SimParams(dcqcn_enabled=False)
    sim, limiter = make(params)
    limiter.on_cnp()
    assert limiter.reserve(1 << 20) == 0
    assert limiter.reserve(1 << 20) == 0


def test_cnp_governor_rate_limits_per_flow():
    sim = Simulator()
    params = SimParams()
    governor = CnpGovernor(sim, params)
    assert governor.should_send_cnp(1)
    assert not governor.should_send_cnp(1)   # too soon
    assert governor.should_send_cnp(2)       # other flow is independent
    sim.spawn(_sleep(sim, params.dcqcn_cnp_interval_ns + 1))
    sim.run()
    assert governor.should_send_cnp(1)
