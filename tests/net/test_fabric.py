"""Integration tests for links, switches, topology, ECN and PFC."""

import pytest

from repro.net import NetStats, Segment, SegmentKind
from repro.net.hosts import SimpleHost
from repro.sim import RngRegistry, SimParams, Simulator
from repro.sim.params import congested_params
from repro.topology import ClosTopology


def make_fabric(params=None, seed=0, **dims):
    sim = Simulator()
    params = params or SimParams()
    stats = NetStats()
    rng = RngRegistry(seed)
    dims.setdefault("n_pods", 1)
    dims.setdefault("leaves_per_pod", 1)
    dims.setdefault("tors_per_pod", 1)
    dims.setdefault("hosts_per_tor", 4)
    dims.setdefault("n_spines", 1)
    topo = ClosTopology(sim, params, stats, rng, **dims)
    hosts = []
    for h in range(topo.n_hosts):
        host = SimpleHost(h)
        host.plug_into(topo)
        hosts.append(host)
    return sim, params, stats, topo, hosts


def test_segment_delivery_same_tor():
    sim, params, stats, topo, hosts = make_fabric()
    hosts[0].send(Segment(src=0, dst=1, size=1000))
    sim.run()
    assert len(hosts[1].received) == 1
    assert hosts[1].received[0].size == 1000
    assert hosts[1].received[0].hops == 1


def test_delivery_latency_matches_model():
    sim, params, stats, topo, hosts = make_fabric()
    hosts[0].send(Segment(src=0, dst=1, size=1000))
    sim.run()
    # host ser + prop + (tor ser + prop): two serializations, two propagations
    ser = int(round((1000 + params.header_bytes) * 8
                    / params.link_bandwidth_bps * 1e9))
    expected = 2 * (ser + params.link_propagation_ns)
    assert sim.now == pytest.approx(expected, rel=0.01)


def test_cross_tor_goes_through_leaf():
    sim, params, stats, topo, hosts = make_fabric(
        tors_per_pod=2, hosts_per_tor=2)
    hosts[0].send(Segment(src=0, dst=3, size=500))
    sim.run()
    assert len(hosts[3].received) == 1
    assert hosts[3].received[0].hops == 3  # tor, leaf, tor


def test_cross_pod_goes_through_spine():
    sim, params, stats, topo, hosts = make_fabric(
        n_pods=2, tors_per_pod=1, hosts_per_tor=2,
        leaves_per_pod=2, n_spines=2)
    hosts[0].send(Segment(src=0, dst=2, size=500))
    sim.run()
    assert len(hosts[2].received) == 1
    assert hosts[2].received[0].hops == 5  # tor, leaf, spine, leaf, tor


def test_path_hops_helper():
    _, _, _, topo, _ = make_fabric(
        n_pods=2, tors_per_pod=2, hosts_per_tor=2,
        leaves_per_pod=2, n_spines=2)
    assert topo.path_hops(0, 0) == 0
    assert topo.path_hops(0, 1) == 1
    assert topo.path_hops(0, 2) == 3
    assert topo.path_hops(0, 4) == 5


def test_many_flows_all_delivered():
    sim, params, stats, topo, hosts = make_fabric(
        tors_per_pod=2, hosts_per_tor=4, leaves_per_pod=2)
    n = 0
    for src in range(8):
        for dst in range(8):
            if src == dst:
                continue
            hosts[src].send(Segment(src=src, dst=dst, size=200,
                                    flow_id=src * 8 + dst))
            n += 1
    sim.run()
    assert sum(len(h.received) for h in hosts) == n


def test_ecmp_spreads_flows_across_uplinks():
    sim, params, stats, topo, hosts = make_fabric(
        tors_per_pod=2, hosts_per_tor=2, leaves_per_pod=4)
    # Many distinct flows from host 0 to host 2 (cross-ToR).
    for flow in range(64):
        hosts[0].send(Segment(src=0, dst=2, size=100, flow_id=flow))
    sim.run()
    tor = topo.tors[0]
    used_uplinks = {
        p for p in range(topo.hosts_per_tor,
                         topo.hosts_per_tor + topo.leaves_per_pod)
        if tor.ports[p].tx_segments > 0
    }
    assert len(used_uplinks) >= 2  # hashing spreads over multiple uplinks


def test_same_flow_stays_on_one_path():
    sim, params, stats, topo, hosts = make_fabric(
        tors_per_pod=2, hosts_per_tor=2, leaves_per_pod=4)
    for _ in range(32):
        hosts[0].send(Segment(src=0, dst=2, size=100, flow_id=7))
    sim.run()
    tor = topo.tors[0]
    used = [p for p in range(2, 6) if tor.ports[p].tx_segments > 0]
    assert len(used) == 1


def test_unattached_destination_raises():
    sim = Simulator()
    params, stats, rng = SimParams(), NetStats(), RngRegistry(0)
    topo = ClosTopology(sim, params, stats, rng, n_pods=1, leaves_per_pod=1,
                        tors_per_pod=1, hosts_per_tor=2, n_spines=1)
    host = SimpleHost(0)
    host.plug_into(topo)
    host.send(Segment(src=0, dst=1, size=10))
    with pytest.raises(Exception):
        sim.run()


def test_double_attach_rejected():
    sim, params, stats, topo, hosts = make_fabric()
    with pytest.raises(ValueError):
        SimpleHost(0).plug_into(topo)


def test_buffer_overflow_drops_when_pfc_disabled():
    params = congested_params()
    sim, params, stats, topo, hosts = make_fabric(params=params)
    for tor in topo.tors:
        tor.pfc_enabled = False
    # Three senders blast one receiver: egress port 3 of the ToR overflows.
    for src in (0, 1, 2):
        for i in range(200):
            hosts[src].send(Segment(src=src, dst=3, size=4096,
                                    flow_id=src, ecn_capable=False))
    sim.run()
    assert stats.drops > 0
    total = sum(len(h.received) for h in hosts)
    assert total + stats.drops == 600


def test_pfc_prevents_drops_under_incast():
    params = congested_params()
    sim, params, stats, topo, hosts = make_fabric(params=params)
    for src in (0, 1, 2):
        for i in range(200):
            hosts[src].send(Segment(src=src, dst=3, size=4096,
                                    flow_id=src, ecn_capable=False))
    sim.run()
    assert stats.drops == 0
    assert stats.pause_frames > 0
    assert stats.resume_frames > 0
    assert len(hosts[3].received) == 600


def test_ecn_marks_appear_under_congestion():
    params = congested_params()
    sim, params, stats, topo, hosts = make_fabric(params=params)
    for src in (0, 1, 2):
        for i in range(100):
            hosts[src].send(Segment(src=src, dst=3, size=4096, flow_id=src))
    sim.run()
    assert stats.ecn_marks > 0
    marked = [s for s in hosts[3].received if s.ecn_marked]
    assert marked


def test_no_ecn_marks_when_uncongested():
    sim, params, stats, topo, hosts = make_fabric()
    hosts[0].send(Segment(src=0, dst=1, size=1000))
    sim.run()
    assert stats.ecn_marks == 0


def test_pause_frames_gate_host_uplink():
    params = congested_params()
    sim, params, stats, topo, hosts = make_fabric(params=params)
    for i in range(300):
        hosts[0].send(Segment(src=0, dst=3, size=4096, ecn_capable=False))
    for i in range(300):
        hosts[1].send(Segment(src=1, dst=3, size=4096, ecn_capable=False))
    sim.run()
    # With PFC on, the host uplinks must have been paused at least once.
    assert stats.pause_frames > 0
    assert not hosts[0].uplink.paused  # resumed by end of run
    assert len(hosts[3].received) == 600


def test_clos_dimension_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClosTopology(sim, SimParams(), NetStats(), RngRegistry(0),
                     n_pods=0)


def test_negative_segment_size_rejected():
    with pytest.raises(ValueError):
        Segment(src=0, dst=1, size=-1)
