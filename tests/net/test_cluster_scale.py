"""Cluster-scale topology defects: multi-pod sizing, slot defaults,
priority-class PFC, and the flyweight routing path enumeration."""

import pytest

from repro.cluster import build_cluster, fabric_footprint
from repro.net import NetStats, Segment
from repro.sim import RngRegistry, SimParams, Simulator
from repro.switching.switch import LOCAL_PORT
from repro.tools.xr_perf import XrPerf
from repro.topology import ClosTopology
from repro.topology.clos import _HostSlot

from tests.net.test_fabric import make_fabric


# ------------------------------------------------- multi-pod sizing defect
def test_multipod_defaults_distribute_hosts_across_pods():
    # Regression: defaulted dims used to be computed as if single-pod,
    # packing all hosts into pod 0 and leaving the spines idle.
    cluster = build_cluster(n_hosts=32, n_pods=2, n_spines=2)
    topo = cluster.topology
    pods = {topo.host_pod(host.host_id) for host in cluster.hosts}
    assert pods == {0, 1}
    assert topo.n_hosts == 32          # capacity fits exactly, no slack pod


def test_multipod_cross_pod_traffic_reaches_spines():
    cluster = build_cluster(n_hosts=32, n_pods=2, n_spines=2)
    topo = cluster.topology
    src, dst = 0, 31                   # opposite pods under fixed sizing
    assert topo.host_pod(src) != topo.host_pod(dst)
    perf = XrPerf(cluster)
    perf.run_incast([src], dst, size=16 * 1024, messages_per_source=2)
    spine_bytes = sum(port.tx_bytes for spine in topo.spines
                      for port in spine.ports)
    assert spine_bytes > 0


def test_single_pod_defaults_unchanged():
    # Digest safety: the n_pods=1 sizing must match the old arithmetic.
    topo = build_cluster(n_hosts=5).topology
    assert (topo.n_pods, topo.tors_per_pod,
            topo.hosts_per_tor, topo.n_spines) == (1, 1, 5, 1)
    topo = build_cluster(n_hosts=20).topology
    assert (topo.n_pods, topo.tors_per_pod, topo.hosts_per_tor) == (1, 2, 10)


def test_impossible_dimensions_raise():
    with pytest.raises(ValueError):
        build_cluster(n_hosts=10, tors_per_pod=1, hosts_per_tor=4)
    with pytest.raises(ValueError):
        build_cluster(n_hosts=64, n_pods=2, tors_per_pod=1,
                      hosts_per_tor=16)


# ------------------------------------------------------------ sparse attach
def test_sparse_attach_and_host_lookup():
    cluster = build_cluster(n_hosts=64, n_pods=2, n_spines=2,
                            attach_hosts=[0, 3, 40])
    assert [host.host_id for host in cluster.hosts] == [0, 3, 40]
    assert cluster.host(40).host_id == 40
    with pytest.raises(KeyError):
        cluster.host(5)                # in range, but never attached
    with pytest.raises(ValueError):
        build_cluster(n_hosts=16, attach_hosts=[20])


def test_fabric_footprint_flat_per_node():
    small = fabric_footprint(build_cluster(n_hosts=128, n_pods=1,
                                           tors_per_pod=8,
                                           hosts_per_tor=16,
                                           attach_hosts=[0]))
    big = fabric_footprint(build_cluster(n_hosts=512, n_pods=4,
                                         tors_per_pod=8, hosts_per_tor=16,
                                         n_spines=2, attach_hosts=[0]))
    # The flyweight guarantee: per-node fabric state does not grow with
    # the cluster (allow slack for fixed costs amortizing differently).
    assert big["fabric_bytes_per_node"] < small["fabric_bytes_per_node"] * 1.5
    assert big["attached_hosts"] == 1.0


# --------------------------------------------------------- _HostSlot defect
def test_host_slot_default_extra_ports_not_shared():
    # Regression: ``extra_down_ports: List[int] = None`` (a) crashed any
    # append on a default-constructed slot and (b) the naive fix of a
    # mutable [] default would alias one list across slots.
    a = _HostSlot(tor=None, tor_down_port=0)
    b = _HostSlot(tor=None, tor_down_port=1)
    assert a.extra_down_ports == []
    a.extra_down_ports.append(5)
    assert b.extra_down_ports == []


def test_attach_extra_port_through_default_slot():
    sim, params, stats, topo, hosts = make_fabric()
    uplink = topo.attach_extra_port(0, hosts[0], nic_port=1)
    assert uplink is not None
    assert len(topo._slots[0].extra_down_ports) == 1
    assert topo._slots[1].extra_down_ports == []


# -------------------------------------------------------- priority-class PFC
def test_pause_port_honours_priority_class():
    # Regression: Switch.pause_port discarded ``priority`` and gated the
    # whole port, so a pause for a class with no traffic stalled class 0.
    sim, params, stats, topo, hosts = make_fabric()
    tor = topo.tors[0]
    tor.pause_port(1, 3, True)         # gate class 3 on host 1's downlink
    hosts[0].send(Segment(src=0, dst=1, size=1000))        # class 0
    sim.run()
    assert len(hosts[1].received) == 1


def test_pause_port_gates_named_class():
    sim, params, stats, topo, hosts = make_fabric()
    tor = topo.tors[0]
    tor.pause_port(1, 0, True)
    hosts[0].send(Segment(src=0, dst=1, size=1000))
    sim.run()
    assert len(hosts[1].received) == 0
    tor.pause_port(1, 0, False)
    sim.run()
    assert len(hosts[1].received) == 1


def test_single_fifo_head_of_line_gate():
    sim, params, stats, topo, hosts = make_fabric()
    uplink = hosts[0].uplink
    uplink.set_paused(True, 0)
    hosts[0].send(Segment(src=0, dst=1, size=100, priority=1))
    sim.run()
    assert len(hosts[1].received) == 1     # unpaused class keeps flowing
    hosts[0].send(Segment(src=0, dst=1, size=100, priority=0))
    hosts[0].send(Segment(src=0, dst=1, size=100, priority=1))
    sim.run()
    # The port is one FIFO: the class-1 segment waits behind the gated
    # class-0 head (802.1Qbb head-of-line caveat).
    assert len(hosts[1].received) == 1
    uplink.set_paused(False, 0)
    sim.run()
    assert len(hosts[1].received) == 3
    assert not uplink.paused


def test_pause_all_is_legacy_whole_port_gate():
    sim, params, stats, topo, hosts = make_fabric()
    uplink = hosts[0].uplink
    uplink.set_paused(True)            # PAUSE_ALL default
    for priority in (0, 1, 5):
        hosts[0].send(Segment(src=0, dst=1, size=100, priority=priority))
    sim.run()
    assert len(hosts[1].received) == 0
    assert uplink.paused
    uplink.set_paused(False)
    sim.run()
    assert len(hosts[1].received) == 3


# ------------------------------------------------- flat PFC ingress arrays
def test_ingress_arrays_sized_with_trailing_local_slot():
    sim, params, stats, topo, hosts = make_fabric()
    tor = topo.tors[0]
    assert len(tor._ingress_bytes) == len(tor.ports) + 1
    assert len(tor._paused_upstream) == len(tor.ports) + 1
    segment = Segment(src=0, dst=1, size=500)
    tor.receive(segment, LOCAL_PORT)
    assert tor._ingress_bytes[-1] == 500   # harness slot, not port 0's
    assert tor._ingress_bytes[0] == 0
    sim.run()
    assert tor._ingress_bytes[-1] == 0     # settled on dequeue


# ------------------------------------------------------ flyweight routing
def test_switches_share_one_routing_table():
    sim, params, stats, topo, hosts = make_fabric(
        n_pods=2, tors_per_pod=2, hosts_per_tor=2,
        leaves_per_pod=2, n_spines=2)
    tables = {id(sw.routing)
              for sw in topo.tors + topo.leaves + topo.spines}
    assert tables == {id(topo.routing)}


def test_flow_path_matches_packet_route():
    sim, params, stats, topo, hosts = make_fabric(
        n_pods=2, tors_per_pod=2, hosts_per_tor=2,
        leaves_per_pod=2, n_spines=2)
    hosts[0].send(Segment(src=0, dst=5, size=300, flow_id=9))
    sim.run()
    hops = topo.routing.flow_path(9, 0, 5)
    assert len(hops) == 5                  # tor, leaf, spine, leaf, tor
    for role, index, port in hops:
        assert topo.switch_for(role, index).ports[port].tx_segments >= 1


def test_flow_path_handles_unattached_endpoints():
    sim = Simulator()
    topo = ClosTopology(sim, SimParams(), NetStats(), RngRegistry(0),
                        n_pods=2, tors_per_pod=2, hosts_per_tor=4,
                        leaves_per_pod=2, n_spines=2)
    hops = topo.routing.flow_path(1, 0, 9)     # nobody attached at all
    assert hops[0][0] == 0 and hops[-1][0] == 0      # ToR at both ends
    assert hops[-1][2] == 9 % topo.hosts_per_tor     # canonical down-port
    assert topo.routing.flow_path(1, 3, 3) == []
