"""Flow-aggregate background channels: path charging, residual capacity,
and analytic byte settlement."""

from types import SimpleNamespace

import pytest

from repro.net import Segment
from repro.net.aggregate import AggregateTraffic
from repro.switching.switch import Switch

from tests.net.test_fabric import make_fabric

GBPS = 1e9


def make_agg(**dims):
    sim, params, stats, topo, hosts = make_fabric(**dims)
    cluster = SimpleNamespace(sim=sim, topology=topo)
    return sim, params, topo, hosts, AggregateTraffic(cluster)


def test_flow_charges_every_path_port():
    sim, params, topo, hosts, agg = make_agg(
        n_pods=2, tors_per_pod=2, hosts_per_tor=2,
        leaves_per_pod=2, n_spines=2)
    flow = agg.add_flow(0, 5, rate_bps=2 * GBPS)
    assert agg.flush() == len(flow.path) == 5
    for role, index, port_index in flow.path:
        port = topo.switch_for(role, index).ports[port_index]
        assert port.background_bps == 2 * GBPS
        assert port.bandwidth_bps == port.base_bandwidth_bps - 2 * GBPS
        assert agg.port_load_bps(role, index, port_index) == 2 * GBPS


def test_residual_floors_at_five_percent():
    sim, params, topo, hosts, agg = make_agg()
    agg.add_flow(0, 1, rate_bps=100 * params.link_bandwidth_bps)
    agg.flush()
    down_port = topo.tors[0].ports[1]
    assert down_port.bandwidth_bps == \
        pytest.approx(down_port.base_bandwidth_bps * 0.05)


def test_settle_bytes_is_rate_times_elapsed():
    sim, params, topo, hosts, agg = make_agg()
    flow = agg.add_flow(0, 1, rate_bps=8 * GBPS)
    agg.flush()
    sim.run(until=1_000_000)                   # 1 ms
    total = agg.settle()
    assert total == pytest.approx(8 * GBPS * 1e-3 / 8)
    # Settling twice at the same instant must not double-count.
    assert agg.settle() == pytest.approx(total)
    assert flow.active


def test_stop_flow_restores_bandwidth_and_freezes_bytes():
    sim, params, topo, hosts, agg = make_agg()
    flow = agg.add_flow(0, 1, rate_bps=4 * GBPS)
    agg.flush()
    sim.run(until=2_000_000)                   # 2 ms
    agg.stop_flow(flow)
    agg.flush()
    down_port = topo.tors[0].ports[1]
    assert down_port.bandwidth_bps == down_port.base_bandwidth_bps
    assert not flow.active
    assert agg.active_flows() == 0
    frozen = agg.total_bytes()
    assert frozen == pytest.approx(4 * GBPS * 2e-3 / 8)
    sim.run(until=5_000_000)
    assert agg.settle() == pytest.approx(frozen)    # stopped flows accrue 0
    agg.stop_flow(flow)                             # idempotent
    assert agg.total_bytes() == pytest.approx(frozen)


def test_rates_sum_on_shared_ports():
    sim, params, topo, hosts, agg = make_agg()
    agg.add_flow(0, 1, rate_bps=1 * GBPS)
    agg.add_flow(2, 1, rate_bps=3 * GBPS)      # same destination down-port
    agg.flush()
    assert agg.port_load_bps(Switch.ROLE_TOR, 0, 1) == 4 * GBPS


def test_unattached_endpoints_do_not_need_devices():
    # One fleet shard charges background between hosts it never attached.
    sim, params, topo, hosts, agg = make_agg(
        n_pods=2, tors_per_pod=1, hosts_per_tor=4,
        leaves_per_pod=2, n_spines=2)
    # make_fabric attaches everyone; emulate sparseness via raw topology ids
    flow = agg.add_flow(1, 6, rate_bps=GBPS)
    assert any(role == Switch.ROLE_SPINE for role, _, _ in flow.path)
    agg.flush()


def test_background_slows_foreground_serialization():
    sim1, params, topo1, hosts1, _ = make_agg()
    hosts1[0].send(Segment(src=0, dst=1, size=64 * 1024))
    sim1.run()
    clean_ns = sim1.now

    sim2, params2, topo2, hosts2, agg = make_agg()
    agg.add_flow(2, 1, rate_bps=0.9 * params2.link_bandwidth_bps)
    agg.flush()
    hosts2[0].send(Segment(src=0, dst=1, size=64 * 1024))
    sim2.run()
    assert sim2.now > clean_ns * 2     # residual-capacity serialization


def test_negative_rate_rejected():
    sim, params, topo, hosts, agg = make_agg()
    with pytest.raises(ValueError):
        agg.add_flow(0, 1, rate_bps=-1.0)
