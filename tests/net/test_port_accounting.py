"""EgressPort accounting: occupancy and the dequeue-complete instant.

Regression for the PFC/ECN window bug: ``queued_bytes`` used to drop at
*pop* time, a full serialization delay before the segment left the port,
while the xon hook fired only after the wire was free — so occupancy-based
decisions saw bytes vanish while the link was still busy.  Both must move
at the dequeue-complete instant, together.
"""

from repro.net.packet import Segment
from repro.sim import SimParams, Simulator
from repro.topology.link import EgressPort


class _SinkDevice:
    def __init__(self):
        self.received = []

    def receive(self, segment, port):
        self.received.append(segment)


def make_port(sim, params, on_dequeue=None):
    port = EgressPort(sim, params, "tx0", on_dequeue=on_dequeue)
    port.connect(_SinkDevice(), 0)
    return port


def test_queued_bytes_drop_at_dequeue_complete():
    sim = Simulator()
    params = SimParams()
    dequeues = []
    port = make_port(sim, params,
                     on_dequeue=lambda seg: dequeues.append(
                         (sim.now, seg.size, port.queued_bytes)))
    seg_a = Segment(src=0, dst=1, size=1000)
    seg_b = Segment(src=0, dst=1, size=1000)
    ser = port._serialization_ns(seg_a)

    port.enqueue(seg_a)
    port.enqueue(seg_b)
    assert port.queued_bytes == 2000

    # Mid-serialization of the first segment: nothing has left the port
    # yet, so occupancy must still cover both segments (the old code had
    # already dropped to 1000 here).
    samples = []
    sim.call_at(ser - 1, lambda: samples.append(port.queued_bytes))
    sim.run()

    assert samples == [2000]
    # The xon hook fires exactly when each segment finishes serializing,
    # and sees the post-decrement occupancy at that same instant.
    assert dequeues == [(ser, 1000, 1000), (2 * ser, 1000, 0)]


def test_xon_hook_and_delivery_are_consistent():
    sim = Simulator()
    params = SimParams()
    hook_times = []
    port = make_port(sim, params,
                     on_dequeue=lambda seg: hook_times.append(sim.now))
    port.enqueue(Segment(src=0, dst=1, size=500))
    ser = port._serialization_ns(Segment(src=0, dst=1, size=500))
    sim.run()

    assert hook_times == [ser]
    assert port.peer.received[0].size == 500
    # Delivery lands one propagation after the dequeue-complete instant.
    assert sim.now == ser + params.link_propagation_ns
    assert port.queued_bytes == 0
    assert port.tx_segments == 1
    assert port.tx_bytes == 500


def test_persistent_tx_process_is_reused_across_idle_gaps():
    sim = Simulator()
    params = SimParams()
    port = make_port(sim, params)

    port.enqueue(Segment(src=0, dst=1, size=100))
    sim.run()
    assert port.tx_segments == 1
    assert port._tx_started and not port.busy
    assert port._wake is not None          # parked, not respawned

    # The Simulator is slotted, so observe spawns via the class (scoped).
    spawned = []
    original_spawn = Simulator.spawn
    try:
        Simulator.spawn = lambda self, *a, **kw: (
            spawned.append(a) or original_spawn(self, *a, **kw))
        port.enqueue(Segment(src=0, dst=1, size=100))
        sim.run()
    finally:
        Simulator.spawn = original_spawn

    assert port.tx_segments == 2
    assert spawned == []                   # the first burst's process served


def test_pause_mid_burst_keeps_bytes_accounted():
    sim = Simulator()
    params = SimParams()
    port = make_port(sim, params)
    seg = Segment(src=0, dst=1, size=1000)
    ser = port._serialization_ns(seg)

    port.enqueue(seg)
    port.enqueue(Segment(src=0, dst=1, size=1000))
    # Pause lands mid-serialization: the in-flight segment completes (PFC
    # acts at packet boundaries), the second stays queued and accounted.
    sim.call_at(ser // 2, lambda: port.set_paused(True))
    sim.run()
    assert port.tx_segments == 1
    assert port.queued_bytes == 1000
    assert not port.busy

    port.set_paused(False)
    sim.run()
    assert port.tx_segments == 2
    assert port.queued_bytes == 0
