"""No-pin (on-demand paging) mode: cheap registration, first-touch faults."""

from repro.memory.host import AllocMode
from repro.rnic.mr import AccessFlags
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache
from tests.conftest import run_process
from tests.xrdma.conftest import make_context

KB = 1024
MB = 1024 * 1024


def _nopin_cache(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    return host, MemCache(host.verbs, pd, mr_bytes=1 * MB, no_pin=True)


def _timed(cluster, generator):
    def proc():
        start = cluster.sim.now
        result = yield from generator
        return result, cluster.sim.now - start
    return run_process(cluster, proc())


def test_odp_registration_is_cheap(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    params = host.verbs.params

    def register(odp):
        addr = host.verbs.memory.alloc(1 * MB, AllocMode.ANONYMOUS).addr
        reg = host.verbs.reg_mr_odp if odp else host.verbs.reg_mr
        start = cluster.sim.now
        yield reg(pd, addr, 1 * MB, AccessFlags.all_remote())
        return cluster.sim.now - start

    pinned_ns = run_process(cluster, register(odp=False))
    odp_ns = run_process(cluster, register(odp=True))
    # ODP skips pinning: flat cost, far below the 1 MB pinned register.
    assert odp_ns == params.odp_register_ns
    assert pinned_ns == params.mr_register_ns(1 * MB)
    assert odp_ns < pinned_ns


def test_first_touch_pays_fault_latency(cluster):
    host, cache = _nopin_cache(cluster)
    params = host.verbs.params

    _, elapsed = _timed(cluster, cache.alloc(8 * KB))
    # Cold path: ODP registration plus a 2-page fault at hand-out.
    assert elapsed == params.odp_register_ns + params.odp_page_fault_ns(2)
    assert cache.page_faults == 1 and cache.pages_faulted == 2

    _, elapsed = _timed(cluster, cache.alloc(8 * KB))
    # Fresh pages of the same (already registered) arena: fault only.
    assert elapsed == params.odp_page_fault_ns(2)
    assert cache.pages_faulted == 4


def test_resident_pages_do_not_fault_again(cluster):
    host, cache = _nopin_cache(cluster)

    buffer, _ = _timed(cluster, cache.alloc(8 * KB))
    cache.free(buffer)
    faulted = cache.pages_faulted
    again, elapsed = _timed(cluster, cache.alloc(8 * KB))
    # First-fit hands back the same (now resident) pages: no fault.
    assert again.addr == buffer.addr
    assert elapsed == 0
    assert cache.pages_faulted == faulted


def test_pinned_mode_never_faults(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 * MB)

    _timed(cluster, cache.alloc(8 * KB))
    assert cache.page_faults == 0 and cache.pages_faulted == 0
    assert cache._arenas[0].resident_pages is None   # pinned: all resident


def test_config_wires_no_pin_and_mr_cache(cluster):
    ctx = make_context(cluster, 0, XrdmaConfig(
        memcache_no_pin=True, mr_reg_cache=True,
        mr_reg_cache_bytes=16 * MB))
    assert ctx.memcache.no_pin is True
    assert ctx.mr_reg_cache is not None
    assert ctx.memcache.mr_cache is ctx.mr_reg_cache
    assert ctx.mr_reg_cache.capacity_bytes == 16 * MB

    plain = make_context(cluster, 1)
    assert plain.memcache.no_pin is False
    assert plain.mr_reg_cache is None and plain.memcache.mr_cache is None
