"""MR registration cache: warm reuse, eviction, batched registration."""

import pytest

from repro.ctrlplane import MrRegCache
from repro.memory.host import AllocMode
from repro.xrdma.memcache import MemCache
from tests.conftest import run_process

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def setup(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MrRegCache(host.verbs, pd, capacity_bytes=8 * KB)
    return cluster, host, cache


def _addr_source(host, length):
    def source():
        return host.verbs.memory.alloc(length, AllocMode.ANONYMOUS).addr
    return source


def _acquire(cluster, host, cache, length):
    def proc():
        start = cluster.sim.now
        mr = yield from cache.acquire(length, _addr_source(host, length))
        return mr, cluster.sim.now - start
    return run_process(cluster, proc())


def test_acquire_miss_registers_at_full_cost(setup):
    cluster, host, cache = setup
    mr, elapsed = _acquire(cluster, host, cache, 4 * KB)
    assert cache.misses == 1 and cache.hits == 0
    assert host.verbs.mrs_registered == 1
    assert elapsed == host.verbs.params.mr_register_ns(4 * KB) > 0
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 4 * KB, write=True) is mr


def test_release_keeps_mr_warm_and_hit_is_free(setup):
    cluster, host, cache = setup
    mr, _ = _acquire(cluster, host, cache, 4 * KB)
    cache.release(mr)
    # Warm: still registered at the NIC, pages still pinned.
    assert len(cache) == 1 and cache.pinned_bytes == 4 * KB
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 4 * KB, write=True) is mr

    again, elapsed = _acquire(cluster, host, cache, 4 * KB)
    assert again is mr                       # same registration, reused
    assert elapsed == 0                      # zero driver cost on a hit
    assert cache.hits == 1
    assert host.verbs.mrs_registered == 1    # no new registration


def test_lookup_matches_exact_length_only(setup):
    cluster, host, cache = setup
    mr, _ = _acquire(cluster, host, cache, 4 * KB)
    cache.release(mr)
    assert cache.lookup(2 * KB) is None      # wrong size: cold miss
    assert cache.lookup(4 * KB) is mr


def test_eviction_past_capacity_deregisters_oldest(setup):
    cluster, host, cache = setup             # capacity_bytes = 8 KB
    mrs = [_acquire(cluster, host, cache, 4 * KB)[0] for _ in range(3)]
    for mr in mrs:
        cache.release(mr)
    # Third release overflowed the pinned budget: FIFO evicts the oldest.
    assert cache.evictions == 1
    assert cache.pinned_bytes == 8 * KB and len(cache) == 2
    evicted = mrs[0]
    assert host.nic.mr_table.check(evicted.rkey, evicted.addr,
                                   4 * KB, write=True) is None
    assert evicted.lkey not in cache.pd.mrs  # deregistered from the PD


def test_flush_deregisters_everything(setup):
    cluster, host, cache = setup
    mrs = [_acquire(cluster, host, cache, 4 * KB)[0] for _ in range(2)]
    for mr in mrs:
        cache.release(mr)
    assert cache.flush() == 2
    assert len(cache) == 0 and cache.pinned_bytes == 0
    for mr in mrs:
        assert host.nic.mr_table.check(mr.rkey, mr.addr,
                                       4 * KB, write=True) is None


def test_prewarm_batch_pays_base_cost_once(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MrRegCache(host.verbs, pd, capacity_bytes=64 * MB)
    count, length = 4, 64 * KB

    def warm():
        start = cluster.sim.now
        yield from cache.prewarm(count, length)
        return cluster.sim.now - start

    elapsed = run_process(cluster, warm())
    assert len(cache) == count
    assert host.verbs.mrs_registered == count
    params = host.verbs.params
    assert elapsed == params.mr_register_batch_ns([length] * count)
    # The batch amortizes the driver base cost: strictly cheaper than
    # the same registrations issued one at a time.
    assert elapsed < count * params.mr_register_ns(length)


# ------------------------------------------------- MemCache integration

def test_memcache_shrink_releases_warm_and_regrow_is_free(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    mrc = MrRegCache(host.verbs, pd, capacity_bytes=64 * MB)
    cache = MemCache(host.verbs, pd, mr_bytes=1 * MB, mr_cache=mrc)

    def churn():
        big = yield from cache.alloc(1 * MB)     # arena 1
        small = yield from cache.alloc(4 * KB)   # arena 2 (grow)
        cache.free(big)
        cache.free(small)
        assert cache.shrink() == 1               # one arena kept warm-local
        # The reclaimed arena's MR went to the cache warm, not the driver.
        assert len(mrc) == 1 and mrc.releases == 1
        registered_before = host.verbs.mrs_registered
        start = cluster.sim.now
        one = yield from cache.alloc(1 * MB)     # refills arena 1
        two = yield from cache.alloc(1 * MB)     # regrow: warm cache hit
        assert cluster.sim.now == start          # zero driver cost
        assert host.verbs.mrs_registered == registered_before
        cache.free(one)
        cache.free(two)

    run_process(cluster, churn())
    assert cache.cached_grows == 1
    assert mrc.hits == 1
    assert host.verbs.mrs_registered == 2        # only the two cold grows


def test_memcache_without_cache_deregisters_on_shrink(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 * MB)

    def churn():
        big = yield from cache.alloc(1 * MB)
        small = yield from cache.alloc(4 * KB)
        mr = cache._arenas[1].mr
        cache.free(big)
        cache.free(small)
        assert cache.shrink() == 1
        return mr

    mr = run_process(cluster, churn())
    # Baseline behaviour preserved: no cache means a real deregistration.
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 4 * KB,
                                   write=True) is None
    assert cache.cached_grows == 0
