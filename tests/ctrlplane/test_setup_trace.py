"""Setup spans: zero-residual channel-establishment decomposition."""

from repro.analysis import ClockSync, Tracer
from repro.analysis.tracing import SETUP_STAGES
from repro.sim import MILLIS, SECONDS
from repro.verbs.cm import ConnectError
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.xrdma.conftest import make_context


def _traced_client(cluster, **config_kwargs):
    config = XrdmaConfig(trace_sample_mask=1, **config_kwargs)
    client = make_context(cluster, 0, config)
    tracer = Tracer(client, ClockSync(cluster.rng))
    return client, tracer


def _setup_records(tracer):
    return [record for record in tracer.records.values()
            if record.view == "setup"]


def test_connect_emits_zero_residual_setup_trace(cluster):
    client, tracer = _traced_client(cluster)
    server = make_context(cluster, 1)
    accepted = server.listen(9600)

    def scenario():
        channel = yield from client.connect(1, 9600)
        yield accepted.get()
        return channel

    run_process(cluster, scenario(), limit=30 * SECONDS)
    (record,) = _setup_records(tracer)
    assert record.kind == "SETUP" and record.complete
    # Zero residual: the stage chain accounts for every nanosecond of
    # establishment, and every stage is present exactly once.
    assert record.residual_ns == 0
    assert sum(duration for _, duration in record.spans) \
        == record.total_ns > 0
    assert {stage for stage, _ in record.spans} == SETUP_STAGES
    assert tracer.setup_latency.count == 1


def test_failed_connect_stays_incomplete_and_recycles(cluster):
    client, tracer = _traced_client(cluster)

    def scenario():
        try:
            yield from client.connect(1, 9999, timeout_ns=5 * MILLIS)
        except ConnectError:
            return True
        return False

    assert run_process(cluster, scenario(), limit=30 * SECONDS)
    (record,) = _setup_records(tracer)
    # A failed connect never finalizes — visible as an incomplete trace —
    # and its QP still went back to the cache.
    assert not record.complete
    assert tracer.incomplete_count() == 1
    assert client.qpcache.recycled == 1


def test_warm_setup_is_faster_and_skips_registration(cluster):
    client, tracer = _traced_client(cluster)
    server = make_context(cluster, 1)
    accepted = server.listen(9601)

    def scenario():
        cold = yield from client.connect(1, 9601)
        yield accepted.get()
        yield from client.close_channel(cold)
        yield cluster.sim.timeout(MILLIS)
        warm = yield from client.connect(1, 9601)
        yield accepted.get()
        return warm

    run_process(cluster, scenario(), limit=30 * SECONDS)
    first, second = sorted(_setup_records(tracer),
                           key=lambda record: record.started_at_ns)
    assert first.complete and second.complete
    # Warm path: the recycled QP skips creation and the warm memory
    # cache skips MR registration entirely (Sec. VII-C, 3.9 ms → 2.5 ms).
    assert second.total_ns < first.total_ns
    cold_spans, warm_spans = dict(first.spans), dict(second.spans)
    assert warm_spans["qp_setup"] < cold_spans["qp_setup"]
    assert cold_spans["mr_reg"] > 0
    assert warm_spans["mr_reg"] == 0
