"""Failure injection across the application stack.

The robustness story end to end: crashed chunk servers are detected by
keepAlive, block servers degrade gracefully, front-ends observe failures
instead of hanging.
"""

import pytest

from repro.apps import EssdFrontend, PanguDeployment
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig
from repro.xrdma.channel import ChannelState
from tests.conftest import run_process


def fast_keepalive():
    return XrdmaConfig(keepalive_intv_ms=5.0)


@pytest.fixture
def deployment():
    cluster = build_cluster(8)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0], chunk_hosts=[1, 2, 3, 4], replicas=3,
        config=fast_keepalive())
    deployment.establish_mesh()
    return cluster, deployment


def test_chunk_server_crash_detected_by_keepalive(deployment):
    cluster, deployment = deployment
    block = deployment.block_servers[0]
    victim = deployment.chunk_servers[0]
    assert len(block.channels) == 4

    cluster.host(victim.host_id).nic.crash()
    cluster.sim.run(until=cluster.sim.now + 5 * SECONDS)

    # keepAlive detected the dead peer and placement dropped it.
    assert len(block.channels) == 3
    assert victim.host_id not in block.channels
    assert all(ch.state is ChannelState.READY
               for ch in block.channels.values())
    # Context-level references were released (no connection leak).
    assert block.ctx.broken_channels == 1


def test_write_fails_fast_after_replica_loss(deployment):
    """With a replica's channel broken, placement hits the dead channel
    and the front-end sees an error instead of a hang."""
    cluster, deployment = deployment
    block = deployment.block_servers[0]
    victim = deployment.chunk_servers[1]
    cluster.host(victim.host_id).nic.crash()
    cluster.sim.run(until=cluster.sim.now + 5 * SECONDS)

    frontend = EssdFrontend(cluster, host_id=5, block_server_host=0,
                            config=fast_keepalive())

    def scenario():
        yield from frontend.connect()
        results = []
        for _ in range(8):
            request = frontend._issue()
            response = yield request.response
            results.append(response.payload["ok"])
        return results

    results = run_process(cluster, scenario(), limit=60 * SECONDS)
    # The dead replica is gone from block.channels, so placement now
    # rotates over 3 healthy servers: writes succeed again.
    assert all(results)
    assert victim.chunks_written == 0


def test_all_chunk_servers_dead_returns_errors(deployment):
    cluster, deployment = deployment
    for chunk_server in deployment.chunk_servers:
        cluster.host(chunk_server.host_id).nic.crash()
    cluster.sim.run(until=cluster.sim.now + 5 * SECONDS)

    frontend = EssdFrontend(cluster, host_id=5, block_server_host=0,
                            config=fast_keepalive())

    def scenario():
        yield from frontend.connect()
        request = frontend._issue()
        response = yield request.response
        return response.payload

    payload = run_process(cluster, scenario(), limit=60 * SECONDS)
    assert payload == {"ok": False}


def test_frontend_survives_block_server_crash(deployment):
    cluster, deployment = deployment
    frontend = EssdFrontend(cluster, host_id=5, block_server_host=0,
                            config=fast_keepalive())

    def scenario():
        completed = yield from frontend.run_closed_loop(1000)
        return completed

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run(until=cluster.sim.now + 30 * MILLIS)
    cluster.host(0).nic.crash()            # the block server dies mid-run
    completed = cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    # The run terminated with a failure observation, not a hang.
    assert frontend.failures >= 1
    assert completed < 1000
